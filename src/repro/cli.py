"""Command-line interface: ``triangle-kcore`` / ``python -m repro``.

Subcommands
-----------

* ``decompose`` — run Algorithm 1 on an edge-list file or named dataset and
  print the kappa histogram (optionally dump per-edge values).
* ``plot`` — render the density plot of a graph to ASCII or SVG.
* ``dualview`` — Algorithm 3's two linked plots for a snapshot pair.
* ``update`` — benchmark incremental maintenance vs recompute on a graph
  with a random churn fraction (a one-dataset Table III row).
* ``templates`` — detect New Form / Bridge / New Join cliques between two
  snapshots.
* ``datasets`` — list the built-in dataset stand-ins.
* ``fuzz`` — differential oracle fuzzing of the dynamic maintainer
  (see docs/testing.md): generate seeded workloads, cross-check every
  oracle, shrink and dump any divergence as a replayable JSON bundle.
* ``serve`` — run the long-lived HTTP/JSON query service
  (see docs/SERVICE.md): load a graph once, answer kappa / community /
  hierarchy / template queries and ingest live edit batches, with
  bounded-queue backpressure and a clean SIGTERM drain.

Every decomposition-running subcommand routes through a private
:class:`repro.engine.Engine` and accepts ``--backend`` (any engine
backend, including ``dynamic``) plus ``--stats``, which prints the
engine's structured instrumentation payload as one JSON object on the
last line of output (machine-readable; everything else goes to the lines
above it).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from .graph.io import read_edge_list
from .graph.undirected import Graph
from .testing.workloads import PROFILES as _WORKLOAD_PROFILES


def _load_graph(spec: str) -> Graph:
    """Interpret ``spec`` as a dataset name, else as an edge-list path."""
    from .datasets import load, names

    if spec in names():
        return load(spec).graph
    return read_edge_list(spec)


def _parse_size(text: str) -> int:
    """Parse a byte size with an optional K/M/G suffix (``"256M"``)."""
    raw = text.strip()
    multiplier = 1
    suffixes = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    if raw and raw[-1].upper() in suffixes:
        multiplier = suffixes[raw[-1].upper()]
        raw = raw[:-1]
    try:
        value = int(raw) * multiplier
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid size {text!r}; expected an integer with an optional "
            "K/M/G suffix (e.g. 256M)"
        )
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"size must be >= 1 byte, got {text!r}"
        )
    return value


def _make_engine(args: argparse.Namespace):
    """Fresh engine per invocation so ``--stats`` covers exactly this run."""
    from .engine import Engine

    return Engine(
        default_backend=getattr(args, "backend", None) or "auto",
        workers=getattr(args, "workers", None),
        spill_dir=getattr(args, "spill_dir", None),
        memory_budget=getattr(args, "memory_budget", None),
    )


def _emit_stats(args: argparse.Namespace, engine) -> None:
    """Print the instrumentation payload as the last output line."""
    if getattr(args, "stats", False):
        print(json.dumps(engine.stats_dict(), sort_keys=True))


def _add_engine_arguments(p: argparse.ArgumentParser) -> None:
    from .engine import BACKENDS

    p.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="decomposition implementation: dict-based reference, "
        "flat-array CSR kernels, process-parallel sharded enumeration, "
        "out-of-core spill (external), incremental dynamic maintenance, "
        "or auto (size-based, default)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the parallel backend (default: one per "
        "CPU; 1 disables pool spawning)",
    )
    p.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="spill directory for the external backend (default: a "
        "private temporary directory removed after the run)",
    )
    p.add_argument(
        "--memory-budget",
        type=_parse_size,
        default=None,
        metavar="BYTES",
        help="resident-memory budget for the external backend's partition "
        "sizing, and the auto policy's spill threshold; accepts K/M/G "
        "suffixes (e.g. 256M)",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print engine instrumentation (stage timings, counters, "
        "cache hits) as one JSON object on the last line",
    )


def _cmd_decompose(args: argparse.Namespace) -> int:
    backend = args.backend or "auto"
    if args.membership and backend not in ("auto", "reference"):
        print(
            f"error: --membership needs the reference backend (the "
            f"{backend} backend does not track AddToCore/DelFromCore "
            f"state); drop --backend {backend} or use --backend "
            f"auto/reference",
            file=sys.stderr,
        )
        return 2
    engine = _make_engine(args)
    graph = _load_graph(args.graph)
    start = time.perf_counter()
    result = engine.decompose(
        graph, backend=backend, store_membership=args.membership
    )
    elapsed = time.perf_counter() - start
    print(f"graph: |V|={graph.num_vertices} |E|={graph.num_edges}")
    print(
        f"decomposition ({backend} backend): {elapsed:.3f}s, "
        f"max kappa = {result.max_kappa}"
    )
    print("kappa histogram (kappa: edges):")
    for value, count in result.histogram().items():
        print(f"  {value:4d}: {count}")
    if args.membership and result.membership is not None:
        in_core = sum(
            result.membership.count(edge) for edge in result.membership.edges()
        )
        print(
            f"membership: {in_core} (triangle, edge) maximum-core records "
            f"across {len(result.kappa)} edges"
        )
    if args.output:
        if str(args.output).endswith(".json"):
            from .core import save_result

            save_result(result, args.output)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                for (u, v), k in sorted(result.kappa.items(), key=repr):
                    handle.write(f"{u} {v} {k}\n")
        print(f"per-edge kappa written to {args.output}")
    _emit_stats(args, engine)
    return 0


def _cmd_communities(args: argparse.Namespace) -> int:
    from .core import CommunityIndex

    engine = _make_engine(args)
    graph = _load_graph(args.graph)
    index = CommunityIndex(graph, backend=args.backend, engine=engine)
    if args.vertex is not None:
        vertex: object = args.vertex
        if not graph.has_vertex(vertex):
            try:
                vertex = int(args.vertex)
            except ValueError:
                pass
        level, members = index.densest_community_of_vertex(vertex)
        print(
            f"densest community of {vertex!r}: level {level} "
            f"(~{level + 2}-clique), {len(members)} vertices"
        )
        print("  " + ", ".join(sorted(map(str, members))[:20]))
        _emit_stats(args, engine)
        return 0
    level = args.level if args.level is not None else index.max_level
    communities = index.communities_at(level)
    print(f"level {level}: {len(communities)} triangle-connected communities")
    for rank, edges in enumerate(communities[: args.top], start=1):
        from .core import vertex_set_of_edges

        vertices = sorted(map(str, vertex_set_of_edges(edges)))
        print(f"  #{rank}: {len(vertices)} vertices: {', '.join(vertices[:12])}")
    _emit_stats(args, engine)
    return 0


def _cmd_plot(args: argparse.Namespace) -> int:
    from .viz import (
        density_plot,
        density_plot_svg,
        explorer_html,
        render,
        save_explorer,
        save_svg,
    )

    engine = _make_engine(args)
    graph = _load_graph(args.graph)
    result = engine.decompose(graph, backend=args.backend)
    plot = density_plot(graph, result, title=args.graph)
    if args.interactive:
        save_explorer(
            explorer_html(plot, title=f"Explorer: {args.graph}"),
            args.interactive,
        )
        print(f"interactive explorer written to {args.interactive}")
    elif args.svg:
        save_svg(density_plot_svg(plot), args.svg)
        print(f"SVG written to {args.svg}")
    else:
        print(render(plot, height=args.height, width=args.width))
    _emit_stats(args, engine)
    return 0


def _cmd_dualview(args: argparse.Namespace) -> int:
    from .viz import density_plot_svg, render, save_svg
    from .viz.dual_view import dual_view_from_snapshots

    engine = _make_engine(args)
    old_graph = _load_graph(args.old)
    new_graph = _load_graph(args.new)
    views = dual_view_from_snapshots(
        old_graph, new_graph, backend=args.backend, engine=engine
    )
    print(
        f"dual view: +{len(views.added_edges)} / -{len(views.removed_edges)} "
        f"edges between snapshots"
    )
    if args.svg:
        before_path = f"{args.svg}_before.svg"
        after_path = f"{args.svg}_after.svg"
        save_svg(density_plot_svg(views.before), before_path)
        save_svg(density_plot_svg(views.after), after_path)
        print(f"SVGs written to {before_path} and {after_path}")
    else:
        print(render(views.before, height=args.height, width=args.width))
        print(render(views.after, height=args.height, width=args.width))
    _emit_stats(args, engine)
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    from .baselines.recompute import RecomputeBaseline
    from .graph.generators import random_edge_sample, random_non_edges

    engine = _make_engine(args)
    graph = _load_graph(args.graph)
    removed = random_edge_sample(graph, args.fraction / 2, seed=args.seed)
    added = random_non_edges(
        graph, len(removed), seed=args.seed, triangle_closing=True
    )
    print(
        f"graph: |V|={graph.num_vertices} |E|={graph.num_edges}; "
        f"churn: +{len(added)} / -{len(removed)} edges"
    )

    maintainer = engine.maintainer(graph)
    start = time.perf_counter()
    maintainer.apply(added=added, removed=removed)
    update_seconds = time.perf_counter() - start

    baseline = RecomputeBaseline(graph, engine=engine)
    run = baseline.apply(added=added, removed=removed)

    assert maintainer.kappa == baseline.kappa, "dynamic != recompute"
    print(f"incremental update: {update_seconds:.4f}s")
    print(f"recompute (peel):   {run.seconds:.4f}s")
    if update_seconds > 0:
        print(f"speedup: {run.seconds / update_seconds:.1f}x")
    _emit_stats(args, engine)
    return 0


def _cmd_templates(args: argparse.Namespace) -> int:
    from .templates import BUILTIN_TEMPLATES, detect_on_snapshots

    engine = _make_engine(args)
    old_graph = _load_graph(args.old)
    new_graph = _load_graph(args.new)
    spec = BUILTIN_TEMPLATES[args.pattern]
    detection = detect_on_snapshots(
        old_graph, new_graph, spec, backend=args.backend, engine=engine
    )
    print(
        f"{spec.name}: {len(detection.characteristic_triangles)} "
        f"characteristic triangles, {len(detection.special_edges)} special "
        f"edges"
    )
    for index, (kappa, vertices) in enumerate(detection.densest_cliques()):
        if index >= args.top:
            break
        print(
            f"  #{index + 1}: ~{kappa + 2}-vertex pattern clique: "
            f"{sorted(vertices, key=repr)}"
        )
    _emit_stats(args, engine)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .viz import decomposition_report

    engine = _make_engine(args)
    graph = _load_graph(args.graph)
    result = engine.decompose(graph, backend=args.backend)
    report = decomposition_report(graph, result, title=f"Analysis of {args.graph}")
    report.save(args.output)
    print(f"HTML report written to {args.output}")
    _emit_stats(args, engine)
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    from .analysis import track_communities
    from .graph import SnapshotStream

    engine = _make_engine(args)
    if args.dataset:
        from .datasets import load

        dataset = load(args.dataset)
        if not dataset.snapshots:
            print(f"dataset {args.dataset!r} has no snapshots")
            return 1
        stream = SnapshotStream(dataset.snapshots)
        labels = dataset.snapshot_labels or [
            str(i) for i in range(len(stream))
        ]
    else:
        snapshots = [_load_graph(path) for path in args.snapshots]
        stream = SnapshotStream(snapshots)
        labels = [str(i) for i in range(len(stream))]

    timeline = track_communities(
        stream,
        min_kappa=args.min_kappa,
        backend=args.backend,
        engine=engine,
    )
    print(f"summary: {timeline.summary()}")
    for transition in timeline.transitions:
        if transition.kind == "continue" and not args.verbose:
            continue
        before = [c.size for c in transition.before]
        after = [c.size for c in transition.after]
        print(
            f"  {labels[transition.snapshot]}: {transition.kind} "
            f"{before} -> {after}"
        )
    _emit_stats(args, engine)
    return 0


def _cmd_hierarchy(args: argparse.Namespace) -> int:
    from .core import CommunityHierarchy

    engine = _make_engine(args)
    graph = _load_graph(args.graph)
    hierarchy = CommunityHierarchy(graph, backend=args.backend, engine=engine)
    print(hierarchy.ascii_tree(max_children=args.max_children))
    _emit_stats(args, engine)
    return 0


def _cmd_maxcore(args: argparse.Namespace) -> int:
    from .core import max_triangle_kcore

    graph = _load_graph(args.graph)
    start = time.perf_counter()
    k, sub = max_triangle_kcore(graph)
    elapsed = time.perf_counter() - start
    print(
        f"densest Triangle K-Core: kappa {k} (~{k + 2}-clique), "
        f"{sub.num_vertices} vertices, {sub.num_edges} edges  "
        f"({elapsed:.3f}s, top-down)"
    )
    for vertex in sorted(map(str, sub.vertices()))[:30]:
        print(f"  {vertex}")
    if sub.num_vertices > 30:
        print(f"  ... {sub.num_vertices - 30} more")
    return 0


def _cmd_probe(args: argparse.Namespace) -> int:
    from .core import kappa_bounds

    engine = _make_engine(args)
    graph = _load_graph(args.graph)

    def resolve(token: str) -> object:
        if graph.has_vertex(token):
            return token
        try:
            number = int(token)
        except ValueError:
            return token
        return number if graph.has_vertex(number) else token

    u, v = resolve(args.u), resolve(args.v)
    lower, upper = kappa_bounds(
        graph,
        u,
        v,
        radius=args.radius,
        sweeps=args.radius,
        backend=args.backend,
        engine=engine,
    )
    certainty = "exact" if lower == upper else "bounds"
    print(
        f"kappa({u!r}, {v!r}) in [{lower}, {upper}] ({certainty}; "
        f"radius {args.radius} neighborhood only)"
    )
    print(
        f"edge participates in a ~{lower + 2}"
        + (f"-to-{upper + 2}" if lower != upper else "")
        + "-vertex clique-like structure"
    )
    _emit_stats(args, engine)
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from .analysis import robustness_report

    engine = _make_engine(args)
    graph = _load_graph(args.graph)
    fractions = tuple(args.fractions)
    report = robustness_report(
        graph,
        fractions=fractions,
        trials_per_fraction=args.trials,
        mode=args.mode,
        seed=args.seed,
        method=args.method,
        backend=args.backend,
        engine=engine,
    )
    print(
        f"baseline densest core: kappa {report.baseline_max_kappa}, "
        f"{len(report.baseline_core)} vertices"
    )
    for fraction in fractions:
        print(
            f"  {fraction:>6.1%} edge loss: core kappa retained "
            f"{report.mean_core_kappa_after(fraction):.1f}"
            f"/{report.baseline_max_kappa}, champion overlap "
            f"{report.mean_core_overlap(fraction):.2f}"
        )
    print(f"breakdown (<50% density retained) at ~{report.breakdown_fraction():.0%}")
    _emit_stats(args, engine)
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .testing import (
        PROFILES,
        ReproBundle,
        batch_boundary_bug_sut,
        fuzz,
        perturbed_sut_factory,
        replay,
    )

    if args.replay:
        bundle = ReproBundle.load(args.replay)
        print(
            f"replaying bundle: {len(bundle.script)} ops, "
            f"profile={bundle.profile or '?'}, seed={bundle.seed}"
        )
        if bundle.apply_mode != "per_op":
            print(
                f"batch mode: chunks of {bundle.batch_ops} ops via "
                f"diff_apply(strategy={bundle.batch_strategy!r})"
            )
        factory = (
            perturbed_sut_factory(args.perturb_level)
            if args.perturb_level is not None
            else (batch_boundary_bug_sut if args.batch_bug else None)
        )
        report = replay(bundle, **({"sut_factory": factory} if factory else {}))
        if report.ok:
            print(
                f"replay clean: {report.steps} ops, "
                f"{report.checkpoints} checkpoints, oracles={report.oracles}"
            )
            return 0
        d = report.divergence
        print(f"replay DIVERGED at op {d.step} [{d.kind}]: {d.message}")
        for u, v, want, got in d.diff[:10]:
            print(f"  edge ({u!r}, {v!r}): expected kappa {want}, got {got}")
        return 1

    profiles = sorted(PROFILES) if args.profile == "all" else [args.profile]
    extra_kwargs = {}
    if args.strategy != "per_op":
        extra_kwargs["apply_mode"] = "batch"
        extra_kwargs["batch_ops"] = args.batch_ops
        extra_kwargs["batch_strategy"] = args.strategy
        print(
            f"batch mode: chunks of {args.batch_ops} ops applied via "
            f"diff_apply(strategy={args.strategy!r})"
        )
    if args.perturb_level is not None and args.batch_bug:
        print("--perturb-level and --batch-bug are mutually exclusive")
        return 2
    if args.perturb_level is not None:
        extra_kwargs["sut_factory"] = perturbed_sut_factory(
            args.perturb_level
        )
        print(
            f"self-test: injecting off-by-one kappa bug at level "
            f"{args.perturb_level}"
        )
    if args.batch_bug:
        extra_kwargs["sut_factory"] = batch_boundary_bug_sut
        print(
            "self-test: injecting batch boundary-drop bug "
            "(_trim_batch_region skips one affected-region edge)"
        )
    if args.backend in ("parallel", "parallel-vec"):
        from .testing import DEFAULT_ORACLES

        workers = args.workers or 2
        executor = "vector" if args.backend == "parallel-vec" else "scalar"
        extra_kwargs["oracles"] = DEFAULT_ORACLES + ("parallel",)
        extra_kwargs["oracle_options"] = {
            "parallel_workers": workers,
            "parallel_inprocess": False,
            "parallel_executor": executor,
        }
        print(
            f"extra oracle: {args.backend} backend with {workers} worker "
            f"process(es) per checkpoint"
        )
    elif args.backend == "csr-vec":
        from .testing import DEFAULT_ORACLES

        extra_kwargs["oracles"] = DEFAULT_ORACLES + ("csr-vec",)
        print("extra oracle: csr-vec (vectorized peel) per checkpoint")
    elif args.backend == "external":
        from .testing import DEFAULT_ORACLES

        extra_kwargs["oracles"] = DEFAULT_ORACLES + ("external",)
        print(
            "extra oracle: external (out-of-core partitioned spill, "
            "2 partitions) per checkpoint"
        )
    if getattr(args, "external_bug", False):
        if args.backend != "external":
            print("--external-bug needs --backend external")
            return 2
        print(
            "self-test: injecting boundary-reconciliation bug (dropped "
            "demotion at a partition seam) into the external oracle"
        )
    start = time.perf_counter()
    if getattr(args, "external_bug", False):
        from .fast.external import inject_boundary_drop_bug

        with inject_boundary_drop_bug():
            result = fuzz(
                seed=args.seed,
                ops=args.ops,
                profiles=profiles,
                checkpoint_every=args.checkpoint_every,
                shrink=args.shrink,
                **extra_kwargs,
            )
    else:
        result = fuzz(
            seed=args.seed,
            ops=args.ops,
            profiles=profiles,
            checkpoint_every=args.checkpoint_every,
            shrink=args.shrink,
            **extra_kwargs,
        )
    elapsed = time.perf_counter() - start
    for outcome in result.outcomes:
        status = "clean" if outcome.ok else "DIVERGED"
        print(
            f"  {outcome.profile:16s} seed={outcome.seed} "
            f"ops={outcome.report.steps} "
            f"checkpoints={outcome.report.checkpoints} {status}"
        )
    failure = result.first_failure
    if failure is None:
        oracle_names = (
            result.outcomes[0].report.oracles if result.outcomes else []
        )
        print(
            f"no divergence: {result.total_steps()} ops across "
            f"{len(result.outcomes)} profile(s), oracles={oracle_names} "
            f"({elapsed:.1f}s)"
        )
        return 0
    d = failure.bundle.divergence
    print(
        f"divergence in profile {failure.profile!r} "
        f"[{d.kind}{f'/{d.oracle}' if d.oracle else ''}]: {d.message}"
    )
    if failure.shrink is not None:
        print(
            f"shrunk {failure.shrink.original_ops} -> "
            f"{failure.shrink.shrunk_ops} ops "
            f"({failure.shrink.evaluations} replays)"
        )
    if args.out:
        failure.bundle.save(args.out)
        print(f"repro bundle written to {args.out}")
    else:
        print("re-run with --out bundle.json to save a replayable bundle")
    return 1


def _parse_addr(raw: str) -> tuple:
    """``host:port`` -> ``(host, port)``, with a helpful error."""
    host, separator, port = raw.rpartition(":")
    if not separator or not host:
        raise ValueError(f"expected HOST:PORT, got {raw!r}")
    return host, int(port)


def _announce_line(payload: dict) -> None:
    """One structured stdout line wrappers parse for bound port(s)."""
    from .replication.launcher import ANNOUNCE_PREFIX

    print(ANNOUNCE_PREFIX + json.dumps(payload, sort_keys=True), flush=True)


def _serve_common_kwargs(args: argparse.Namespace) -> dict:
    return dict(
        host=args.host,
        port=args.port,
        max_queue=args.max_queue,
        rate_limit=args.rate_limit,
        request_timeout=args.request_timeout,
        degrade_after=args.degrade_after,
        fence_timeout=args.fence_timeout,
    )


def _serve_replica(args: argparse.Namespace) -> int:
    from .replication import ReplicaServer, ReplicaState
    from .service import run_server

    if not args.writer_feed:
        print(
            "error: --role replica requires --writer-feed HOST:PORT",
            file=sys.stderr,
        )
        return 2
    writer_host, writer_port = _parse_addr(args.writer_feed)
    engine = _make_engine(args)
    state = ReplicaState(backend=args.backend, engine=engine)

    def announce(server: ReplicaServer) -> None:
        print(
            f"replica of {writer_host}:{writer_port} "
            f"on http://{args.host}:{server.port}",
            flush=True,
        )
        _announce_line({"role": "replica", "port": server.port})

    server = ReplicaServer(
        state,
        writer_host=writer_host,
        writer_port=writer_port,
        **_serve_common_kwargs(args),
    )
    run_server(server, announce=announce)
    print("drained cleanly", flush=True)
    _emit_stats(args, engine)
    return 0


def _serve_router(args: argparse.Namespace) -> int:
    from .replication import RouterServer, run_router

    if not args.writer:
        print(
            "error: --role router requires --writer HOST:PORT", file=sys.stderr
        )
        return 2
    writer_addr = _parse_addr(args.writer)
    replica_addrs = [_parse_addr(raw) for raw in (args.replica or [])]

    def announce(router: RouterServer) -> None:
        print(
            f"routing to writer {writer_addr[0]}:{writer_addr[1]} and "
            f"{len(replica_addrs)} replica(s) "
            f"on http://{args.host}:{router.port}",
            flush=True,
        )
        _announce_line({"role": "router", "port": router.port})

    router = RouterServer(
        writer_addr=writer_addr,
        replica_addrs=replica_addrs,
        host=args.host,
        port=args.port,
    )
    run_router(router, announce=announce)
    print("drained cleanly", flush=True)
    return 0


def _serve_cluster(args: argparse.Namespace) -> int:
    """One-shot launcher: writer + N replicas + router in this process."""
    import signal as signal_module
    import threading

    from .replication import LocalCluster

    graph = _load_graph(args.graph)
    cluster = LocalCluster(
        graph,
        replicas=args.replicas,
        backend=args.backend,
        edit_strategy=args.edit_strategy,
        router_port=args.port,
        fence_timeout=args.fence_timeout,
    )
    cluster.start()
    try:
        print(
            f"cluster: writer http://127.0.0.1:{cluster.writer_port} "
            f"(feed {cluster.writer_repl_port}), "
            f"{args.replicas} replica(s) "
            f"{[f'127.0.0.1:{p}' for p in cluster.replica_ports]}, "
            f"router http://127.0.0.1:{cluster.router_port}",
            flush=True,
        )
        _announce_line(
            {
                "role": "cluster",
                "port": cluster.router_port,
                "router_port": cluster.router_port,
                "writer_port": cluster.writer_port,
                "repl_port": cluster.writer_repl_port,
                "replica_ports": cluster.replica_ports,
            }
        )
        stop = threading.Event()
        for signum in (signal_module.SIGTERM, signal_module.SIGINT):
            signal_module.signal(signum, lambda *_args: stop.set())
        stop.wait()
    finally:
        cluster.stop()
    print("drained cleanly", flush=True)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ServiceServer, ServiceState, run_server

    if args.replicas is not None:
        if args.role != "standalone":
            print(
                "error: --replicas launches a whole cluster; it conflicts "
                "with --role",
                file=sys.stderr,
            )
            return 2
        if not args.graph:
            print("error: --replicas requires a graph", file=sys.stderr)
            return 2
        return _serve_cluster(args)
    if args.role == "replica":
        return _serve_replica(args)
    if args.role == "router":
        return _serve_router(args)
    if not args.graph:
        print(
            f"error: --role {args.role} requires a graph argument",
            file=sys.stderr,
        )
        return 2

    engine = _make_engine(args)
    graph = _load_graph(args.graph)
    server_kwargs = _serve_common_kwargs(args)
    if args.role == "writer":
        from .replication import WriterServer, WriterState

        state = WriterState(
            graph,
            backend=args.backend,
            engine=engine,
            edit_strategy=args.edit_strategy,
            log_capacity=args.log_capacity,
        )
        server = WriterServer(
            state,
            repl_host=args.host,
            repl_port=args.repl_port,
            **server_kwargs,
        )
    else:
        state = ServiceState(
            graph,
            backend=args.backend,
            engine=engine,
            edit_strategy=args.edit_strategy,
        )
        server = ServiceServer(state, **server_kwargs)

    def announce(running: ServiceServer) -> None:
        # The port is printed (flush=True) so wrappers binding port 0 can
        # parse where the kernel actually put us.
        print(
            f"serving {args.graph} (|V|={state.graph.num_vertices} "
            f"|E|={state.graph.num_edges}, backend {state.backend}) "
            f"on http://{args.host}:{running.port}",
            flush=True,
        )
        payload = {"role": args.role, "port": running.port}
        if args.role == "writer":
            payload["repl_port"] = running.repl_port  # type: ignore[attr-defined]
        _announce_line(payload)

    run_server(server, announce=announce)
    print("drained cleanly", flush=True)
    _emit_stats(args, engine)
    return 0


def _cmd_shell(args: argparse.Namespace) -> int:
    """Interactive multi-graph workspace shell (see docs/WORKSPACE.md)."""
    from .workspace import Workspace
    from .workspace.shell import run_shell

    engine = _make_engine(args)
    workspace = Workspace(engine=engine, backend=args.backend)
    exit_code = run_shell(
        workspace,
        script=args.script,
        replay=args.replay,
        save=args.save,
        connect=args.connect,
    )
    _emit_stats(args, engine)
    return exit_code


def _cmd_datasets(args: argparse.Namespace) -> int:
    from .datasets import load, names

    for name in names():
        dataset = load(name)
        print(
            f"{name:15s} |V|={dataset.num_vertices:7d} "
            f"|E|={dataset.num_edges:8d}  (paper: {dataset.paper_vertices} / "
            f"{dataset.paper_edges})"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="triangle-kcore",
        description="Triangle K-Core motifs: extraction, maintenance, plots",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
        help="print the package version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("decompose", help="run Algorithm 1")
    p.add_argument("graph", help="dataset name or edge-list path")
    p.add_argument("-o", "--output", help="write per-edge kappa here")
    p.add_argument(
        "--membership",
        action="store_true",
        help="track AddToCore/DelFromCore membership (reference backend "
        "only; auto degrades, csr/dynamic error)",
    )
    _add_engine_arguments(p)
    p.set_defaults(func=_cmd_decompose)

    p = sub.add_parser("plot", help="density plot (ASCII or SVG)")
    p.add_argument("graph", help="dataset name or edge-list path")
    p.add_argument("--svg", help="write SVG here instead of ASCII")
    p.add_argument(
        "--interactive", help="write a self-contained HTML explorer here"
    )
    p.add_argument("--height", type=int, default=12)
    p.add_argument("--width", type=int, default=100)
    _add_engine_arguments(p)
    p.set_defaults(func=_cmd_plot)

    p = sub.add_parser(
        "dualview", help="Dual View Plots for a snapshot pair (Algorithm 3)"
    )
    p.add_argument("old", help="old snapshot (dataset name or path)")
    p.add_argument("new", help="new snapshot (dataset name or path)")
    p.add_argument(
        "--svg",
        help="write <PREFIX>_before.svg / <PREFIX>_after.svg instead of ASCII",
        metavar="PREFIX",
    )
    p.add_argument("--height", type=int, default=12)
    p.add_argument("--width", type=int, default=100)
    _add_engine_arguments(p)
    p.set_defaults(func=_cmd_dualview)

    p = sub.add_parser("update", help="incremental vs recompute timing")
    p.add_argument("graph", help="dataset name or edge-list path")
    p.add_argument(
        "--fraction", type=float, default=0.01, help="churn fraction (paper: 1%%)"
    )
    p.add_argument("--seed", type=int, default=0)
    _add_engine_arguments(p)
    p.set_defaults(func=_cmd_update)

    p = sub.add_parser("templates", help="template pattern cliques")
    p.add_argument("old", help="old snapshot (dataset name or path)")
    p.add_argument("new", help="new snapshot (dataset name or path)")
    p.add_argument(
        "--pattern",
        choices=("new_form", "bridge", "new_join", "stable", "densifying"),
        default="new_form",
    )
    p.add_argument("--top", type=int, default=3)
    _add_engine_arguments(p)
    p.set_defaults(func=_cmd_templates)

    p = sub.add_parser("communities", help="triangle-connected communities")
    p.add_argument("graph", help="dataset name or edge-list path")
    p.add_argument("--level", type=int, help="level k (default: max)")
    p.add_argument("--vertex", help="query one vertex's densest community")
    p.add_argument("--top", type=int, default=5)
    _add_engine_arguments(p)
    p.set_defaults(func=_cmd_communities)

    p = sub.add_parser("report", help="write a standalone HTML report")
    p.add_argument("graph", help="dataset name or edge-list path")
    p.add_argument("-o", "--output", default="report.html")
    _add_engine_arguments(p)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("events", help="community evolution over snapshots")
    p.add_argument("snapshots", nargs="*", help="edge-list paths, in order")
    p.add_argument("--dataset", help="use a built-in snapshot dataset instead")
    p.add_argument("--min-kappa", type=int, default=2, dest="min_kappa")
    p.add_argument("-v", "--verbose", action="store_true")
    _add_engine_arguments(p)
    p.set_defaults(func=_cmd_events)

    p = sub.add_parser("hierarchy", help="nested community dendrogram")
    p.add_argument("graph", help="dataset name or edge-list path")
    p.add_argument("--max-children", type=int, default=8, dest="max_children")
    _add_engine_arguments(p)
    p.set_defaults(func=_cmd_hierarchy)

    p = sub.add_parser("maxcore", help="densest Triangle K-Core, top-down")
    p.add_argument("graph", help="dataset name or edge-list path")
    p.set_defaults(func=_cmd_maxcore)

    p = sub.add_parser("probe", help="certified kappa bounds for one edge")
    p.add_argument("graph", help="dataset name or edge-list path")
    p.add_argument("u")
    p.add_argument("v")
    p.add_argument("--radius", type=int, default=2)
    _add_engine_arguments(p)
    p.set_defaults(func=_cmd_probe)

    p = sub.add_parser("robustness", help="noise sensitivity of the densest core")
    p.add_argument("graph", help="dataset name or edge-list path")
    p.add_argument(
        "--fractions", type=float, nargs="+", default=[0.02, 0.05, 0.1, 0.2]
    )
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--mode", choices=("delete", "rewire"), default="delete")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--method",
        choices=("dynamic", "recompute"),
        default="dynamic",
        help="per-trial measurement: incremental perturb-and-revert via "
        "the engine's maintainer (default) or literal copy + recompute",
    )
    _add_engine_arguments(p)
    p.set_defaults(func=_cmd_robustness)

    p = sub.add_parser(
        "fuzz",
        help="differential oracle fuzzing of dynamic kappa maintenance",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--ops", type=int, default=500, help="ops per workload profile"
    )
    p.add_argument(
        "--profile",
        choices=("all", *sorted(_WORKLOAD_PROFILES)),
        default="all",
        help="workload profile to run (default: all)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=100,
        dest="checkpoint_every",
        help="full oracle-matrix comparison cadence in ops",
    )
    p.add_argument(
        "--shrink",
        action="store_true",
        help="delta-debug a divergence to a locally minimal script",
    )
    p.add_argument(
        "--out", help="write a replayable JSON repro bundle here on divergence"
    )
    p.add_argument(
        "--replay",
        metavar="BUNDLE",
        help="replay a repro bundle instead of generating workloads",
    )
    p.add_argument(
        "--strategy",
        choices=("per_op", "batch", "incremental", "recompute", "auto"),
        default="per_op",
        help="how the maintainer is driven: per_op (default) feeds one op "
        "at a time with per-op invariants; any other value coalesces "
        "chunks of --batch-ops ops and applies them through "
        "diff_apply with that strategy",
    )
    p.add_argument(
        "--batch-ops",
        type=int,
        default=50,
        dest="batch_ops",
        metavar="N",
        help="chunk size for non-per_op strategies (default: 50)",
    )
    p.add_argument(
        "--perturb-level",
        type=int,
        dest="perturb_level",
        help="self-test: inject an off-by-one kappa bug at this level and "
        "verify the harness catches it",
    )
    p.add_argument(
        "--batch-bug",
        action="store_true",
        dest="batch_bug",
        help="self-test: inject a batch affected-region boundary-drop bug "
        "and verify the harness catches it (use with --strategy batch)",
    )
    p.add_argument(
        "--backend",
        choices=("parallel", "parallel-vec", "csr-vec", "external"),
        default=None,
        help="cross-check this backend as an extra checkpoint oracle "
        "(parallel/parallel-vec: real worker pools with the scalar/vector "
        "peel, see --workers; csr-vec: in-process vectorized peel; "
        "external: out-of-core partitioned spill)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the parallel oracle (default: 2)",
    )
    p.add_argument(
        "--external-bug",
        action="store_true",
        dest="external_bug",
        help="self-test: inject a boundary-reconciliation bug (one dropped "
        "demotion at a partition seam) into the external oracle and verify "
        "the harness catches it (use with --backend external)",
    )
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "serve", help="run the long-lived HTTP/JSON query service"
    )
    p.add_argument(
        "graph",
        nargs="?",
        default=None,
        help="dataset name or edge-list path (required for standalone/"
        "writer; replicas fetch state from the writer, routers hold none)",
    )
    p.add_argument(
        "--role",
        choices=("standalone", "writer", "replica", "router"),
        default="standalone",
        help="replication seat (see docs/SERVICE.md): standalone serves "
        "alone (default); writer additionally streams its commit log on "
        "--repl-port; replica folds a writer's log and serves reads "
        "only; router spreads reads over --replica backends and "
        "forwards writes to --writer",
    )
    p.add_argument(
        "--repl-port",
        type=int,
        default=0,
        dest="repl_port",
        metavar="PORT",
        help="writer only: replication feed port (0 picks a free one; "
        "printed on the ANNOUNCE line)",
    )
    p.add_argument(
        "--log-capacity",
        type=int,
        default=4096,
        dest="log_capacity",
        metavar="N",
        help="writer only: commit records retained for replica catch-up "
        "before forcing a snapshot resync (default: 4096)",
    )
    p.add_argument(
        "--writer-feed",
        dest="writer_feed",
        metavar="HOST:PORT",
        help="replica only: the writer's replication feed address",
    )
    p.add_argument(
        "--writer",
        metavar="HOST:PORT",
        help="router only: the writer's HTTP address (edits, /stats)",
    )
    p.add_argument(
        "--replica",
        action="append",
        metavar="HOST:PORT",
        help="router only: one replica HTTP address (repeatable)",
    )
    p.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="N",
        help="one-shot cluster launcher: start a writer, N replicas and "
        "a router in this process and serve until SIGTERM",
    )
    p.add_argument(
        "--fence-timeout",
        type=float,
        default=5.0,
        dest="fence_timeout",
        metavar="SECONDS",
        help="max wait for a min_version read fence before answering 503 "
        "stale_replica (default: 5)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port",
        type=int,
        default=8321,
        help="listen port (0 picks a free one; the bound port is printed)",
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=128,
        dest="max_queue",
        metavar="N",
        help="pending-request cap; beyond it requests get 503 immediately",
    )
    p.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        dest="rate_limit",
        metavar="RPS",
        help="per-client token-bucket limit in requests/second "
        "(429 + Retry-After when exceeded; default: unlimited)",
    )
    p.add_argument(
        "--request-timeout",
        type=float,
        default=10.0,
        dest="request_timeout",
        metavar="SECONDS",
        help="shed requests that waited this long in queue (503 timed_out)",
    )
    p.add_argument(
        "--degrade-after",
        type=int,
        default=None,
        dest="degrade_after",
        metavar="DEPTH",
        help="queue depth at which derived reads (community/hierarchy/"
        "templates) may serve the last cached answer, marked degraded "
        "(default: never degrade)",
    )
    p.add_argument(
        "--edit-strategy",
        choices=("auto", "incremental", "batch", "recompute"),
        default="auto",
        dest="edit_strategy",
        help="default kappa-repair strategy for POST /edits batches "
        "(per-request 'strategy' field overrides; default: auto)",
    )
    _add_engine_arguments(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "shell",
        help="interactive multi-graph workspace (REPL, scripts, replay)",
    )
    p.add_argument(
        "--script",
        metavar="FILE",
        help="read command lines from FILE instead of stdin",
    )
    p.add_argument(
        "--replay",
        metavar="SESSION",
        help="re-execute a saved session log and assert every command's "
        "output is byte-identical to the recording (exit 1 on mismatch)",
    )
    p.add_argument(
        "--save",
        metavar="PATH",
        help="write the session log (repro.workspace-session/1) to PATH "
        "on exit",
    )
    p.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="override the target of in-session 'connect' commands "
        "(lets --replay target a fresh server on a different port)",
    )
    _add_engine_arguments(p)
    p.set_defaults(func=_cmd_shell)

    p = sub.add_parser("datasets", help="list built-in datasets")
    p.set_defaults(func=_cmd_datasets)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point.

    Library errors and bad paths exit with code 2 and a one-line message
    instead of a traceback; programming errors still propagate.
    """
    from .exceptions import ReproError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as error:
        print(f"error: no such file: {error.filename}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
