"""CSV baseline: per-edge co-clique-size estimation (Wang et al., ICDE'08).

CSV visualizes "approximate cliques" by estimating, for every edge, the size
of the largest clique that edge participates in (``co_clique_size``) and
plotting vertices in an OPTICS-style order.  The Triangle K-Core paper's
claim is twofold:

* CSV's estimation step is far more expensive than Triangle K-Core peeling
  (their Table II), because bounding cliques inside every edge's common
  neighborhood is combinatorial work;
* yet the resulting density plots look nearly identical (their Figure 6).

To reproduce both claims we implement co-clique-size estimation the way CSV
frames it: the largest clique containing edge ``{u, v}`` is ``2 +`` the
largest clique inside the subgraph induced by the common neighborhood of
``u`` and ``v``.  Two modes are provided:

* ``mode="exact"`` — full Bron-Kerbosch enumeration of the neighborhood's
  maximal cliques (no pivoting, no coloring bound), the 2008-era machinery
  CSV was built on, with a per-edge node budget as a safety valve.  Matches
  CSV's cost profile on the small/medium graphs where CSV could run at all.
* ``mode="estimate"`` — CSV's cheaper bounding pass: a greedy clique plus a
  degeneracy-based upper bound on the neighborhood subgraph.

Either way the cost per edge is super-linear in the neighborhood size, which
is exactly why Table II shows CSV losing by orders of magnitude.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..graph.edge import Edge, Vertex
from ..graph.undirected import Graph


def max_clique(
    graph: Graph,
    *,
    node_budget: int = 1_000_000,
) -> Set[Vertex]:
    """Largest clique of ``graph`` via branch and bound with pivoting.

    Uses the Tomita-style expansion with a greedy-coloring bound.  If the
    search exceeds ``node_budget`` expansion nodes, the best clique found so
    far is returned (still a valid clique, possibly not maximum).

    >>> from ..graph.undirected import complete_graph
    >>> len(max_clique(complete_graph(5)))
    5
    """
    best: Set[Vertex] = set()
    adjacency = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    nodes_used = 0

    def greedy_color_bound(candidates: List[Vertex]) -> Dict[Vertex, int]:
        """Assign greedy color classes; color index+1 bounds clique size."""
        colors: Dict[Vertex, int] = {}
        classes: List[Set[Vertex]] = []
        for v in candidates:
            for index, cls in enumerate(classes):
                if not (adjacency[v] & cls):
                    cls.add(v)
                    colors[v] = index
                    break
            else:
                classes.append({v})
                colors[v] = len(classes) - 1
        return colors

    def expand(current: Set[Vertex], candidates: Set[Vertex]) -> None:
        nonlocal best, nodes_used
        nodes_used += 1
        if nodes_used > node_budget:
            return
        ordered = sorted(candidates, key=lambda v: len(adjacency[v] & candidates))
        colors = greedy_color_bound(ordered)
        # Expand high-color vertices first; prune on the color bound.
        for v in sorted(ordered, key=lambda v: colors[v], reverse=True):
            if len(current) + colors[v] + 1 <= len(best):
                return
            new_current = current | {v}
            new_candidates = candidates & adjacency[v]
            if not new_candidates:
                if len(new_current) > len(best):
                    best = set(new_current)
            else:
                expand(new_current, new_candidates)
            candidates = candidates - {v}

    vertices = set(graph.vertices())
    if vertices:
        expand(set(), vertices)
    return best


def enumerate_maximal_cliques(
    graph: Graph, *, node_budget: int = 2_000_000
) -> List[Set[Vertex]]:
    """All maximal cliques via plain Bron-Kerbosch (no pivoting).

    This is the 2008-era enumeration CSV-style tools were built on — no
    pivot selection, no coloring bound — so its cost reflects the
    "calculating co-clique size in CSV is still fairly expensive" behaviour
    the paper benchmarks against.  ``node_budget`` caps the recursion for
    pathological inputs (the enumeration so far is returned).
    """
    adjacency = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    cliques: List[Set[Vertex]] = []
    nodes_used = 0

    def bron_kerbosch(current: Set[Vertex], candidates: Set[Vertex], excluded: Set[Vertex]) -> None:
        nonlocal nodes_used
        nodes_used += 1
        if nodes_used > node_budget:
            return
        if not candidates and not excluded:
            cliques.append(set(current))
            return
        for v in list(candidates):
            bron_kerbosch(
                current | {v},
                candidates & adjacency[v],
                excluded & adjacency[v],
            )
            candidates.discard(v)
            excluded.add(v)

    bron_kerbosch(set(), set(graph.vertices()), set())
    return cliques


def greedy_clique(graph: Graph, *, seed_order: Optional[List[Vertex]] = None) -> Set[Vertex]:
    """A maximal (not maximum) clique grown greedily by degree."""
    if seed_order is None:
        seed_order = sorted(graph.vertices(), key=lambda v: -graph.degree(v))
    clique: Set[Vertex] = set()
    for v in seed_order:
        if all(graph.has_edge(v, member) for member in clique):
            clique.add(v)
    return clique


class CSVBaseline:
    """Per-edge co-clique-size estimation in the style of CSV.

    Parameters
    ----------
    mode:
        ``"exact"`` (branch-and-bound in each edge neighborhood) or
        ``"estimate"`` (greedy clique; cheaper but still super-linear).
    node_budget:
        Expansion-node cap per edge for exact mode.
    """

    def __init__(self, *, mode: str = "exact", node_budget: int = 200_000) -> None:
        if mode not in ("exact", "estimate"):
            raise ValueError(f"mode must be 'exact' or 'estimate', got {mode!r}")
        self.mode = mode
        self.node_budget = node_budget

    def co_clique_size(self, graph: Graph, u: Vertex, v: Vertex) -> int:
        """Size of the (approximately) largest clique containing ``{u, v}``.

        Memoization across edges is intentionally absent — CSV recomputes
        per edge, and that cost profile is part of what Table II measures.
        """
        common = graph.common_neighbors(u, v)
        if not common:
            return 2
        neighborhood = graph.subgraph(common)
        if self.mode == "exact":
            # CSV-era cost profile: enumerate every maximal clique of the
            # common neighborhood (plain Bron-Kerbosch) and keep the max.
            cliques = enumerate_maximal_cliques(
                neighborhood, node_budget=self.node_budget
            )
            inner_size = max((len(c) for c in cliques), default=0)
            return 2 + inner_size
        inner = greedy_clique(neighborhood)
        return 2 + len(inner)

    def co_clique_sizes(self, graph: Graph) -> Dict[Edge, int]:
        """Estimate ``co_clique_size`` for every edge of ``graph``."""
        return {
            (u, v): self.co_clique_size(graph, u, v) for u, v in graph.edges()
        }


def csv_co_clique_sizes(graph: Graph, *, mode: str = "exact") -> Dict[Edge, int]:
    """Convenience wrapper: CSV per-edge co-clique sizes for ``graph``."""
    return CSVBaseline(mode=mode).co_clique_sizes(graph)
