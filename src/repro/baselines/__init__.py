"""Baselines the paper compares against: CSV, DN-Graph, naive recompute."""

from .csv_baseline import CSVBaseline, csv_co_clique_sizes, greedy_clique, max_clique
from .dngraph import DNGraphResult, bitridn, is_valid_lambda, tridn
from .nx_truss import networkx_kappa, networkx_truss_numbers
from .recompute import RecomputeBaseline, RecomputeRun, timed_recompute

__all__ = [
    "CSVBaseline",
    "DNGraphResult",
    "RecomputeBaseline",
    "RecomputeRun",
    "bitridn",
    "csv_co_clique_sizes",
    "greedy_clique",
    "is_valid_lambda",
    "max_clique",
    "networkx_kappa",
    "networkx_truss_numbers",
    "timed_recompute",
    "tridn",
]
