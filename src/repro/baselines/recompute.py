"""Recompute-from-scratch baseline for dynamic graphs.

The paper's Table III compares its incremental update algorithm against
"re-computing": running Algorithm 1's peeling phase (steps 8-18) again after
each batch of edge changes.  This module provides that baseline with the
same measurement boundary the paper uses — the peel given fresh supports —
plus a whole-pipeline variant (triangle counting + peel) for context.

All decompositions route through :mod:`repro.engine` with the cache
disabled (``use_cache=False``): a baseline exists to *measure* recompute
cost, so serving a cached result would defeat its purpose.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..graph.edge import Edge, Vertex
from ..graph.undirected import Graph
from ..core.triangle_kcore import TriangleKCoreResult


def _recompute(
    graph: Graph, backend: Optional[str], engine: Optional[object]
) -> TriangleKCoreResult:
    from ..engine import resolve_engine

    return resolve_engine(engine).decompose(
        graph, backend=backend, use_cache=False
    )


@dataclass
class RecomputeRun:
    """Outcome of one recompute pass."""

    result: TriangleKCoreResult
    seconds: float


class RecomputeBaseline:
    """Applies edge updates by re-running the static decomposition.

    Mirrors :class:`repro.core.dynamic.DynamicTriangleKCore`'s write API so
    the Table III benchmark can drive both through the same loop.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        copy: bool = True,
        backend: Optional[str] = None,
        engine: Optional[object] = None,
    ) -> None:
        self._graph = graph.copy() if copy else graph
        self._backend = backend
        self._engine = engine
        self._result = _recompute(self._graph, backend, engine)

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def kappa(self) -> Dict[Edge, int]:
        return self._result.kappa

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        self._graph.add_edge(u, v)
        self._result = _recompute(self._graph, self._backend, self._engine)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        self._graph.remove_edge(u, v)
        self._result = _recompute(self._graph, self._backend, self._engine)

    def apply(
        self,
        added: Iterable[Tuple[Vertex, Vertex]] = (),
        removed: Iterable[Tuple[Vertex, Vertex]] = (),
    ) -> RecomputeRun:
        """Apply a batch of updates with ONE recompute at the end.

        This is the favourable-to-the-baseline measurement the paper makes:
        all 1% of edge changes land first, then a single peel runs.
        """
        for u, v in removed:
            self._graph.remove_edge(u, v)
        for u, v in added:
            self._graph.add_edge(u, v)
        start = time.perf_counter()
        self._result = _recompute(self._graph, self._backend, self._engine)
        return RecomputeRun(
            result=self._result, seconds=time.perf_counter() - start
        )


def timed_recompute(
    graph: Graph,
    *,
    backend: Optional[str] = None,
    engine: Optional[object] = None,
) -> RecomputeRun:
    """Run the static decomposition once and time it."""
    start = time.perf_counter()
    result = _recompute(graph, backend, engine)
    return RecomputeRun(result=result, seconds=time.perf_counter() - start)
