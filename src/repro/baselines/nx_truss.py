"""Cross-check against networkx's independent k-truss implementation.

An edge has Triangle K-Core number :math:`\\kappa(e)` iff it survives in
``networkx.k_truss(G, k)`` exactly for ``k <= kappa(e) + 2``.  networkx was
written independently of this library, so agreement is a strong end-to-end
check on Algorithm 1.  Optional dependency: all imports are deferred.
"""

from __future__ import annotations

from typing import Dict

from ..graph.edge import Edge, canonical_edge
from ..graph.undirected import Graph


def networkx_truss_numbers(graph: Graph) -> Dict[Edge, int]:
    """Per-edge truss numbers computed with networkx's ``k_truss``.

    Returns ``{edge: t}`` where ``t`` is the largest k such that the edge is
    in the k-truss; isolated-from-triangles edges get ``t = 2`` (networkx's
    2-truss is the whole graph minus nothing relevant here).  Subtract 2 to
    compare with kappa values.
    """
    import networkx as nx

    from ..graph.convert import to_networkx

    nx_graph = to_networkx(graph)
    truss: Dict[Edge, int] = {edge: 2 for edge in graph.edges()}
    k = 3
    while True:
        sub = nx.k_truss(nx_graph, k)
        if sub.number_of_edges() == 0:
            break
        for u, v in sub.edges():
            truss[canonical_edge(u, v)] = k
        k += 1
    return truss


def networkx_kappa(graph: Graph) -> Dict[Edge, int]:
    """``{edge: truss - 2}`` — directly comparable to our kappa values."""
    return {edge: t - 2 for edge, t in networkx_truss_numbers(graph).items()}
