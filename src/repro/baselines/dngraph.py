"""DN-Graph baselines: the iterative TriDN / BiTriDN estimators.

Wang et al. (VLDB'10) estimate, for every edge, the maximum :math:`\\lambda`
of a DN-Graph the edge participates in.  Because computing
:math:`\\lambda(e)` exactly is hard, they iterate a *validity* repair
(paper's Definition 5) until a fixed point:

    inside triangle :math:`\\triangle(u, v, w)`, vertex ``w`` *supports*
    :math:`\\lambda(u, v)` when
    :math:`\\lambda(u, v) \\le \\min(\\lambda(u, w), \\lambda(v, w))`;
    :math:`\\lambda(u, v)` is *valid* iff at least :math:`\\lambda(u, v)`
    vertices support it.

Starting from the triangle support (an upper bound), each sweep lowers every
invalid :math:`\\lambda(e)` to the largest valid value given its neighbors —
a capped h-index computation.  The fixed point is exactly the Triangle
K-Core number :math:`\\kappa(e)` (the ICDE'12 paper's Claim 3), which both
justifies the comparison plots and gives the test suite a strong oracle:
``tridn(g).lambda_ == triangle_kcore_decomposition(g).kappa``.

Two variants are provided, mirroring the paper's Table II:

* :func:`tridn` — Jacobi-style sweeps (all updates from the previous
  round's values); slow but simple, converges in many iterations.
* :func:`bitridn` — Gauss–Seidel-style sweeps with in-place updates and a
  dirty-edge worklist; converges in far fewer sweeps, but each sweep remains
  triangle-heavy, which is why it still loses to the one-shot peeling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..graph.edge import Edge, canonical_edge
from ..graph.undirected import Graph
from ..graph.triangles import triangle_supports


@dataclass
class DNGraphResult:
    """Converged DN-Graph estimation.

    Attributes
    ----------
    lambda_:
        Final valid :math:`\\lambda(e)` per edge (== kappa, per Claim 3).
    iterations:
        Number of full sweeps (TriDN) or worklist rounds (BiTriDN) until the
        fixed point; the quantity the paper quotes ("66 iterations for
        Flickr").
    updates:
        Total number of per-edge lowering steps performed.
    """

    lambda_: Dict[Edge, int]
    iterations: int = 0
    updates: int = 0


def _capped_valid_lambda(
    graph: Graph, lambda_: Dict[Edge, int], u: object, v: object, cap: int
) -> int:
    """Largest L <= cap with at least L supporting common neighbors.

    A common neighbor ``w`` supports level L when both side edges carry
    lambda >= L, so the answer is the h-index of the side minima, capped.
    """
    side_minima: List[int] = []
    for w in graph.common_neighbors(u, v):
        side = min(
            lambda_[canonical_edge(u, w)],
            lambda_[canonical_edge(v, w)],
        )
        side_minima.append(min(side, cap))
    side_minima.sort(reverse=True)
    best = 0
    for index, value in enumerate(side_minima, start=1):
        if value >= index:
            best = index
        else:
            break
    return min(best, cap)


def tridn(graph: Graph, *, max_iterations: int = 10_000) -> DNGraphResult:
    """TriDN: synchronous validity-repair sweeps until a fixed point.

    Every sweep recomputes each edge's largest valid lambda from the
    *previous* sweep's values (Jacobi iteration).  Deterministic and
    monotone non-increasing, so convergence to the greatest fixed point —
    the Triangle K-Core decomposition — is guaranteed.
    """
    lambda_ = dict(triangle_supports(graph))
    iterations = 0
    updates = 0
    while iterations < max_iterations:
        iterations += 1
        previous = dict(lambda_)
        changed = False
        for u, v in graph.edges():
            edge = (u, v)
            current = previous[edge]
            repaired = _capped_valid_lambda(graph, previous, u, v, current)
            if repaired < current:
                lambda_[edge] = repaired
                updates += 1
                changed = True
        if not changed:
            break
    return DNGraphResult(lambda_=lambda_, iterations=iterations, updates=updates)


def bitridn(graph: Graph, *, max_rounds: int = 10_000) -> DNGraphResult:
    """BiTriDN: asynchronous repair with immediate propagation.

    Processes a worklist of potentially-invalid edges, updating lambda in
    place so later repairs in the same round see fresh values, and re-queues
    only the triangle neighbors of every lowered edge.  Converges to the
    same fixed point as :func:`tridn` with substantially fewer edge visits —
    the "improvement over TriDN" the paper benchmarks — while remaining an
    iterative estimator.
    """
    lambda_ = dict(triangle_supports(graph))
    dirty = set(lambda_)
    iterations = 0
    updates = 0
    while dirty and iterations < max_rounds:
        iterations += 1
        work = sorted(dirty, key=repr)
        dirty = set()
        for edge in work:
            u, v = edge
            current = lambda_[edge]
            repaired = _capped_valid_lambda(graph, lambda_, u, v, current)
            if repaired < current:
                lambda_[edge] = repaired
                updates += 1
                for w in graph.common_neighbors(u, v):
                    dirty.add(canonical_edge(u, w))
                    dirty.add(canonical_edge(v, w))
    return DNGraphResult(lambda_=lambda_, iterations=iterations, updates=updates)


def is_valid_lambda(graph: Graph, lambda_: Dict[Edge, int]) -> bool:
    """Check Definition 5 for every edge: supporters(e) >= lambda(e)."""
    for u, v in graph.edges():
        value = lambda_[(u, v)]
        if value == 0:
            continue
        supporters = 0
        for w in graph.common_neighbors(u, v):
            if (
                min(
                    lambda_[canonical_edge(u, w)],
                    lambda_[canonical_edge(v, w)],
                )
                >= value
            ):
                supporters += 1
        if supporters < value:
            return False
    return True
