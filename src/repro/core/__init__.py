"""The paper's primary contribution: Triangle K-Core algorithms.

* :func:`triangle_kcore_decomposition` — Algorithm 1 (static peeling).
* :class:`DynamicTriangleKCore` — Algorithms 2/5/6/7 (incremental updates).
* :func:`kcore_decomposition` — the classic vertex K-Core substrate.
* extraction helpers (level subgraphs, triangle-connected communities).
* validators used as test oracles.
"""

from .bucket_queue import BucketQueue
from .community import CommunityIndex, community_of_edge, community_of_vertex
from .dynamic import DynamicTriangleKCore, KappaDelta, UpdateStats, h_index
from .extract import (
    dense_communities,
    is_triangle_kcore,
    level_subgraph,
    max_core_of_edge,
    triangle_connected_component,
    triangle_connected_components,
    vertex_set_of_edges,
)
from .local import (
    ball_vertices,
    edge_ball,
    kappa_bounds,
    kappa_lower_bound,
    kappa_upper_bound,
)
from .hierarchy import CommunityHierarchy, CommunityNode
from .kcore import (
    core_filter_for_triangle_kcore,
    degeneracy,
    kcore_decomposition,
    kcore_subgraph,
)
from .maxcore import erode_to_triangle_kcore, max_triangle_kcore
from .membership import CoreMembership, recover_membership_rule1
from .peel_variants import triangle_kcore_heap, triangle_kcore_stored_triangles
from .persistence import load_result, save_result
from .triangle_kcore import (
    TriangleKCoreResult,
    co_clique_sizes,
    kappa_from_mapping,
    kappa_upper_bounds,
    triangle_kcore_decomposition,
    truss_numbers,
)
from .validate import (
    check_decomposition,
    check_level_subgraphs,
    check_maximality,
    check_theorem1,
    reference_decomposition,
)

__all__ = [
    "BucketQueue",
    "CommunityHierarchy",
    "CommunityIndex",
    "CommunityNode",
    "CoreMembership",
    "DynamicTriangleKCore",
    "KappaDelta",
    "TriangleKCoreResult",
    "UpdateStats",
    "ball_vertices",
    "check_decomposition",
    "check_level_subgraphs",
    "check_maximality",
    "check_theorem1",
    "co_clique_sizes",
    "community_of_edge",
    "community_of_vertex",
    "core_filter_for_triangle_kcore",
    "degeneracy",
    "dense_communities",
    "erode_to_triangle_kcore",
    "h_index",
    "edge_ball",
    "is_triangle_kcore",
    "kappa_bounds",
    "kappa_from_mapping",
    "kappa_lower_bound",
    "kappa_upper_bound",
    "kappa_upper_bounds",
    "kcore_decomposition",
    "kcore_subgraph",
    "level_subgraph",
    "load_result",
    "max_core_of_edge",
    "max_triangle_kcore",
    "recover_membership_rule1",
    "reference_decomposition",
    "save_result",
    "triangle_connected_component",
    "triangle_connected_components",
    "triangle_kcore_decomposition",
    "triangle_kcore_heap",
    "triangle_kcore_stored_triangles",
    "truss_numbers",
    "vertex_set_of_edges",
]
