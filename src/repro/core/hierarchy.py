"""The community hierarchy: how dense communities nest across levels.

Level subgraphs nest (``kappa >= k+1`` edges are a subset of
``kappa >= k`` edges), so the triangle-connected communities of all levels
form a forest: a level-``k`` community contains the level-``k+1``
communities built from its edges.  This module materializes that forest —
the dendrogram a user descends when exploring a plot ("this broad plateau
splits into these two tighter cliques").

Built from a :class:`~repro.core.community.CommunityIndex` (one union-find
sweep); navigation is then pure tree walking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from ..graph.edge import Vertex
from ..graph.undirected import Graph
from .community import CommunityIndex
from .extract import vertex_set_of_edges
from .triangle_kcore import TriangleKCoreResult


@dataclass
class CommunityNode:
    """One community with its tighter sub-communities.

    A community that survives several consecutive levels unchanged is
    represented by a single node: ``first_level`` is where it appears,
    ``level`` the deepest level it persists to (its true density).
    """

    level: int
    edges: frozenset
    first_level: int = 0
    children: List["CommunityNode"] = field(default_factory=list)
    parent: Optional["CommunityNode"] = None

    def __post_init__(self) -> None:
        if self.first_level == 0:
            self.first_level = self.level

    @property
    def vertices(self) -> Set[Vertex]:
        return vertex_set_of_edges(set(self.edges))

    @property
    def size(self) -> int:
        return len(self.vertices)

    @property
    def estimated_clique_size(self) -> int:
        return self.level + 2

    def walk(self) -> Iterator["CommunityNode"]:
        """Depth-first traversal of this subtree (self first)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> Iterator["CommunityNode"]:
        """The densest (childless) communities under this node."""
        for node in self.walk():
            if not node.children:
                yield node

    def __repr__(self) -> str:
        return (
            f"CommunityNode(level={self.level}, vertices={self.size}, "
            f"children={len(self.children)})"
        )


class CommunityHierarchy:
    """The forest of nested triangle-connected communities.

    Examples
    --------
    >>> from ..graph.undirected import complete_graph
    >>> g = complete_graph(5)
    >>> _ = g.add_edge(0, 10), g.add_edge(1, 10), g.add_edge(10, 11)
    >>> hierarchy = CommunityHierarchy(g)
    >>> [r.level for r in hierarchy.roots]
    [1]
    >>> [c.level for c in hierarchy.roots[0].children]
    [3]
    """

    def __init__(
        self,
        graph: Graph,
        result: Optional[TriangleKCoreResult] = None,
        *,
        backend: Optional[str] = None,
        engine: Optional[object] = None,
    ) -> None:
        index = CommunityIndex(graph, result, backend=backend, engine=engine)
        self._result = index.result
        self.roots: List[CommunityNode] = []
        nodes_by_level: Dict[int, List[CommunityNode]] = {}
        for k in range(1, index.max_level + 1):
            nodes_by_level[k] = [
                CommunityNode(level=k, edges=frozenset(community))
                for community in index.communities_at(k)
            ]
        # Attach deepest levels first so that when a level-k node collapses
        # an identical level-(k+1) chain link, the grandchildren it adopts
        # are already in place.
        for k in range(index.max_level - 1, 0, -1):
            for node in nodes_by_level[k]:
                for candidate in nodes_by_level.get(k + 1, []):
                    if not candidate.edges <= node.edges:
                        continue
                    if candidate.edges == node.edges:
                        # Chain link: the community survives unchanged at
                        # the next level.  Absorb it: keep the deeper
                        # node's level (its true density) and adopt its
                        # children directly.
                        node.level = candidate.level
                        node.children.extend(candidate.children)
                        for grandchild in candidate.children:
                            grandchild.parent = node
                    else:
                        node.children.append(candidate)
                        candidate.parent = node
        self.roots = nodes_by_level.get(1, [])

    @property
    def max_level(self) -> int:
        return self._result.max_kappa

    def walk(self) -> Iterator[CommunityNode]:
        for root in self.roots:
            yield from root.walk()

    def densest_leaves(self) -> List[CommunityNode]:
        """All childless nodes, densest level first."""
        leaves = [leaf for root in self.roots for leaf in root.leaves()]
        leaves.sort(key=lambda n: (-n.level, -n.size))
        return leaves

    def ascii_tree(self, *, max_children: int = 8) -> str:
        """Indented text rendering (for CLI / examples)."""
        lines: List[str] = []

        def visit(node: CommunityNode, depth: int) -> None:
            span = (
                f"level {node.level}"
                if node.first_level == node.level
                else f"levels {node.first_level}-{node.level}"
            )
            lines.append(
                "  " * depth
                + f"{span} (~{node.estimated_clique_size}-clique), "
                f"{node.size} vertices"
            )
            for child in node.children[:max_children]:
                visit(child, depth + 1)
            if len(node.children) > max_children:
                lines.append(
                    "  " * (depth + 1)
                    + f"... {len(node.children) - max_children} more"
                )

        for root in self.roots:
            visit(root, 0)
        return "\n".join(lines)
