"""Alternative peeling implementations for ablation studies.

The paper calls out two implementation choices in Algorithm 1:

* bucket sort for the edge list (steps 7/16) — giving O(1) pop and
  decrement versus the O(log E) of a binary heap;
* storing all triangles in memory versus recomputing an edge's triangles
  from adjacency when it is processed (§IV-A last paragraph) — trading
  memory for repeated common-neighbor intersections.

These variants exist so the ablation benchmarks can quantify both choices
against the default implementation in
:func:`repro.core.triangle_kcore.triangle_kcore_decomposition` (bucket
queue + recompute-on-demand).  All variants return identical kappa values;
the test suite asserts it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List

from ..graph.edge import Edge, canonical_edge
from ..graph.triangles import edge_triangle_index, triangle_supports
from ..graph.undirected import Graph
from .triangle_kcore import TriangleKCoreResult


def triangle_kcore_heap(graph: Graph) -> TriangleKCoreResult:
    """Algorithm 1 with a binary heap instead of the bucket queue.

    Decrease-key is emulated with lazy deletion (stale heap entries are
    skipped on pop), the standard heapq idiom.  Asymptotically
    O(|Tri| log |E|) versus the bucket version's O(|Tri|).
    """
    bounds: Dict[Edge, int] = dict(triangle_supports(graph))
    counter = itertools.count()
    heap: List[tuple] = [
        (bound, next(counter), edge) for edge, bound in bounds.items()
    ]
    heapq.heapify(heap)

    kappa: Dict[Edge, int] = {}
    processing_order: List[Edge] = []
    processed: set[Edge] = set()

    while heap:
        bound, _, edge = heapq.heappop(heap)
        if edge in processed or bound != bounds[edge]:
            continue  # stale entry
        kappa[edge] = bound
        processing_order.append(edge)
        u, v = edge
        for w in graph.common_neighbors(u, v):
            e1 = canonical_edge(u, w)
            e2 = canonical_edge(v, w)
            if e1 in processed or e2 in processed:
                continue
            for other in (e1, e2):
                if bounds[other] > bound:
                    bounds[other] -= 1
                    heapq.heappush(heap, (bounds[other], next(counter), other))
        processed.add(edge)

    return TriangleKCoreResult(kappa=kappa, processing_order=processing_order)


def triangle_kcore_stored_triangles(graph: Graph) -> TriangleKCoreResult:
    """Algorithm 1 with the full edge->triangles index materialized.

    This is the paper's "store all triangles in main memory" mode: step 11
    reuses the stored triangles instead of recomputing common neighbors.
    Costs O(|Tri|) memory; saves an intersection per processed edge.
    """
    index = edge_triangle_index(graph)
    bounds: Dict[Edge, int] = {edge: len(ts) for edge, ts in index.items()}

    from .bucket_queue import BucketQueue

    queue: BucketQueue[Edge] = BucketQueue(bounds)
    kappa: Dict[Edge, int] = {}
    processing_order: List[Edge] = []
    processed: set[Edge] = set()
    processed_triangles: set = set()

    while len(queue):
        edge, bound = queue.pop_min()
        kappa[edge] = bound
        processing_order.append(edge)
        for triangle in index[edge]:
            if triangle in processed_triangles:
                continue
            processed_triangles.add(triangle)
            a, b, c = triangle
            for other in ((a, b), (a, c), (b, c)):
                if other == edge or other in processed:
                    continue
                if queue.priority(other) > bound:
                    queue.decrement(other)
        processed.add(edge)

    return TriangleKCoreResult(kappa=kappa, processing_order=processing_order)
