"""Algorithm 1: detect every edge's maximum Triangle K-Core number.

This is the paper's central static algorithm (§IV-A).  Outline:

1. Compute the triangle support of every edge — the initial upper bound
   :math:`\\tilde\\kappa(e)` (steps 1-5; every triangle on ``e`` *may* be in
   ``e``'s maximum Triangle K-Core).
2. Bucket-sort edges by :math:`\\tilde\\kappa` (step 7).
3. Repeatedly take a minimum edge ``e_t``; its bound is now exact:
   :math:`\\kappa(e_t) = \\tilde\\kappa(e_t)` (step 10, proved via Claim 2).
4. For every *unprocessed* triangle on ``e_t`` (no edge of it processed yet),
   decrement the bound of the other two edges when it exceeds
   :math:`\\kappa(e_t)` — the triangle cannot survive in their cores because
   that would violate Theorem 1 (steps 11-17).

The total cost beyond triangle enumeration is O(|E| + |Tri|).

Terminology note: :math:`\\kappa(e) + 2` equals the modern *k-truss* number
of the edge; the tests cross-check against networkx's independent
``k_truss`` implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional

from ..graph.edge import Edge, Vertex, canonical_edge, canonical_triangle
from ..graph.undirected import Graph
from .bucket_queue import BucketQueue
from .membership import CoreMembership


@dataclass
class TriangleKCoreResult:
    """Output of the static decomposition.

    Attributes
    ----------
    kappa:
        ``{edge: maximum Triangle K-Core number}`` for every edge of the
        input graph (paper Definition 4, :math:`\\kappa(e)`).
    processing_order:
        Edges in the order Algorithm 1 froze them — non-decreasing in
        ``kappa``.  Position in this list initializes ``e.order`` for the
        dynamic update algorithms (paper §IX-A).
    membership:
        Optional :class:`CoreMembership` bookkeeping (AddToCore /
        DelFromCore state at termination); present when the decomposition was
        run with ``store_membership=True``.
    """

    kappa: Dict[Edge, int]
    processing_order: List[Edge] = field(default_factory=list)
    membership: Optional[CoreMembership] = None

    # -------------------------------------------------------------- #
    # lookups
    # -------------------------------------------------------------- #

    def kappa_of(self, u: Vertex, v: Vertex) -> int:
        """:math:`\\kappa` of the edge ``{u, v}`` (KeyError if absent)."""
        return self.kappa[canonical_edge(u, v)]

    @property
    def max_kappa(self) -> int:
        """The largest :math:`\\kappa` over all edges (0 for empty graphs)."""
        return max(self.kappa.values(), default=0)

    def co_clique_size(self, u: Vertex, v: Vertex) -> int:
        """CSV-style co-clique-size estimate ``kappa(e) + 2`` (paper §V).

        An ``n``-vertex clique is an ``(n-2)``-Triangle K-Core, so
        ``kappa + 2`` approximates the size of the largest clique-like
        structure the edge participates in.
        """
        return self.kappa_of(u, v) + 2

    def vertex_kappa(self) -> Dict[Vertex, int]:
        """Per-vertex density: max :math:`\\kappa` over incident edges.

        Vertices with no edges get 0.  This is the quantity the density plot
        draws on the y-axis (offset by +2 for co-clique size).
        """
        result: Dict[Vertex, int] = {}
        for (u, v), k in self.kappa.items():
            if result.get(u, -1) < k:
                result[u] = k
            if result.get(v, -1) < k:
                result[v] = k
        return result

    def edges_with_kappa_at_least(self, k: int) -> Iterator[Edge]:
        """Edges whose maximum Triangle K-Core number is >= ``k``."""
        return (edge for edge, value in self.kappa.items() if value >= k)

    def order_index(self) -> Dict[Edge, float]:
        """``{edge: position in processing_order}`` — the paper's ``e.order``."""
        return {edge: float(i) for i, edge in enumerate(self.processing_order)}

    def histogram(self) -> Dict[int, int]:
        """``{kappa value: edge count}`` — summary used by EXPERIMENTS.md."""
        counts: Dict[int, int] = {}
        for value in self.kappa.values():
            counts[value] = counts.get(value, 0) + 1
        return dict(sorted(counts.items()))


def triangle_kcore_decomposition(
    graph: Graph,
    *,
    store_membership: bool = False,
    backend: str = "auto",
    workers: Optional[int] = None,
    counters: Optional[Dict[str, int]] = None,
) -> TriangleKCoreResult:
    """Run Algorithm 1 on ``graph``.

    Parameters
    ----------
    graph:
        A simple undirected graph.
    store_membership:
        When True, maintain the AddToCore/DelFromCore bookkeeping (paper
        steps 5 and 14).  The paper notes the static algorithm does not need
        it; it costs O(|Tri|) memory and is mainly useful for inspecting the
        maximum-core triangles and validating Rule 1.  Forces the reference
        backend.
    backend:
        ``"reference"`` runs the dict-based implementation below;
        ``"csr"`` snapshots the graph into flat integer arrays and runs the
        :mod:`repro.fast` kernels (identical kappa maps, much faster on
        large graphs); ``"parallel"`` additionally fans the triangle
        enumeration out over a process pool (bit-identical to ``"csr"``);
        ``"auto"`` (default) picks per the policy documented in
        :mod:`repro.fast`.
    workers:
        Worker-process count for the ``"parallel"`` backend (and the
        ``"auto"`` escalation policy); ``None`` means one per CPU.
        Ignored by the in-process backends.
    counters:
        Optional dict that, when provided, receives work counters at no
        measurable cost (they are derived from state the peel computes
        anyway): ``triangles_enumerated``, ``support_sum`` (the sum of
        initial bounds), ``edges_peeled``, and ``bucket_decrements``
        (``support_sum`` minus the final kappa sum — every bucket
        decrement lowers exactly one bound by one).  This is the hook the
        instrumented engine (:mod:`repro.engine`) reads.

    Returns
    -------
    TriangleKCoreResult
        kappa values, processing order, and optional membership state.

    Examples
    --------
    The paper's Figure 2 example graph:

    >>> g = Graph(edges=[("A", "B"), ("A", "C"), ("B", "C"), ("B", "D"),
    ...                  ("B", "E"), ("C", "D"), ("C", "E"), ("D", "E")])
    >>> result = triangle_kcore_decomposition(g)
    >>> result.kappa_of("A", "B")
    1
    >>> result.kappa_of("B", "C")
    2
    """
    from ..fast import (
        backend_executor,
        csr_decomposition,
        parallel_decomposition,
        resolve_backend,
    )

    resolved = resolve_backend(
        backend, graph, needs_reference=store_membership, workers=workers
    )
    if resolved in ("csr", "csr-vec"):
        return csr_decomposition(
            graph, counters=counters, executor=backend_executor(resolved)
        )
    if resolved in ("parallel", "parallel-vec"):
        return parallel_decomposition(
            graph,
            workers=workers,
            counters=counters,
            executor=backend_executor(resolved),
        )

    # Steps 1-5: initial upper bounds = triangle supports.  A single pass
    # over the canonical triangle enumeration both counts supports and, when
    # requested, populates the membership sets.
    from ..graph.triangles import enumerate_triangles

    kappa_bound: Dict[Edge, int] = {edge: 0 for edge in graph.edges()}
    membership = CoreMembership() if store_membership else None
    if membership is not None:
        for edge in kappa_bound:
            membership.ensure_edge(edge)
    for triangle in enumerate_triangles(graph):
        a, b, c = triangle
        for edge in ((a, b), (a, c), (b, c)):
            kappa_bound[edge] += 1
            if membership is not None:
                membership.add_to_core(triangle, edge)

    # Step 7: bucket sort.
    queue: BucketQueue[Edge] = BucketQueue(kappa_bound)

    kappa: Dict[Edge, int] = {}
    processing_order: List[Edge] = []
    processed: set[Edge] = set()

    # Steps 8-18: peel in increasing bound order.
    while len(queue):
        edge, bound = queue.pop_min()
        kappa[edge] = bound
        processing_order.append(edge)
        u, v = edge
        for w in graph.common_neighbors(u, v):
            e1 = canonical_edge(u, w)
            e2 = canonical_edge(v, w)
            # A triangle is processed once any of its edges is processed
            # (paper definition); only unprocessed triangles are updated.
            if e1 in processed or e2 in processed:
                continue
            triangle = canonical_triangle(u, v, w)
            for other in (e1, e2):
                # Step 13: Theorem 1 pruning — the triangle cannot be in
                # `other`'s maximum core if that core's number would exceed
                # the just-frozen kappa(edge).
                if queue.priority(other) > bound:
                    queue.decrement(other)
                    if membership is not None:
                        membership.del_from_core(triangle, other)
        processed.add(edge)

    if counters is not None:
        support_sum = sum(kappa_bound.values())
        counters["triangles_enumerated"] = support_sum // 3
        counters["support_sum"] = support_sum
        counters["edges_peeled"] = len(kappa)
        counters["bucket_decrements"] = support_sum - sum(kappa.values())

    return TriangleKCoreResult(
        kappa=kappa,
        processing_order=processing_order,
        membership=membership,
    )


def co_clique_sizes(result: TriangleKCoreResult) -> Dict[Edge, int]:
    """``{edge: kappa + 2}`` for every edge — the CSV proxy (paper §V)."""
    return {edge: value + 2 for edge, value in result.kappa.items()}


def kappa_upper_bounds(graph: Graph) -> Dict[Edge, int]:
    """The pre-peeling bounds :math:`\\tilde\\kappa(e)` (triangle supports).

    Exposed separately because the Figure 2 walk-through and several tests
    want to inspect the initial state of Algorithm 1.
    """
    from ..graph.triangles import triangle_supports

    return triangle_supports(graph)


def truss_numbers(result: TriangleKCoreResult) -> Dict[Edge, int]:
    """Modern k-truss numbers: ``kappa(e) + 2`` for every edge.

    Provided for interoperability; an edge belongs to the networkx
    ``k_truss(G, k)`` subgraph exactly when ``truss_numbers[e] >= k``.
    """
    return {edge: value + 2 for edge, value in result.kappa.items()}


def kappa_from_mapping(mapping: Mapping[Edge, int]) -> TriangleKCoreResult:
    """Wrap a plain ``{edge: kappa}`` mapping as a result object.

    Useful when kappa values come from elsewhere (e.g. the dynamic
    maintainer) but a :class:`TriangleKCoreResult` API is wanted.
    The processing order is synthesized in increasing-kappa order, which
    satisfies the invariant the dynamic algorithms rely on.
    """
    kappa = dict(mapping)
    order = sorted(kappa, key=lambda edge: (kappa[edge], repr(edge)))
    return TriangleKCoreResult(kappa=kappa, processing_order=order)
