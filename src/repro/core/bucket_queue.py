"""Bucket-sorted priority structure used by the peeling algorithms.

Algorithm 1 (paper §IV-A) keeps every edge in a list sorted by the upper
bound :math:`\\tilde\\kappa`, repeatedly removes a minimum, and *decrements*
the bound of neighboring edges.  With integer priorities bounded by the
maximum triangle support, an array of buckets supports:

* build — O(n),
* pop-min — amortized O(1) (a floor pointer only moves forward, because the
  peeling never decrements a priority below the value being processed),
* decrement — O(1) (paper step 16: "based on bucket sort the update could be
  optimized with complexity O(1)").

The same structure drives the classic K-Core decomposition of Batagelj and
Zaveršnik that the paper builds on (§III).
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, List, Mapping, Set, TypeVar

K = TypeVar("K", bound=Hashable)


class BucketQueue(Generic[K]):
    """Monotone integer-priority queue over hashable keys.

    Priorities must be non-negative integers.  Arbitrary ``set_priority``
    moves are supported (the floor pointer is lowered if needed), but the
    typical peeling usage only ever decrements priorities that are strictly
    above the current floor, which keeps every operation O(1).

    Examples
    --------
    >>> q = BucketQueue({"a": 2, "b": 0, "c": 1})
    >>> q.pop_min()
    ('b', 0)
    >>> q.decrement("a")
    1
    >>> sorted([q.pop_min(), q.pop_min()])
    [('a', 1), ('c', 1)]
    """

    def __init__(self, priorities: Mapping[K, int]) -> None:
        self._priority: Dict[K, int] = {}
        self._buckets: List[Set[K]] = []
        self._floor = 0
        self._size = 0
        for key, priority in priorities.items():
            self.insert(key, priority)

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: K) -> bool:
        return key in self._priority

    def priority(self, key: K) -> int:
        """Current priority of ``key`` (KeyError if absent)."""
        return self._priority[key]

    def _bucket(self, priority: int) -> Set[K]:
        while len(self._buckets) <= priority:
            self._buckets.append(set())
        return self._buckets[priority]

    # ------------------------------------------------------------------ #

    def insert(self, key: K, priority: int) -> None:
        """Insert a new key (KeyError-free; re-inserting raises ValueError)."""
        if priority < 0:
            raise ValueError(f"priority must be non-negative, got {priority}")
        if key in self._priority:
            raise ValueError(f"key {key!r} already present")
        self._priority[key] = priority
        self._bucket(priority).add(key)
        self._size += 1
        if priority < self._floor:
            self._floor = priority

    def _advance_floor(self) -> None:
        """Move the floor pointer past empty buckets (eagerly, so later
        ``peek_min_priority`` / ``pop_min`` calls never rescan them)."""
        buckets = self._buckets
        floor = self._floor
        while floor < len(buckets) and not buckets[floor]:
            floor += 1
        self._floor = floor

    def remove(self, key: K) -> int:
        """Remove ``key``; return the priority it had."""
        priority = self._priority.pop(key)
        self._buckets[priority].discard(key)
        self._size -= 1
        # Removing the last key of the floor bucket would otherwise leave a
        # stale floor that every subsequent peek rescans from.
        if self._size and priority == self._floor and not self._buckets[priority]:
            self._advance_floor()
        return priority

    def set_priority(self, key: K, priority: int) -> None:
        """Move ``key`` to a new priority."""
        if priority < 0:
            raise ValueError(f"priority must be non-negative, got {priority}")
        old = self._priority[key]
        if old == priority:
            return
        self._buckets[old].discard(key)
        self._bucket(priority).add(key)
        self._priority[key] = priority
        if priority < self._floor:
            self._floor = priority
        elif old == self._floor and not self._buckets[old]:
            self._advance_floor()

    def decrement(self, key: K) -> int:
        """Decrease ``key``'s priority by one; return the new priority."""
        new = self._priority[key] - 1
        self.set_priority(key, new)
        return new

    def pop_min(self) -> tuple[K, int]:
        """Remove and return ``(key, priority)`` with the smallest priority.

        Raises IndexError when empty.
        """
        if self._size == 0:
            raise IndexError("pop from empty BucketQueue")
        self._advance_floor()
        bucket = self._buckets[self._floor]
        key = bucket.pop()
        del self._priority[key]
        self._size -= 1
        return key, self._floor

    def peek_min_priority(self) -> int:
        """Smallest priority currently stored (IndexError when empty)."""
        if self._size == 0:
            raise IndexError("peek on empty BucketQueue")
        self._advance_floor()
        return self._floor

    def keys(self) -> Iterable[K]:
        """All keys currently in the queue (no order guarantee)."""
        return self._priority.keys()
