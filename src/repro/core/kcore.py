"""Classic vertex K-Core decomposition (Batagelj–Zaveršnik).

The paper's Definitions 1-2 introduce the ordinary K-Core as the starting
point for the Triangle K-Core, and cite Batagelj & Zaveršnik's O(|E|) peeling
algorithm [21].  We implement it both as a substrate (the comparison in the
paper's Figure 1) and as a useful pre-filter: every edge of a Triangle K-Core
with number ``k`` lies in the vertex ``(k+1)``-core, so large graphs can be
pruned with the cheaper vertex decomposition first.
"""

from __future__ import annotations

from typing import Dict

from ..graph.edge import Vertex
from ..graph.undirected import Graph
from .bucket_queue import BucketQueue


def kcore_decomposition(graph: Graph) -> Dict[Vertex, int]:
    """Return the maximum K-Core number of every vertex (paper Definition 2).

    Peeling: repeatedly delete a minimum-degree vertex; a vertex's core
    number is the largest floor value seen when it is deleted.

    >>> from ..graph.undirected import complete_graph
    >>> core = kcore_decomposition(complete_graph(4))
    >>> sorted(core.values())
    [3, 3, 3, 3]
    """
    degrees = {vertex: graph.degree(vertex) for vertex in graph.vertices()}
    queue: BucketQueue[Vertex] = BucketQueue(degrees)
    core: Dict[Vertex, int] = {}
    removed: set = set()
    current = 0
    while len(queue):
        vertex, degree = queue.pop_min()
        current = max(current, degree)
        core[vertex] = current
        removed.add(vertex)
        for neighbor in graph.neighbors(vertex):
            if neighbor not in removed and queue.priority(neighbor) > current:
                queue.decrement(neighbor)
    return core


def kcore_subgraph(graph: Graph, k: int) -> Graph:
    """Return the maximal subgraph in which every vertex has degree >= k.

    This is the union of all K-Cores with core number at least ``k``
    (Definition 1); it may be empty.
    """
    core = kcore_decomposition(graph)
    return graph.subgraph(v for v, c in core.items() if c >= k)


def degeneracy(graph: Graph) -> int:
    """The graph's degeneracy: the largest k with a non-empty k-core.

    Also an upper bound on clique size minus one, which makes it a cheap
    sanity bound for the density plots (``co_clique_size <= degeneracy + 1``).
    """
    core = kcore_decomposition(graph)
    return max(core.values(), default=0)


def core_filter_for_triangle_kcore(graph: Graph, k: int) -> Graph:
    """Prune ``graph`` to the vertex ``(k+1)``-core before triangle peeling.

    In a Triangle K-Core with number ``k`` every edge lies in ``k`` triangles
    of the subgraph, so every vertex has at least ``k + 1`` neighbors inside
    it.  Removing vertices outside the vertex ``(k+1)``-core therefore cannot
    remove any Triangle K-Core with number >= ``k``.  Used as an optional
    accelerator when only high-``k`` structure is wanted.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return kcore_subgraph(graph, k + 1)
