"""Save / load decomposition results.

Decomposing a large graph once and reusing the kappa values across
sessions (plots, community queries, dynamic warm starts) is a common
workflow; this module serializes a :class:`TriangleKCoreResult` to a
versioned JSON document.

Vertices must be JSON-representable scalars (int / str / float / bool);
anything richer raises :class:`~repro.exceptions.DecompositionError` at
save time rather than producing an unloadable file.
"""

from __future__ import annotations

import json
import os
from typing import List, Union

from ..exceptions import DecompositionError
from ..graph.edge import Edge, Vertex, canonical_edge
from .triangle_kcore import TriangleKCoreResult

PathLike = Union[str, os.PathLike]

FORMAT_VERSION = 1
_SCALARS = (int, str, float, bool)


def _check_vertex(vertex: Vertex) -> None:
    if not isinstance(vertex, _SCALARS):
        raise DecompositionError(
            f"vertex {vertex!r} of type {type(vertex).__name__} is not "
            "JSON-serializable; persistence supports int/str/float/bool "
            "vertices"
        )


def save_result(result: TriangleKCoreResult, path: PathLike) -> None:
    """Write ``result`` to ``path`` as versioned JSON.

    The membership bookkeeping (if any) is intentionally not persisted —
    it is O(|Tri|) and recoverable via Rule 1 from exactly the data saved
    here (kappa + processing order).
    """
    entries: List[list] = []
    for edge in result.processing_order:
        u, v = edge
        _check_vertex(u)
        _check_vertex(v)
        entries.append([u, v, result.kappa[edge]])
    # Edges not in the processing order (possible for synthesized results)
    # are appended so kappa is always complete.
    ordered = set(result.processing_order)
    for edge, kappa in sorted(result.kappa.items(), key=repr):
        if edge not in ordered:
            u, v = edge
            _check_vertex(u)
            _check_vertex(v)
            entries.append([u, v, kappa])
    document = {
        "format": "triangle-kcore-result",
        "version": FORMAT_VERSION,
        "edges": entries,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
        handle.write("\n")


def load_result(path: PathLike) -> TriangleKCoreResult:
    """Read a result written by :func:`save_result`.

    Raises :class:`DecompositionError` for wrong format/version documents.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("format") != (
        "triangle-kcore-result"
    ):
        raise DecompositionError(f"{path}: not a triangle-kcore result file")
    if document.get("version") != FORMAT_VERSION:
        raise DecompositionError(
            f"{path}: unsupported version {document.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    kappa: dict[Edge, int] = {}
    processing_order: List[Edge] = []
    for entry in document["edges"]:
        if not (isinstance(entry, list) and len(entry) == 3):
            raise DecompositionError(f"{path}: malformed edge entry {entry!r}")
        u, v, k = entry
        edge = canonical_edge(u, v)
        kappa[edge] = int(k)
        processing_order.append(edge)
    return TriangleKCoreResult(kappa=kappa, processing_order=processing_order)
