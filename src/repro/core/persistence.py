"""Save / load decomposition results.

Decomposing a large graph once and reusing the kappa values across
sessions (plots, community queries, dynamic warm starts) is a common
workflow; this module serializes a :class:`TriangleKCoreResult` to a
versioned JSON document.

Vertices must be JSON-representable scalars (int / str / float / bool);
anything richer raises :class:`~repro.exceptions.DecompositionError` at
save time rather than producing an unloadable file.

Loading is strict: a truncated, corrupt, or schema-violating file raises
a typed :class:`~repro.exceptions.PersistenceError` naming the offending
path — never a raw ``json.JSONDecodeError`` or ``KeyError``.
"""

from __future__ import annotations

import json
import os
from typing import List, Union

from ..exceptions import DecompositionError, PersistenceError
from ..graph.edge import Edge, Vertex, canonical_edge
from .triangle_kcore import TriangleKCoreResult

PathLike = Union[str, os.PathLike]

FORMAT_VERSION = 1
_SCALARS = (int, str, float, bool)


def _check_vertex(vertex: Vertex) -> None:
    if not isinstance(vertex, _SCALARS):
        raise DecompositionError(
            f"vertex {vertex!r} of type {type(vertex).__name__} is not "
            "JSON-serializable; persistence supports int/str/float/bool "
            "vertices"
        )


def save_result(result: TriangleKCoreResult, path: PathLike) -> None:
    """Write ``result`` to ``path`` as versioned JSON.

    The membership bookkeeping (if any) is intentionally not persisted —
    it is O(|Tri|) and recoverable via Rule 1 from exactly the data saved
    here (kappa + processing order).
    """
    entries: List[list] = []
    for edge in result.processing_order:
        u, v = edge
        _check_vertex(u)
        _check_vertex(v)
        entries.append([u, v, result.kappa[edge]])
    # Edges not in the processing order (possible for synthesized results)
    # are appended so kappa is always complete.
    ordered = set(result.processing_order)
    for edge, kappa in sorted(result.kappa.items(), key=repr):
        if edge not in ordered:
            u, v = edge
            _check_vertex(u)
            _check_vertex(v)
            entries.append([u, v, kappa])
    document = {
        "format": "triangle-kcore-result",
        "version": FORMAT_VERSION,
        "edges": entries,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
        handle.write("\n")


def load_result(path: PathLike) -> TriangleKCoreResult:
    """Read a result written by :func:`save_result`.

    Raises :class:`~repro.exceptions.PersistenceError` (a
    :class:`DecompositionError` subclass) for anything that is not a
    well-formed result document: unreadable bytes, invalid JSON, wrong
    format/version tags, or malformed / wrongly-typed edge entries.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except json.JSONDecodeError as error:
        raise PersistenceError(
            path, f"not valid JSON (truncated or corrupt file): {error}"
        ) from error
    except UnicodeDecodeError as error:
        raise PersistenceError(path, f"not a UTF-8 text file: {error}") from error
    if not isinstance(document, dict) or document.get("format") != (
        "triangle-kcore-result"
    ):
        raise PersistenceError(path, "not a triangle-kcore result file")
    if document.get("version") != FORMAT_VERSION:
        raise PersistenceError(
            path,
            f"unsupported version {document.get('version')!r} "
            f"(expected {FORMAT_VERSION})",
        )
    entries = document.get("edges")
    if not isinstance(entries, list):
        raise PersistenceError(
            path, f"missing or malformed 'edges' list (got {type(entries).__name__})"
        )
    kappa: dict[Edge, int] = {}
    processing_order: List[Edge] = []
    for entry in entries:
        if not (isinstance(entry, list) and len(entry) == 3):
            raise PersistenceError(path, f"malformed edge entry {entry!r}")
        u, v, k = entry
        if not isinstance(u, _SCALARS) or not isinstance(v, _SCALARS):
            raise PersistenceError(
                path, f"non-scalar vertex in edge entry {entry!r}"
            )
        if isinstance(k, bool) or not isinstance(k, int) or k < 0:
            raise PersistenceError(
                path, f"kappa must be a non-negative integer in {entry!r}"
            )
        if u == v:
            raise PersistenceError(path, f"self loop in edge entry {entry!r}")
        edge = canonical_edge(u, v)
        if edge in kappa:
            raise PersistenceError(path, f"duplicate edge entry {entry!r}")
        kappa[edge] = k
        processing_order.append(edge)
    return TriangleKCoreResult(kappa=kappa, processing_order=processing_order)
