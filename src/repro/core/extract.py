"""Extraction of maximum Triangle K-Core subgraphs.

Claim 2 of the paper shows that, at the moment an edge ``e`` with
:math:`\\kappa(e) = k` is processed, the subgraph built from all edges whose
current bound is at least ``k`` is a Triangle K-Core with number ``k``
containing ``e``.  After the decomposition finishes, the same construction
applies with final kappa values: the union of all edges with
:math:`\\kappa \\ge k` is the maximal Triangle K-Core of level ``k``.

Because Definition 3 does not require connectivity, that union is *the*
maximum Triangle K-Core of every edge at level ``k``.  For analysis and
visualization one usually wants the individual dense regions, so we also
provide the *triangle-connected* components of each level (two edges are
triangle-connected at level ``k`` when a chain of triangles, all of whose
edges have :math:`\\kappa \\ge k`, links them) — these are the "clique-like
structures" the paper circles in its density plots.
"""

from __future__ import annotations

from typing import Iterator, List, Set

from ..graph.edge import Edge, Vertex, canonical_edge
from ..graph.undirected import Graph
from .triangle_kcore import TriangleKCoreResult


def level_subgraph(graph: Graph, result: TriangleKCoreResult, k: int) -> Graph:
    """The maximal Triangle K-Core with number >= ``k`` (possibly empty).

    This is the union of the maximum Triangle K-Cores of all edges with
    :math:`\\kappa(e) \\ge k` (paper Claim 2).
    """
    sub = Graph()
    for edge in result.edges_with_kappa_at_least(k):
        sub.add_edge(*edge, exist_ok=True)
    return sub


def max_core_of_edge(
    graph: Graph,
    result: TriangleKCoreResult,
    u: Vertex,
    v: Vertex,
    *,
    connected: bool = True,
) -> Graph:
    """The maximum Triangle K-Core containing the edge ``{u, v}``.

    With ``connected=True`` (default) the result is restricted to the
    triangle-connected component of the edge at level ``kappa(e)`` — the
    locally dense region a user actually wants to look at.  With
    ``connected=False`` the full level subgraph is returned (the literal
    maximal object of Definition 4).
    """
    k = result.kappa_of(u, v)
    if not connected:
        return level_subgraph(graph, result, k)
    component = triangle_connected_component(graph, result, canonical_edge(u, v), k)
    sub = Graph()
    for edge in component:
        sub.add_edge(*edge, exist_ok=True)
    return sub


def triangle_connected_component(
    graph: Graph,
    result: TriangleKCoreResult,
    start: Edge,
    k: int,
) -> Set[Edge]:
    """Edges triangle-connected to ``start`` within the level-``k`` subgraph.

    BFS over edges: from edge ``(u, v)`` we can step to ``(u, w)`` and
    ``(v, w)`` whenever the triangle ``(u, v, w)`` has all three edges at
    :math:`\\kappa \\ge k`.
    """
    kappa = result.kappa
    if kappa.get(start, -1) < k:
        return set()
    component: Set[Edge] = {start}
    stack: List[Edge] = [start]
    while stack:
        u, v = stack.pop()
        for w in graph.common_neighbors(u, v):
            e1 = canonical_edge(u, w)
            e2 = canonical_edge(v, w)
            if kappa.get(e1, -1) >= k and kappa.get(e2, -1) >= k:
                for other in (e1, e2):
                    if other not in component:
                        component.add(other)
                        stack.append(other)
    return component


def triangle_connected_components(
    graph: Graph,
    result: TriangleKCoreResult,
    k: int,
) -> List[Set[Edge]]:
    """All triangle-connected components of the level-``k`` subgraph.

    Each component is a set of canonical edges; components are disjoint but
    may share vertices (two cliques meeting at a single vertex are distinct
    communities).  Edges with :math:`\\kappa \\ge k` that lie in no triangle
    of the level subgraph form singleton components only when ``k == 0``;
    for ``k >= 1`` every qualifying edge is in at least one level triangle.
    """
    remaining = {edge for edge in result.edges_with_kappa_at_least(k)}
    components: List[Set[Edge]] = []
    while remaining:
        start = remaining.pop()
        component = triangle_connected_component(graph, result, start, k)
        component.add(start)
        remaining -= component
        components.append(component)
    components.sort(key=lambda c: (-len(c), repr(sorted(c, key=repr)[:1])))
    return components


def dense_communities(
    graph: Graph,
    result: TriangleKCoreResult,
    *,
    min_kappa: int = 1,
) -> Iterator[tuple[int, Set[Vertex]]]:
    """Yield ``(k, vertex set)`` for the densest communities first.

    Walks levels from ``result.max_kappa`` down to ``min_kappa`` and yields
    each triangle-connected component the first time it appears (i.e. at the
    highest level where its edges all qualify).  This is the enumeration the
    case studies (Figs 7-12) use to pick the "circled" cliques.
    """
    seen: List[Set[Vertex]] = []
    for k in range(result.max_kappa, min_kappa - 1, -1):
        for component in triangle_connected_components(graph, result, k):
            vertices: Set[Vertex] = set()
            for u, v in component:
                vertices.add(u)
                vertices.add(v)
            if any(vertices <= previous for previous in seen):
                continue
            seen.append(vertices)
            yield k, vertices


def vertex_set_of_edges(edges: Set[Edge]) -> Set[Vertex]:
    """Endpoints of an edge set (helper for community reporting)."""
    vertices: Set[Vertex] = set()
    for u, v in edges:
        vertices.add(u)
        vertices.add(v)
    return vertices


def is_triangle_kcore(graph: Graph, k: int) -> bool:
    """Check Definition 3 directly: every edge in >= ``k`` triangles.

    Runs on the *whole* graph treated as the candidate subgraph; used by the
    validators and property tests.
    """
    for u, v in graph.edges():
        if len(graph.common_neighbors(u, v)) < k:
            return False
    return True
