"""Core-membership bookkeeping: AddToCore / DelFromCore / IsInCore.

Algorithm 1 (steps 5 and 14) maintains, for every edge, the set of triangles
currently believed to be in the edge's maximum Triangle K-Core.  The paper
notes the bookkeeping "is not necessary" for the static decomposition "but it
will be useful for dynamic update algorithms"; it also powers the Rule 1
recovery check (§IX-A) and the subgraph extraction used in the PPI case
study.

We keep the sets explicit (one ``set`` of canonical triangles per edge).  For
memory-constrained runs the paper's alternative — recompute triangles on
demand and recover membership through Rule 1 — is provided by
:func:`recover_membership_rule1`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Set

from ..graph.edge import Edge, Triangle, triangle_edges
from ..graph.undirected import Graph


class CoreMembership:
    """Per-edge record of which triangles sit in the edge's maximum core.

    The three operations named in the paper:

    * :meth:`add_to_core` — AddToCore(t, e)
    * :meth:`del_from_core` — DelFromCore(t, e)
    * :meth:`is_in_core` — IsInCore(t, e)
    """

    def __init__(self) -> None:
        self._core: Dict[Edge, Set[Triangle]] = {}

    def ensure_edge(self, edge: Edge) -> None:
        """Create an empty membership set for ``edge`` if absent."""
        self._core.setdefault(edge, set())

    def drop_edge(self, edge: Edge) -> None:
        """Forget the membership set of a deleted edge."""
        self._core.pop(edge, None)

    def add_to_core(self, triangle: Triangle, edge: Edge) -> None:
        """Record that ``triangle`` is in ``edge``'s maximum core."""
        self._core.setdefault(edge, set()).add(triangle)

    def del_from_core(self, triangle: Triangle, edge: Edge) -> None:
        """Record that ``triangle`` left ``edge``'s maximum core."""
        members = self._core.get(edge)
        if members is not None:
            members.discard(triangle)

    def is_in_core(self, triangle: Triangle, edge: Edge) -> bool:
        """True if ``triangle`` is currently in ``edge``'s maximum core."""
        members = self._core.get(edge)
        return members is not None and triangle in members

    def triangles_of(self, edge: Edge) -> Set[Triangle]:
        """The triangles currently in ``edge``'s maximum core (a live set)."""
        return self._core.setdefault(edge, set())

    def count(self, edge: Edge) -> int:
        """Number of triangles in ``edge``'s maximum core."""
        members = self._core.get(edge)
        return 0 if members is None else len(members)

    def edges(self) -> Iterable[Edge]:
        """Edges with a membership record."""
        return self._core.keys()

    def copy(self) -> "CoreMembership":
        clone = CoreMembership()
        clone._core = {edge: set(members) for edge, members in self._core.items()}
        return clone


def recover_membership_rule1(
    graph: Graph,
    kappa: Mapping[Edge, int],
    order_index: Mapping[Edge, float],
) -> CoreMembership:
    """Rebuild core membership from kappa values and processing order.

    Implements the paper's Rule 1 (§IX-A): a triangle's "process time" is the
    smallest ``order`` value among its edges; for an edge ``e`` with
    ``kappa(e) = k``, sorting its triangles by increasing process time, the
    *last* ``k`` triangles are exactly the ones in ``e``'s maximum Triangle
    K-Core.  This is what lets the dynamic algorithms run without storing
    triangles (paper §IV-A last paragraph).
    """
    from ..graph.triangles import triangles_of_edge

    membership = CoreMembership()
    for edge in graph.edges():
        membership.ensure_edge(edge)
        k = kappa.get(edge, 0)
        if k <= 0:
            continue
        u, v = edge
        triangles = list(triangles_of_edge(graph, u, v))

        def process_time(triangle: Triangle) -> float:
            return min(order_index[e] for e in triangle_edges(triangle))

        triangles.sort(key=process_time)
        for triangle in triangles[-k:]:
            membership.add_to_core(triangle, edge)
    return membership
