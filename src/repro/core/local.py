"""Local kappa estimation: certified bounds without a full decomposition.

The paper pitches Triangle K-Cores for "probing" large graphs.  When only
a handful of edges matter — is this suspicious edge part of something
dense? — running Algorithm 1 over the whole graph is wasteful.  This
module computes *certified* bounds for a single edge by looking only at
its neighborhood:

* **lower bound** — decompose the induced ball of radius ``r`` around the
  edge; any Triangle K-Core found inside a subgraph is a Triangle K-Core
  of the whole graph, so the local kappa is a valid global lower bound
  (and is exact once the ball swallows the edge's maximum core).
* **upper bound** — run ``s`` localized TriDN-style validity-repair sweeps
  (paper §VI) seeded with exact triangle supports.  Sweep values decrease
  monotonically toward the true fixpoint from above, and *restricting*
  repair to a neighborhood can only keep values higher, so every sweep
  count yields a valid upper bound — computable from the ``s``-hop ball.

Both bounds tighten monotonically with the radius/sweep budget and meet at
the true kappa for large enough budgets (property-tested).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..exceptions import EdgeNotFoundError
from ..graph.edge import Edge, Vertex, canonical_edge
from ..graph.undirected import Graph


def ball_vertices(graph: Graph, u: Vertex, v: Vertex, radius: int) -> Set[Vertex]:
    """Vertices within ``radius`` hops of either endpoint of ``{u, v}``."""
    frontier = {u, v}
    visited = {u, v}
    for _ in range(radius):
        next_frontier: Set[Vertex] = set()
        for vertex in frontier:
            for neighbor in graph.neighbors(vertex):
                if neighbor not in visited:
                    visited.add(neighbor)
                    next_frontier.add(neighbor)
        frontier = next_frontier
        if not frontier:
            break
    return visited


def edge_ball(graph: Graph, u: Vertex, v: Vertex, radius: int) -> Graph:
    """The induced subgraph on :func:`ball_vertices`."""
    return graph.subgraph(ball_vertices(graph, u, v, radius))


def kappa_lower_bound(
    graph: Graph,
    u: Vertex,
    v: Vertex,
    *,
    radius: int = 2,
    backend: Optional[str] = None,
    engine: Optional[object] = None,
) -> int:
    """Certified lower bound from the radius-``radius`` induced ball.

    Exact whenever the ball contains the edge's maximum Triangle K-Core
    (radius >= its diameter from the edge); always sound because a
    subgraph's Triangle K-Core is one of the supergraph's.
    """
    from ..engine import resolve_engine

    if not graph.has_edge(u, v):
        raise EdgeNotFoundError(u, v)
    ball = edge_ball(graph, u, v, radius)
    # The ball is a throwaway graph, so the engine's cache cannot help —
    # but dispatch (and instrumentation) should still see the probe.
    result = resolve_engine(engine).decompose(
        ball, backend=backend, use_cache=False
    )
    return result.kappa_of(u, v)


def kappa_upper_bound(graph: Graph, u: Vertex, v: Vertex, *, sweeps: int = 2) -> int:
    """Certified upper bound from ``sweeps`` localized validity repairs.

    ``sweeps=0`` degenerates to the triangle support (the paper's initial
    bound); each extra sweep applies one TriDN repair using the previous
    sweep's values of the neighborhood, requiring one more hop of context.
    """
    if not graph.has_edge(u, v):
        raise EdgeNotFoundError(u, v)
    target = canonical_edge(u, v)

    # Edges needed at sweep i live within (sweeps - i) hops of the target.
    region = edge_ball(graph, u, v, sweeps + 1)
    lambda_current: Dict[Edge, int] = {
        edge: graph.edge_support(*edge) for edge in region.edges()
    }

    for _ in range(sweeps):
        lambda_next: Dict[Edge, int] = {}
        for edge in lambda_current:
            a, b = edge
            cap = lambda_current[edge]
            side_minima = []
            for w in graph.common_neighbors(a, b):
                e1 = canonical_edge(a, w)
                e2 = canonical_edge(b, w)
                if e1 in lambda_current and e2 in lambda_current:
                    side = min(lambda_current[e1], lambda_current[e2])
                else:
                    # Outside the known region: fall back to the support
                    # (still an upper bound on the side edges' kappa).
                    side = min(
                        graph.edge_support(*e1),
                        graph.edge_support(*e2),
                    )
                side_minima.append(min(side, cap))
            side_minima.sort(reverse=True)
            repaired = 0
            for index, value in enumerate(side_minima, start=1):
                if value >= index:
                    repaired = index
                else:
                    break
            lambda_next[edge] = min(repaired, cap)
        lambda_current = lambda_next
    return lambda_current[target]


def kappa_bounds(
    graph: Graph,
    u: Vertex,
    v: Vertex,
    *,
    radius: int = 2,
    sweeps: int = 2,
    backend: Optional[str] = None,
    engine: Optional[object] = None,
) -> Tuple[int, int]:
    """``(lower, upper)`` certified bounds on kappa of edge ``{u, v}``.

    >>> from ..graph.undirected import complete_graph
    >>> kappa_bounds(complete_graph(6), 0, 1)
    (4, 4)
    """
    lower = kappa_lower_bound(
        graph, u, v, radius=radius, backend=backend, engine=engine
    )
    upper = kappa_upper_bound(graph, u, v, sweeps=sweeps)
    return lower, upper
