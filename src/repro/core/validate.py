"""Invariant checkers for Triangle K-Core decompositions.

These functions verify, from first principles (Definitions 3-4 and
Theorem 1), that a ``{edge: kappa}`` map is the correct decomposition of a
graph.  They are deliberately independent of the peeling implementation —
:func:`check_decomposition` re-derives everything from raw triangle counts —
so the test suite can use them as an oracle for both the static and the
dynamic algorithms.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..exceptions import ValidationError
from ..graph.edge import Edge, canonical_edge
from ..graph.undirected import Graph


def check_covers_all_edges(graph: Graph, kappa: Mapping[Edge, int]) -> None:
    """Every edge of the graph must have a kappa value, and nothing extra."""
    graph_edges = set(graph.edges())
    kappa_edges = set(kappa)
    missing = graph_edges - kappa_edges
    extra = kappa_edges - graph_edges
    if missing:
        raise ValidationError(f"edges without kappa: {sorted(missing, key=repr)[:5]}")
    if extra:
        raise ValidationError(f"kappa for non-edges: {sorted(extra, key=repr)[:5]}")


def check_level_subgraphs(graph: Graph, kappa: Mapping[Edge, int]) -> None:
    """Definition 3 at every level: in the subgraph of edges with
    ``kappa >= k``, every edge must participate in at least ``k`` triangles.

    This certifies every kappa value as a *lower* bound: the level subgraph
    is a Triangle K-Core with number ``k`` containing the edge (Claim 2).
    """
    max_k = max(kappa.values(), default=0)
    for k in range(1, max_k + 1):
        level_edges = {edge for edge, value in kappa.items() if value >= k}
        members = Graph()
        for u, v in level_edges:
            members.add_edge(u, v, exist_ok=True)
        for u, v in level_edges:
            if members.edge_support(u, v) < k:
                raise ValidationError(
                    f"edge ({u!r}, {v!r}) has kappa >= {k} but only "
                    f"{members.edge_support(u, v)} triangles in the level-{k} "
                    "subgraph"
                )


def check_maximality(graph: Graph, kappa: Mapping[Edge, int]) -> None:
    """No kappa value can be raised: eroding the level-(k+1) candidate set
    starting from *all* edges must reproduce exactly ``{kappa >= k + 1}``.

    Together with :func:`check_level_subgraphs` this pins kappa exactly:
    the lower-bound check shows ``kappa(e)`` is achievable, and this check
    shows ``kappa(e) + 1`` is not.
    """
    max_k = max(kappa.values(), default=0)
    for k in range(1, max_k + 2):
        # Greatest fixed point: erode edges with < k in-set triangles.
        in_set = set(kappa)
        changed = True
        while changed:
            changed = False
            survivors = set()
            member_graph = Graph()
            for u, v in in_set:
                member_graph.add_edge(u, v, exist_ok=True)
            for u, v in in_set:
                count = 0
                for w in member_graph.common_neighbors(u, v):
                    if (
                        canonical_edge(u, w) in in_set
                        and canonical_edge(v, w) in in_set
                    ):
                        count += 1
                if count >= k:
                    survivors.add((u, v))
            if survivors != in_set:
                in_set = survivors
                changed = True
        expected = {edge for edge, value in kappa.items() if value >= k}
        if in_set != expected:
            raise ValidationError(
                f"level-{k} maximal Triangle K-Core mismatch: erosion keeps "
                f"{len(in_set)} edges, kappa claims {len(expected)}"
            )


def check_theorem1(graph: Graph, kappa: Mapping[Edge, int]) -> None:
    """Theorem 1 consequence: an edge with ``kappa = k`` must have at least
    ``k`` triangles whose other two edges have ``kappa >= k``.

    (Those are exactly the triangles of its maximum Triangle K-Core.)
    """
    for (u, v), k in kappa.items():
        if k == 0:
            continue
        qualified = 0
        for w in graph.common_neighbors(u, v):
            if (
                kappa.get(canonical_edge(u, w), -1) >= k
                and kappa.get(canonical_edge(v, w), -1) >= k
            ):
                qualified += 1
        if qualified < k:
            raise ValidationError(
                f"edge ({u!r}, {v!r}) claims kappa={k} but has only "
                f"{qualified} triangles with both side edges at kappa >= {k}"
            )


def check_decomposition(graph: Graph, kappa: Mapping[Edge, int]) -> None:
    """Full oracle: raise :class:`ValidationError` unless ``kappa`` is the
    exact Triangle K-Core decomposition of ``graph``.

    Cost is O(levels * |E| * degree); intended for tests, not production.
    """
    check_covers_all_edges(graph, kappa)
    check_theorem1(graph, kappa)
    check_level_subgraphs(graph, kappa)
    check_maximality(graph, kappa)


def reference_decomposition(graph: Graph) -> Dict[Edge, int]:
    """Slow, obviously-correct decomposition by repeated erosion.

    For every level ``k`` starting from 1, erode the remaining edge set to
    the maximal subgraph where every edge has ``k`` in-set triangles; edges
    eroded at level ``k`` get ``kappa = k - 1``.  O(|E|^2) worst case —
    strictly a test oracle.
    """
    kappa: Dict[Edge, int] = {edge: 0 for edge in graph.edges()}
    in_set = set(kappa)
    k = 1
    while in_set:
        member_graph = Graph()
        for u, v in in_set:
            member_graph.add_edge(u, v, exist_ok=True)
        changed = True
        current = set(in_set)
        while changed:
            changed = False
            for u, v in sorted(current, key=repr):
                count = 0
                for w in member_graph.common_neighbors(u, v):
                    if (
                        canonical_edge(u, w) in current
                        and canonical_edge(v, w) in current
                    ):
                        count += 1
                if count < k:
                    current.discard((u, v))
                    member_graph.remove_edge(u, v)
                    changed = True
        for edge in in_set - current:
            kappa[edge] = k - 1
        in_set = current
        k += 1
    return kappa
