"""Top-down search for the globally densest Triangle K-Core.

Many probing workflows only want the headline: *what is the densest
clique-like structure and where is it?*  Running all of Algorithm 1 for
that answer processes every low-level edge first — exactly the edges such
a query does not care about.  This module goes top-down instead:

1. bound the answer by ``degeneracy - 1`` (an edge in ``k`` triangles of a
   subgraph needs both endpoints at degree ``k + 1`` inside it);
2. binary-search the largest ``k`` whose *erosion* — repeatedly deleting
   edges with fewer than ``k`` in-subgraph triangles, after pruning to the
   vertex ``(k+1)``-core — leaves a non-empty subgraph.

Each probe touches only the vertex ``(k+1)``-core, which for high ``k`` is
a tiny fraction of a realistic graph, so the search typically beats a full
decomposition by a wide margin (measured in
``benchmarks/bench_ablation_maxcore.py``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from typing import Mapping, Optional

from ..graph.edge import Edge, Vertex, canonical_edge
from ..graph.undirected import Graph
from .kcore import core_filter_for_triangle_kcore, kcore_decomposition


def erode_to_triangle_kcore(
    graph: Graph,
    k: int,
    *,
    core_numbers: Optional[Mapping[Vertex, int]] = None,
) -> Graph:
    """The maximal subgraph where every edge lies in >= ``k`` triangles.

    Returns an empty graph when no such subgraph exists.  This is the
    level-``k`` object of Claim 2 computed directly (greatest fixed point
    of the support-``k`` erosion), without kappa values.

    >>> from ..graph.undirected import complete_graph
    >>> erode_to_triangle_kcore(complete_graph(5), 3).num_edges
    10
    >>> erode_to_triangle_kcore(complete_graph(5), 4).num_edges
    0
    """
    if k <= 0:
        working = graph.copy()
        working_isolated = [
            v for v in working.vertices() if working.degree(v) == 0
        ]
        for vertex in working_isolated:
            working.remove_vertex(vertex)
        return working
    # Vertex-core prefilter: inside the target subgraph every vertex has
    # at least k+1 neighbors, so nothing outside the (k+1)-core survives.
    # Callers probing many levels pass precomputed ``core_numbers`` so the
    # vertex decomposition runs once, not per probe.
    if core_numbers is None:
        working = core_filter_for_triangle_kcore(graph, k)
    else:
        working = graph.subgraph(
            v for v, c in core_numbers.items() if c >= k + 1
        )

    supports: Dict[Edge, int] = {}
    for u, v in working.edges():
        supports[(u, v)] = working.edge_support(u, v)
    queue: List[Edge] = [edge for edge, s in supports.items() if s < k]
    while queue:
        edge = queue.pop()
        if edge not in supports:
            continue
        u, v = edge
        # Removing the edge strips one triangle from each co-triangle pair.
        for w in working.common_neighbors(u, v):
            for other in (canonical_edge(u, w), canonical_edge(v, w)):
                if other in supports:
                    supports[other] -= 1
                    if supports[other] == k - 1:
                        queue.append(other)
        del supports[edge]
        working.remove_edge(u, v)
    for vertex in [v for v in working.vertices() if working.degree(v) == 0]:
        working.remove_vertex(vertex)
    return working


def max_triangle_kcore(graph: Graph) -> Tuple[int, Graph]:
    """``(k_max, subgraph)`` — the densest Triangle K-Core, top-down.

    ``k_max`` equals ``max(kappa)`` of the full decomposition and the
    subgraph is the maximal Triangle K-Core at that level (possibly several
    triangle-connected communities).  For an empty or triangle-free graph
    returns ``(0, <edges with no isolated vertices>)``.

    >>> from ..graph.undirected import complete_graph
    >>> k, sub = max_triangle_kcore(complete_graph(6))
    >>> k, sub.num_vertices
    (4, 6)
    """
    core_numbers = kcore_decomposition(graph)
    high = max(max(core_numbers.values(), default=0) - 1, 0)
    low = 0
    best = erode_to_triangle_kcore(graph, 0)
    # Invariant: erosion at `low` is non-empty (level 0 always exists for a
    # graph with edges); erosion above `high` is empty.
    while low < high:
        mid = (low + high + 1) // 2
        candidate = erode_to_triangle_kcore(graph, mid, core_numbers=core_numbers)
        if candidate.num_edges > 0:
            low = mid
            best = candidate
        else:
            high = mid - 1
    return low, best
