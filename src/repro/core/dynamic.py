"""Incremental maintenance of Triangle K-Cores under edge updates.

This module implements the semantics of the paper's Algorithm 2 (with the
detailed Algorithms 5-7 of the appendix): after an edge insertion or
deletion, repair every edge's :math:`\\kappa` *locally* instead of re-running
Algorithm 1 from scratch.

The implementation rests on the paper's locality results:

* **Rule 0** — when a triangle with minimum edge level :math:`\\mu` appears
  or disappears, only edges currently at level :math:`\\mu` can change, and
  only by one.
* **Lemma 2** — a level-:math:`\\mu` change propagates only to neighboring
  edges that are themselves at level :math:`\\mu`.

Concretely we process a whole edge update at once (all the triangles it
creates or destroys), exploiting two consequences of Rule 0 that the k-truss
maintenance literature later formalized:

* every *existing* edge's level moves by at most one per inserted/deleted
  edge;
* the level-:math:`k` repair is independent of every other level, so each
  affected level is repaired with its own candidate search + cascade.

For an **insertion** of ``e0 = {u, v}``: the new edge starts at level 0 and
climbs one level per pass.  At level ``k``, the candidate set is ``e0`` plus
every unfrozen level-``k`` edge triangle-connected to it; the "obey
Theorem 1" eligibility cascade peels candidates that cannot gather ``k + 1``
supporting triangles, and survivors are promoted to ``k + 1``.  The coupling
matters: a brand-new triangle whose three edges all sit at level ``k`` must
promote all three together (they support each other), which is exactly what
the candidate-coupled peel decides.  This mirrors the PotentialList /
ChangingList simulation of Algorithm 5.

For a **deletion** of ``e0``: the side edges of each destroyed triangle that
counted it (their level is at most the levels of the other two edges) seed a
demotion cascade at their own level, mirroring Algorithm 7.

All updates keep the maintainer's kappa map equal to what
:func:`~repro.core.triangle_kcore.triangle_kcore_decomposition` would return
on the current graph — the equivalence is enforced by randomized property
tests in ``tests/test_dynamic.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..exceptions import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    StaleIndexError,
)
from ..graph.edge import Edge, Vertex, canonical_edge
from ..graph.undirected import Graph
from .triangle_kcore import (
    TriangleKCoreResult,
    kappa_from_mapping,
    triangle_kcore_decomposition,
)


def h_index(values: Iterable[int]) -> int:
    """Largest ``h`` such that at least ``h`` of the values are >= ``h``.

    >>> h_index([3, 3, 2, 0])
    2
    >>> h_index([])
    0
    """
    ordered = sorted(values, reverse=True)
    h = 0
    for i, value in enumerate(ordered, start=1):
        if value >= i:
            h = i
        else:
            break
    return h


class UpdateStats:
    """Counters describing the work one update performed (for benchmarks).

    Field guarantees by strategy (see :meth:`DynamicTriangleKCore.apply`):

    ==================  ===========  =========  =====
    field               incremental  recompute  batch
    ==================  ===========  =========  =====
    strategy            yes          yes        yes
    edges_changed       yes          yes        yes
    candidates_examined yes          0          yes
    levels_touched      yes          0          0
    full_snapshots      0            1          0
    region_edges        0            0          yes
    settle_iterations   0            0          yes
    bound_prune_hits    0            0          yes
    ==================  ===========  =========  =====

    ``levels_touched`` only makes sense for the per-op cascades (one entry
    per promotion/demotion pass); the batch settle repairs every level in a
    single localized fixpoint, so it reports ``region_edges`` /
    ``settle_iterations`` / ``bound_prune_hits`` instead.
    ``full_snapshots`` counts O(|E|) copies of the kappa map — zero on the
    incremental and batch paths by design (the satellite contract pinned by
    ``tests/test_dynamic.py``).
    """

    __slots__ = (
        "candidates_examined",
        "edges_changed",
        "levels_touched",
        "strategy",
        "full_snapshots",
        "region_edges",
        "settle_iterations",
        "bound_prune_hits",
    )

    def __init__(self) -> None:
        self.candidates_examined = 0
        self.edges_changed = 0
        self.levels_touched = 0
        self.strategy = "incremental"
        self.full_snapshots = 0
        self.region_edges = 0
        self.settle_iterations = 0
        self.bound_prune_hits = 0

    def __repr__(self) -> str:
        return (
            f"UpdateStats(strategy={self.strategy!r}, "
            f"candidates={self.candidates_examined}, "
            f"changed={self.edges_changed}, levels={self.levels_touched}, "
            f"region={self.region_edges})"
        )


class KappaDelta:
    """What a batch update did to the kappa map, edge by edge.

    The consumable form of an update for downstream pipelines: Dual View
    Plots re-score exactly ``created`` + ``promoted`` + ``demoted``;
    monitoring code watches ``max(promoted.values(), default=0)``.
    """

    __slots__ = ("created", "deleted", "promoted", "demoted", "stats")

    def __init__(
        self,
        created: Dict[Edge, int],
        deleted: Dict[Edge, int],
        promoted: Dict[Edge, Tuple[int, int]],
        demoted: Dict[Edge, Tuple[int, int]],
        stats: UpdateStats,
    ) -> None:
        self.created = created      #: new edge -> its kappa
        self.deleted = deleted      #: removed edge -> its old kappa
        self.promoted = promoted    #: edge -> (old kappa, new kappa), rising
        self.demoted = demoted      #: edge -> (old kappa, new kappa), falling
        self.stats = stats

    @property
    def is_empty(self) -> bool:
        return not (self.created or self.deleted or self.promoted or self.demoted)

    def touched_edges(self) -> Set[Edge]:
        """Every edge whose kappa value is different after the batch."""
        return (
            set(self.created)
            | set(self.deleted)
            | set(self.promoted)
            | set(self.demoted)
        )

    def __repr__(self) -> str:
        return (
            f"KappaDelta(+{len(self.created)} edges, -{len(self.deleted)}, "
            f"{len(self.promoted)} promoted, {len(self.demoted)} demoted)"
        )


class DynamicTriangleKCore:
    """Maintains every edge's :math:`\\kappa` under edge insertions/deletions.

    Parameters
    ----------
    graph:
        Initial graph.  A private copy is taken unless ``copy=False``; with
        ``copy=False`` the caller must *only* mutate the graph through this
        maintainer, otherwise kappa values go stale.
    seed_result:
        Optional precomputed :class:`TriangleKCoreResult` for ``graph``
        (e.g. from a faster engine backend, or loaded via
        :mod:`repro.core.persistence`).  When given, the warm-up
        decomposition is skipped and the maintainer starts from a copy of
        its kappa map.  The result must cover exactly the graph's edges;
        a mismatch raises :class:`~repro.exceptions.StaleIndexError`.

    Examples
    --------
    >>> g = Graph(edges=[("A", "B"), ("B", "C"), ("A", "C")])
    >>> core = DynamicTriangleKCore(g)
    >>> core.kappa_of("A", "B")
    1
    >>> _ = core.remove_edge("B", "C")
    >>> core.kappa_of("A", "B")
    0
    """

    def __init__(
        self,
        graph: Graph,
        *,
        copy: bool = True,
        store_triangles: bool = False,
        seed_result: Optional[TriangleKCoreResult] = None,
    ) -> None:
        self._graph = graph.copy() if copy else graph
        if seed_result is not None:
            if len(seed_result.kappa) != self._graph.num_edges or any(
                not self._graph.has_edge(u, v) for (u, v) in seed_result.kappa
            ):
                raise StaleIndexError(
                    "seed_result does not match the graph: it covers "
                    f"{len(seed_result.kappa)} edges, the graph has "
                    f"{self._graph.num_edges}; recompute or drop seed_result"
                )
            self._kappa: Dict[Edge, int] = dict(seed_result.kappa)
        else:
            self._kappa = triangle_kcore_decomposition(self._graph).kappa
        if store_triangles:
            from ..graph.triangle_store import TriangleStore

            self._store: Optional["TriangleStore"] = TriangleStore(self._graph)
        else:
            self._store = None
        self._expected_edges = self._graph.num_edges
        #: Active delta recorder: ``{edge: kappa before this update}`` for
        #: every edge written while the recorder is armed (None = absent).
        #: Armed by :meth:`diff_apply` so the incremental and batch paths
        #: can report an exact KappaDelta without snapshotting the map.
        self._recording: Optional[Dict[Edge, Optional[int]]] = None

    def _note(self, edge: Edge) -> None:
        """Remember ``edge``'s pre-update kappa, first write wins."""
        recording = self._recording
        if recording is not None and edge not in recording:
            recording[edge] = self._kappa.get(edge)

    def _check_not_stale(self) -> None:
        """Detect out-of-band graph mutations (possible with copy=False).

        The kappa map is only correct for the graph state the maintainer
        has seen; a caller that mutates the shared graph directly would
        silently read wrong densities, so we fail loudly instead.  The
        check is O(1) (edge-count comparison), so it cannot catch a
        balanced add+remove — it is a seatbelt, not a proof.
        """
        if self._graph.num_edges != self._expected_edges:
            raise StaleIndexError(
                "the underlying graph was modified outside this maintainer "
                f"({self._graph.num_edges} edges vs {self._expected_edges} "
                "expected); rebuild the DynamicTriangleKCore"
            )

    def _apexes(self, u: Vertex, v: Vertex):
        """Triangle apexes of an existing edge (store or intersection)."""
        if self._store is not None:
            return self._store.apexes(u, v)
        return self._graph.common_neighbors(u, v)

    # ------------------------------------------------------------------ #
    # read API
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> Graph:
        """The maintained graph (treat as read-only)."""
        return self._graph

    @property
    def kappa(self) -> Dict[Edge, int]:
        """Live ``{edge: kappa}`` map (treat as read-only)."""
        return self._kappa

    def kappa_of(self, u: Vertex, v: Vertex) -> int:
        """Current :math:`\\kappa` of edge ``{u, v}``."""
        return self._kappa[canonical_edge(u, v)]

    def result(self) -> TriangleKCoreResult:
        """Snapshot the current state as a :class:`TriangleKCoreResult`."""
        return kappa_from_mapping(self._kappa)

    @property
    def max_kappa(self) -> int:
        return max(self._kappa.values(), default=0)

    # ------------------------------------------------------------------ #
    # snapshot / restore serialization
    # ------------------------------------------------------------------ #

    #: Schema tag for :meth:`snapshot` payloads; bump on layout changes.
    SNAPSHOT_SCHEMA = "repro.dynamic.snapshot/1"

    def snapshot(self) -> dict:
        """The full maintained state as one JSON-native document.

        Contains everything :meth:`from_snapshot` needs to reconstruct an
        equivalent maintainer without recomputing: the vertex set, the
        per-edge kappa map (which doubles as the edge list — every edge
        has a kappa entry), and the graph's version fence.  Vertices must
        be JSON-native (int or str), the same restriction edit scripts
        impose; anything else raises ``ValueError``.
        """
        self._check_not_stale()
        for vertex in self._graph.vertices():
            if not isinstance(vertex, (int, str)):
                raise ValueError(
                    "snapshot vertices must be JSON-native ints or strs, "
                    f"got {vertex!r}"
                )
        return {
            "schema": self.SNAPSHOT_SCHEMA,
            "version": self._graph.version,
            "vertices": sorted(self._graph.vertices(), key=repr),
            "kappa": sorted(
                ([u, v, k] for (u, v), k in self._kappa.items()),
                key=lambda row: (repr(row[0]), repr(row[1])),
            ),
        }

    @classmethod
    def from_snapshot(cls, obj: dict) -> "DynamicTriangleKCore":
        """Rebuild a maintainer from a :meth:`snapshot` document.

        The graph is reconstructed edge by edge and then pinned to the
        snapshot's version fence via
        :meth:`~repro.graph.undirected.Graph.restore_version`, so the
        restored maintainer reports exactly the version the snapshot was
        taken at; the kappa map is adopted verbatim (no decomposition).
        Malformed documents raise ``ValueError``.
        """
        if not isinstance(obj, dict) or obj.get("schema") != cls.SNAPSHOT_SCHEMA:
            raise ValueError(
                f"not a {cls.SNAPSHOT_SCHEMA} snapshot: "
                f"{obj.get('schema') if isinstance(obj, dict) else obj!r}"
            )
        version = obj.get("version")
        if not isinstance(version, int) or version < 0:
            raise ValueError(f"malformed snapshot version: {version!r}")
        rows = obj.get("kappa")
        vertices = obj.get("vertices")
        if not isinstance(rows, list) or not isinstance(vertices, list):
            raise ValueError("malformed snapshot: kappa/vertices must be lists")
        graph = Graph(vertices=vertices)
        kappa: Dict[Edge, int] = {}
        for row in rows:
            if not isinstance(row, (list, tuple)) or len(row) != 3:
                raise ValueError(f"malformed snapshot kappa row: {row!r}")
            u, v, k = row
            if not isinstance(k, int) or k < 0:
                raise ValueError(f"malformed snapshot kappa value: {row!r}")
            graph.add_edge(u, v)
            kappa[canonical_edge(u, v)] = k
        graph.restore_version(version)
        return cls(
            graph,
            copy=False,
            seed_result=TriangleKCoreResult(kappa=kappa),
        )

    # ------------------------------------------------------------------ #
    # write API
    # ------------------------------------------------------------------ #

    def add_vertex(self, vertex: Vertex) -> None:
        """Add an isolated vertex (no kappa effect)."""
        self._graph.add_vertex(vertex)

    def add_edge(self, u: Vertex, v: Vertex) -> UpdateStats:
        """Insert edge ``{u, v}`` and repair kappa values incrementally.

        Raises :class:`EdgeExistsError` on duplicates and
        :class:`SelfLoopError` for ``u == v``.
        """
        if u == v:
            raise SelfLoopError(u)
        self._check_not_stale()
        if self._graph.has_edge(u, v):
            raise EdgeExistsError(u, v)
        stats = UpdateStats()
        e0 = canonical_edge(u, v)
        self._note(e0)
        if self._store is not None:
            apexes = sorted(self._store.add_edge(u, v), key=repr)
        else:
            apexes = (
                sorted(self._graph.common_neighbors(u, v), key=repr)
                if self._graph.has_vertex(u) and self._graph.has_vertex(v)
                else []
            )
            self._graph.add_edge(u, v)
        stats.edges_changed += 1
        self._expected_edges = self._graph.num_edges
        if not apexes:
            self._kappa[e0] = 0
            return stats

        # Phase A: the new edge immediately reaches the h-index of its
        # triangles' side minima — achievable with *old* side values alone
        # (take H = {kappa >= k_base} + e0: every triangle of e0 whose two
        # sides sit in H lies in H, so H is a (k_base)-Triangle K-Core).
        side_minima = [
            min(
                self._kappa[canonical_edge(u, w)],
                self._kappa[canonical_edge(v, w)],
            )
            for w in apexes
        ]
        k_base = h_index(side_minima)
        self._kappa[e0] = k_base

        # Phase B: coupled promotion passes (Lemma 2 locality).  Levels
        # below k_base may promote side edges (their new triangle counts
        # because kappa(e0) exceeds the level); at k_base and above the new
        # edge itself is a candidate and may keep climbing one level per
        # pass, carrying neighbors with it.  Old edges are frozen after one
        # move (Rule 0: at most one level per existing edge per update).
        frozen: Set[Edge] = set()
        for k in sorted({m for m in side_minima if m < k_base}):
            stats.levels_touched += 1
            self._promote_level(e0, k, frozen, stats)
        k = k_base
        while self._kappa[e0] == k:
            stats.levels_touched += 1
            if not self._promote_level(e0, k, frozen, stats):
                break
            k += 1
        return stats

    def remove_edge(self, u: Vertex, v: Vertex) -> UpdateStats:
        """Delete edge ``{u, v}`` and repair kappa values incrementally."""
        self._check_not_stale()
        if not self._graph.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        stats = UpdateStats()
        e0 = canonical_edge(u, v)
        k_e0 = self._kappa[e0]
        if self._store is not None:
            apexes = sorted(self._store.remove_edge(u, v), key=repr)
        else:
            apexes = sorted(self._graph.common_neighbors(u, v), key=repr)
            self._graph.remove_edge(u, v)
        self._note(e0)
        del self._kappa[e0]
        stats.edges_changed += 1
        self._expected_edges = self._graph.num_edges

        # Seed the demotion cascade: a side edge f of a destroyed triangle
        # counted that triangle at its own level k = kappa(f) only if the
        # other two edges both had kappa >= k.
        seeds_by_level: Dict[int, Set[Edge]] = {}
        for w in apexes:
            f1 = canonical_edge(u, w)
            f2 = canonical_edge(v, w)
            k1 = self._kappa[f1]
            k2 = self._kappa[f2]
            if k1 <= min(k_e0, k2) and k1 > 0:
                seeds_by_level.setdefault(k1, set()).add(f1)
            if k2 <= min(k_e0, k1) and k2 > 0:
                seeds_by_level.setdefault(k2, set()).add(f2)

        for k in sorted(seeds_by_level):
            stats.levels_touched += 1
            self._demote_level(seeds_by_level[k], k, stats)
        return stats

    def remove_vertex(self, vertex: Vertex) -> List[UpdateStats]:
        """Delete a vertex by removing its incident edges one at a time."""
        stats: List[UpdateStats] = []
        for neighbor in sorted(self._graph.neighbors(vertex), key=repr):
            stats.append(self.remove_edge(vertex, neighbor))
        self._graph.remove_vertex(vertex)
        return stats

    #: Churn fraction above which ``apply(strategy="auto")`` abandons
    #: localized repair for one fresh Algorithm 1 run.  Re-measured with
    #: the batch path in place (``benchmarks/bench_ablation_churn.py``
    #: and ``bench_batch_update.py``): on scattered large-graph edits the
    #: per-op/recompute crossover still sits between 5% and 20% churn,
    #: and above it a recompute also beats the batched region pass — so
    #: the 10% threshold survives re-measurement unchanged.  ``"batch"``
    #: is deliberately never auto-selected: its measured win (5-35x over
    #: per-op) is on coalesced replay of bursty edit scripts, a regime
    #: the churn fraction alone cannot distinguish from scattered edits,
    #: where per-op repair stays ahead — callers that batch edits opt in
    #: explicitly.
    AUTO_RECOMPUTE_CHURN = 0.10

    #: Every strategy :meth:`apply` / :meth:`diff_apply` accept.
    STRATEGIES = ("incremental", "recompute", "auto", "batch")

    def _resolve_strategy(self, strategy: str, n_ops: int) -> str:
        """Validate ``strategy`` and collapse ``"auto"`` to a concrete one."""
        if strategy not in self.STRATEGIES:
            raise ValueError(
                "strategy must be incremental/recompute/auto/batch, "
                f"got {strategy!r}"
            )
        if strategy != "auto":
            return strategy
        if n_ops / max(self._graph.num_edges, 1) >= self.AUTO_RECOMPUTE_CHURN:
            return "recompute"
        return "incremental"

    def apply(
        self,
        added: Iterable[Tuple[Vertex, Vertex]] = (),
        removed: Iterable[Tuple[Vertex, Vertex]] = (),
        *,
        strategy: str = "incremental",
    ) -> UpdateStats:
        """Apply a batch of edge updates (removals first, then insertions).

        ``strategy``:

        * ``"incremental"`` (default) — per-edge Algorithm 2 repairs, one
          affected-neighborhood walk per op;
        * ``"batch"`` — one affected-region pass per vertex-disjoint op
          cluster: structurally apply everything, grow the affected
          region, settle levels with a localized fixpoint (see
          :meth:`_apply_by_batch`).  Bit-identical to per-op application
          at any batch size; wins big (5-35x over per-op) on coalesced
          bursty edit scripts, so it is the opt-in choice for replaying
          batched streams;
        * ``"recompute"`` — apply the batch structurally and re-run
          Algorithm 1 once (cheapest at very high churn);
        * ``"auto"`` — incremental below :attr:`AUTO_RECOMPUTE_CHURN`
          churn, recompute at or above it (measured in
          ``benchmarks/bench_ablation_churn.py``).

        Error contract: every strategy raises the same exception types for
        the same invalid ops (:class:`SelfLoopError`,
        :class:`EdgeExistsError`, :class:`EdgeNotFoundError`).  The batch
        path pre-validates and raises *before* touching anything
        (all-or-nothing), whereas the per-op path has already applied the
        ops preceding the offending one.

        Returns aggregated statistics (see :class:`UpdateStats` for which
        fields each strategy fills).  This is the entry point snapshot
        streams use (see :func:`repro.graph.io.graph_diff`).
        """
        added = list(added)
        removed = list(removed)
        strategy = self._resolve_strategy(strategy, len(added) + len(removed))
        if strategy == "recompute":
            return self._apply_by_recompute(added, removed)
        if strategy == "batch":
            return self._apply_by_batch(added, removed)
        total = UpdateStats()
        for u, v in removed:
            self._merge_stats(total, self.remove_edge(u, v))
        for u, v in added:
            self._merge_stats(total, self.add_edge(u, v))
        return total

    def _apply_by_recompute(
        self,
        added: List[Tuple[Vertex, Vertex]],
        removed: List[Tuple[Vertex, Vertex]],
    ) -> UpdateStats:
        """Recompute path: mutate the graph, then one fresh Algorithm 1 run."""
        self._check_not_stale()
        stats = UpdateStats()
        stats.strategy = "recompute"
        stats.full_snapshots = 1
        before = self._kappa
        if self._store is not None:
            for u, v in removed:
                self._store.remove_edge(u, v)
            for u, v in added:
                self._store.add_edge(u, v)
        else:
            for u, v in removed:
                self._graph.remove_edge(u, v)
            for u, v in added:
                self._graph.add_edge(u, v)
        self._expected_edges = self._graph.num_edges
        self._kappa = triangle_kcore_decomposition(self._graph).kappa
        stats.edges_changed = sum(
            1
            for edge, value in self._kappa.items()
            if before.get(edge) != value
        ) + sum(1 for edge in before if edge not in self._kappa)
        return stats

    # ------------------------------------------------------------------ #
    # batch path: one affected-region pass per edit batch
    # ------------------------------------------------------------------ #

    def _apply_by_batch(
        self,
        added: List[Tuple[Vertex, Vertex]],
        removed: List[Tuple[Vertex, Vertex]],
    ) -> UpdateStats:
        """Apply the whole batch, one affected-region repair per cluster.

        Phases:

        1. **Validate.**  The removals-then-insertions sequence is checked
           against a simulated edge set and raises exactly the exception
           the per-op path would — but *before* any mutation, so a bad
           batch is all-or-nothing instead of partially applied.
        1b. **Cluster.**  The ops are partitioned into vertex-disjoint
           clusters (union-find over op endpoints).  Kappa is a pure
           function of the graph, so applying exact sub-batches
           sequentially is exact for *any* grouping; clustering exists
           purely to tighten the per-cluster Rule 0 budgets below.  Each
           cluster then runs phases 2-4 (:meth:`_apply_batch_cluster`):
        2. **Apply structurally.**  Destroyed triangles of every removed
           edge are captured first (they seed the demotion side of the
           region), then removals and insertions mutate the graph.  Kappa
           values are left untouched: the old values double as the frozen
           boundary of the localized settle.
        3. **Grow the affected region** by BFS over the new graph's
           triangles, gated by cheap Rule 0 interval bounds: across a
           cluster of ``nA`` insertions and ``nR`` removals an existing
           edge's kappa stays within ``[kappa - nR, kappa + nA]``.  Seeds
           are the inserted edges plus the demotion-suspect side edges of
           destroyed triangles; a triangle neighbor whose bounds forbid
           any change is pruned (counted in ``bound_prune_hits``) and
           re-tested only if another of its triangle partners later joins.
        4. **Settle.**  Every region edge is seeded with an h-index upper
           bound over its triangles (bound values for region partners,
           exact old kappa for the frozen boundary) and a worklist
           fixpoint lowers values until every region edge satisfies the
           h-index equation ``kappa(e) = H({min of partner kappas over
           e's triangles})``.  Starting above the answer with an exact
           boundary, the greatest fixpoint *is* the new kappa on the
           region — which makes batch application bit-identical to per-op
           application at any batch size.
        """
        self._check_not_stale()
        stats = UpdateStats()
        stats.strategy = "batch"
        graph = self._graph
        kappa = self._kappa

        # Phase 1: validate the whole sequence, all-or-nothing.
        removed_set: Set[Edge] = set()
        for u, v in removed:
            edge = canonical_edge(u, v)
            if edge in removed_set or not graph.has_edge(u, v):
                raise EdgeNotFoundError(u, v)
            removed_set.add(edge)
        added_set: Set[Edge] = set()
        for u, v in added:
            if u == v:
                raise SelfLoopError(u)
            edge = canonical_edge(u, v)
            if edge in added_set or (
                edge not in removed_set and graph.has_edge(u, v)
            ):
                raise EdgeExistsError(u, v)
            added_set.add(edge)
        # Phase 1b: partition the ops into vertex-disjoint clusters
        # (union-find over op endpoints).  Kappa is a pure function of
        # the graph, so applying exact batches sequentially is exact for
        # any grouping; clustering only tightens the Rule 0 budgets —
        # scattered edits get per-cluster nA/nR of 1-2 instead of the
        # whole batch's, which keeps their affected regions per-op-sized,
        # while overlapping bursts still collapse into one region pass.
        parent: Dict[Vertex, Vertex] = {}

        def find(x: Vertex) -> Vertex:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        def union(a: Vertex, b: Vertex) -> None:
            parent.setdefault(a, a)
            parent.setdefault(b, b)
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        for u, v in removed:
            union(u, v)
        for u, v in added:
            union(u, v)
        clusters: Dict[Vertex, Tuple[list, list]] = {}
        for u, v in removed:
            clusters.setdefault(find(u), ([], []))[1].append((u, v))
        for u, v in added:
            clusters.setdefault(find(u), ([], []))[0].append((u, v))
        for cluster_added, cluster_removed in clusters.values():
            self._apply_batch_cluster(cluster_added, cluster_removed, stats)
        return stats

    def _apply_batch_cluster(
        self,
        added: List[Tuple[Vertex, Vertex]],
        removed: List[Tuple[Vertex, Vertex]],
        stats: UpdateStats,
    ) -> None:
        """Phases 2-4 of the batch path for one already-validated cluster."""
        graph = self._graph
        kappa = self._kappa
        removed_set: Set[Edge] = {canonical_edge(u, v) for u, v in removed}
        added_set: Set[Edge] = {canonical_edge(u, v) for u, v in added}
        nR = len(removed_set)
        nA = len(added_set)

        # Phase 2a: capture demotion seeds from the pre-batch graph.  A
        # surviving side edge f of a destroyed triangle (r, f, g) counted
        # that triangle at its own level kappa(f) only if kappa(r) and
        # kappa(g) both reach it (the per-op seeding rule, batched; the
        # other side g may itself be a removed edge).
        seed_edges: Set[Edge] = set()
        for u, v in removed:
            e_r = canonical_edge(u, v)
            k_r = kappa[e_r]
            for w in graph.common_neighbors(u, v):
                f1 = canonical_edge(u, w)
                f2 = canonical_edge(v, w)
                k1 = kappa[f1]
                k2 = kappa[f2]
                if f1 not in removed_set and 0 < k1 <= min(k_r, k2):
                    seed_edges.add(f1)
                if f2 not in removed_set and 0 < k2 <= min(k_r, k1):
                    seed_edges.add(f2)

        # Phase 2b: mutate structurally (removals first, like per-op).
        store = self._store
        for u, v in removed:
            if store is not None:
                store.remove_edge(u, v)
            else:
                graph.remove_edge(u, v)
            self._note(canonical_edge(u, v))
            del kappa[canonical_edge(u, v)]
        for u, v in added:
            if store is not None:
                store.add_edge(u, v)
            else:
                graph.add_edge(u, v)
        self._expected_edges = graph.num_edges
        stats.edges_changed += nR

        # Phase 3: region closure with Rule 0 interval bounds.
        # lo/hi are defined for region members only; outside the region an
        # old edge is *assumed* unchanged (exact boundary), but the
        # promote test still bounds a not-yet-member partner by
        # kappa + nA — a valid bound on its final value no matter whether
        # it eventually joins.
        apexes_of = self._apexes
        lo: Dict[Edge, int] = {}
        hi: Dict[Edge, int] = {}
        queue: List[Edge] = []
        for u, v in added:
            edge = canonical_edge(u, v)
            if edge in hi:
                continue
            # A new edge's kappa is at most its triangle count.
            hi[edge] = sum(1 for _ in apexes_of(edge[0], edge[1]))
            lo[edge] = 0
            queue.append(edge)
        for edge in seed_edges:
            if edge in hi:
                continue
            k_old = kappa[edge]
            hi[edge] = k_old + nA
            lo[edge] = max(0, k_old - nR)
            queue.append(edge)

        def admit(f: Edge, may_promote: bool, may_demote: bool) -> bool:
            """Support test: can f's own triangles sustain a change?

            A pair test alone floods equal-kappa plateaus (with ``nA = 1``
            any neighbor whose partners merely match f's kappa passes), so
            mirror the per-op prune: promotion to ``k + 1`` needs at least
            ``k + 1`` triangles whose partners can both reach ``k + 1``,
            and demotion is impossible while at least ``k`` triangles
            provably persist at level ``k``.
            """
            k = kappa[f]
            strong = 0
            solid = 0
            fa, fb = f
            for w in apexes_of(fa, fb):
                p = canonical_edge(fa, w)
                q = canonical_edge(fb, w)
                up_p = hi[p] if p in hi else kappa[p] + nA
                up_q = hi[q] if q in hi else kappa[q] + nA
                if may_promote and up_p >= k + 1 and up_q >= k + 1:
                    strong += 1
                    if strong >= k + 1:
                        return True
                if may_demote:
                    low_p = lo[p] if p in hi else kappa[p]
                    low_q = lo[q] if q in hi else kappa[q]
                    if low_p >= k and low_q >= k:
                        solid += 1
            return may_demote and solid < k

        while queue:
            x = queue.pop()
            a, b = x
            hi_x = hi[x]
            lo_x = lo[x]
            for w in apexes_of(a, b):
                g1 = canonical_edge(a, w)
                g2 = canonical_edge(b, w)
                for f, g in ((g1, g2), (g2, g1)):
                    if f in hi:
                        continue
                    stats.candidates_examined += 1
                    k = kappa[f]
                    up_g = hi[g] if g in hi else kappa[g] + nA
                    # f could rise to k + 1 only if both partners can
                    # reach k + 1; it could lose this triangle at its own
                    # level k only if x may drop below k while the
                    # triangle otherwise qualified.  The pair tests are
                    # necessary conditions; admit() re-checks against f's
                    # own triangle support before it joins.  A prune here
                    # is provisional: f is re-tested whenever another of
                    # its triangle partners is admitted and popped.
                    may_promote = hi_x >= k + 1 and up_g >= k + 1
                    may_demote = bool(
                        nR > 0 and k >= 1 and lo_x < k <= hi_x and up_g >= k
                    )
                    if (may_promote or may_demote) and admit(
                        f, may_promote, may_demote
                    ):
                        hi[f] = k + nA
                        lo[f] = max(0, k - nR)
                        queue.append(f)
                    else:
                        stats.bound_prune_hits += 1

        region = self._trim_batch_region(set(hi), added_set)
        stats.region_edges += len(region)

        # Phase 4: bound-seeded localized h-index settle, frozen boundary.
        rho: Dict[Edge, int] = {}
        for edge in region:
            a, b = edge
            minima = []
            for w in apexes_of(a, b):
                g1 = canonical_edge(a, w)
                g2 = canonical_edge(b, w)
                b1 = hi[g1] if g1 in region else kappa[g1]
                b2 = hi[g2] if g2 in region else kappa[g2]
                minima.append(min(b1, b2))
            rho[edge] = max(lo[edge], min(hi[edge], h_index(minima)))

        def val(edge: Edge) -> int:
            value = rho.get(edge)
            return value if value is not None else kappa[edge]

        pending: List[Edge] = [e for e in region]
        in_pending: Set[Edge] = set(pending)
        while pending:
            edge = pending.pop()
            in_pending.discard(edge)
            stats.settle_iterations += 1
            a, b = edge
            minima = [
                min(val(canonical_edge(a, w)), val(canonical_edge(b, w)))
                for w in apexes_of(a, b)
            ]
            new_value = max(lo[edge], min(hi[edge], h_index(minima)))
            if new_value < rho[edge]:
                rho[edge] = new_value
                # Only neighbors whose value exceeds the drop can depend
                # on this edge through a min() — re-examine them.
                for w in apexes_of(a, b):
                    for f in (canonical_edge(a, w), canonical_edge(b, w)):
                        if (
                            f in region
                            and f not in in_pending
                            and rho[f] > new_value
                        ):
                            in_pending.add(f)
                            pending.append(f)

        stats.edges_changed += self._finalize_region(rho)

    def _trim_batch_region(
        self, region: Set[Edge], inserted: Set[Edge]
    ) -> Set[Edge]:
        """Fault-injection seam: the region the settle actually repairs.

        The default is the identity.  The fuzz harness's mutation
        smoke-check overrides it to drop one boundary edge, proving the
        differential fuzzer notices an under-grown region.
        """
        return region

    def _finalize_region(self, rho: Dict[Edge, int]) -> int:
        """Write settled region values into the kappa map; count changes."""
        kappa = self._kappa
        changed = 0
        for edge, value in rho.items():
            if kappa.get(edge) != value:
                self._note(edge)
                kappa[edge] = value
                changed += 1
        return changed

    def diff_apply(
        self,
        added: Iterable[Tuple[Vertex, Vertex]] = (),
        removed: Iterable[Tuple[Vertex, Vertex]] = (),
        *,
        strategy: str = "incremental",
    ) -> KappaDelta:
        """Like :meth:`apply`, but report exactly what changed.

        The incremental and batch paths accumulate the delta directly from
        the edges they actually write — O(changed) bookkeeping, no copy of
        the kappa map (``stats.full_snapshots`` stays 0).  Only the
        recompute fallback diffs full maps, because Algorithm 1 replaces
        the map wholesale.
        """
        added = list(added)
        removed = list(removed)
        strategy = self._resolve_strategy(strategy, len(added) + len(removed))
        if strategy == "recompute":
            # _apply_by_recompute replaces self._kappa rather than mutating
            # it, so aliasing the old dict is a safe "snapshot".
            before = self._kappa
            stats = self._apply_by_recompute(added, removed)
            after = self._kappa
            created: Dict[Edge, int] = {}
            deleted: Dict[Edge, int] = {}
            promoted: Dict[Edge, Tuple[int, int]] = {}
            demoted: Dict[Edge, Tuple[int, int]] = {}
            for edge, new_value in after.items():
                old_value = before.get(edge)
                if old_value is None:
                    created[edge] = new_value
                elif new_value > old_value:
                    promoted[edge] = (old_value, new_value)
                elif new_value < old_value:
                    demoted[edge] = (old_value, new_value)
            for edge, old_value in before.items():
                if edge not in after:
                    deleted[edge] = old_value
            return KappaDelta(created, deleted, promoted, demoted, stats)
        outer = self._recording
        self._recording = {}
        try:
            if strategy == "batch":
                stats = self._apply_by_batch(added, removed)
            else:
                stats = UpdateStats()
                for u, v in removed:
                    self._merge_stats(stats, self.remove_edge(u, v))
                for u, v in added:
                    self._merge_stats(stats, self.add_edge(u, v))
            record = self._recording
        finally:
            self._recording = outer
        return self._delta_from_record(record, stats)

    def _delta_from_record(
        self, record: Dict[Edge, Optional[int]], stats: UpdateStats
    ) -> KappaDelta:
        """Build the delta from first-write old values (no map snapshot)."""
        after = self._kappa
        created: Dict[Edge, int] = {}
        deleted: Dict[Edge, int] = {}
        promoted: Dict[Edge, Tuple[int, int]] = {}
        demoted: Dict[Edge, Tuple[int, int]] = {}
        for edge, old_value in record.items():
            new_value = after.get(edge)
            if old_value is None:
                if new_value is not None:
                    created[edge] = new_value
            elif new_value is None:
                deleted[edge] = old_value
            elif new_value > old_value:
                promoted[edge] = (old_value, new_value)
            elif new_value < old_value:
                demoted[edge] = (old_value, new_value)
        return KappaDelta(created, deleted, promoted, demoted, stats)

    @staticmethod
    def _merge_stats(total: UpdateStats, one: UpdateStats) -> None:
        total.candidates_examined += one.candidates_examined
        total.edges_changed += one.edges_changed
        total.levels_touched += one.levels_touched
        total.full_snapshots += one.full_snapshots
        total.region_edges += one.region_edges
        total.settle_iterations += one.settle_iterations
        total.bound_prune_hits += one.bound_prune_hits

    # ------------------------------------------------------------------ #
    # insertion internals
    # ------------------------------------------------------------------ #

    def _promote_level(
        self,
        e0: Edge,
        k: int,
        frozen: Set[Edge],
        stats: UpdateStats,
    ) -> bool:
        """Run the level-``k`` promotion cascade around the new edge ``e0``.

        Candidates are ``e0`` plus the unfrozen level-``k`` edges reachable
        from it through level-``k`` triangle connectivity (Lemma 2).  The
        cascade peels candidates that cannot assemble ``k + 1`` triangles
        whose other edges end at level >= ``k + 1``; survivors move to
        ``k + 1``.  Returns True when ``e0`` itself survived (it may then
        climb further levels).

        Edges in ``frozen`` already moved during this insertion and are
        settled (Rule 0: an existing edge moves at most one level per
        update); they neither join the candidate set nor count as support.

        When ``kappa(e0) > k`` (a side-only pass below the new edge's own
        level) the search starts from the level-``k`` side edges of the new
        triangles instead, and ``e0`` simply counts as qualified support.
        """
        kappa = self._kappa
        apexes_of = self._apexes
        e0_is_candidate = kappa[e0] == k

        # Each candidate's relevant triangles are computed once per pass:
        # tris[e] lists the (g1, g2) side pairs with both sides at level
        # >= k — the only triangles that can count toward level k + 1.
        tris: Dict[Edge, List[tuple]] = {}

        def relevant_triangles(edge: Edge) -> List[tuple]:
            cached = tris.get(edge)
            if cached is None:
                a, b = edge
                cached = []
                for w in apexes_of(a, b):
                    g1 = canonical_edge(a, w)
                    g2 = canonical_edge(b, w)
                    if kappa[g1] >= k and kappa[g2] >= k:
                        cached.append((g1, g2))
                tris[edge] = cached
            return cached

        def qualifies(edge: Edge, candidates: Set[Edge]) -> bool:
            value = kappa[edge]
            return value > k or (value == k and edge in candidates)

        # Grow the candidate set over level-k triangle connectivity with
        # eligibility pruning: an edge whose optimistic support (side pairs
        # where every level-k edge is hypothetically promotable) cannot
        # reach k + 1 can never be promoted, so the search does not expand
        # through it — this keeps the traversal local instead of sweeping
        # an entire level-k triangle-connected component.
        if e0_is_candidate:
            roots = [e0]
        else:
            u0, v0 = e0
            roots = []
            for w in apexes_of(u0, v0):
                f1 = canonical_edge(u0, w)
                f2 = canonical_edge(v0, w)
                if kappa[f1] == k and kappa[f2] >= k and f1 not in frozen:
                    roots.append(f1)
                if kappa[f2] == k and kappa[f1] >= k and f2 not in frozen:
                    roots.append(f2)

        candidates: Set[Edge] = set()
        visited: Set[Edge] = set(roots)
        stack: List[Edge] = list(roots)
        while stack:
            edge = stack.pop()
            stats.candidates_examined += 1
            pairs = relevant_triangles(edge)
            optimistic = sum(
                1
                for g1, g2 in pairs
                if (kappa[g1] > k or g1 not in frozen)
                and (kappa[g2] > k or g2 not in frozen)
            )
            if optimistic < k + 1:
                continue  # can never promote; do not expand through it
            candidates.add(edge)
            for g1, g2 in pairs:
                for other in (g1, g2):
                    if (
                        kappa[other] == k
                        and other not in visited
                        and other not in frozen
                    ):
                        visited.add(other)
                        stack.append(other)
        if e0_is_candidate and e0 not in candidates:
            # The new edge itself cannot reach k + 1; no level-k edge can
            # gain support without it.
            return False

        # Eligibility cascade: s(e) counts triangles whose other two edges
        # are above level k or are still-candidate level-k edges.  Peel
        # candidates that cannot reach k + 1 supporting triangles; survivors
        # form a genuine (k+1)-Triangle K-Core together with the >k edges.
        support: Dict[Edge, int] = {
            edge: sum(
                1
                for g1, g2 in relevant_triangles(edge)
                if qualifies(g1, candidates) and qualifies(g2, candidates)
            )
            for edge in candidates
        }
        worklist: List[Edge] = [e for e in candidates if support[e] < k + 1]
        while worklist:
            edge = worklist.pop()
            if edge not in candidates or support[edge] >= k + 1:
                continue
            candidates.discard(edge)
            for g1, g2 in relevant_triangles(edge):
                # The triangle counted for g1/g2 while `edge` was still a
                # candidate; now that it is peeled, decrement survivors
                # whose triangle remains otherwise qualified.
                if qualifies(g1, candidates) and qualifies(g2, candidates):
                    for other in (g1, g2):
                        if other in candidates:
                            support[other] -= 1
                            if support[other] < k + 1:
                                worklist.append(other)
        for edge in candidates:
            self._note(edge)
            kappa[edge] = k + 1
            stats.edges_changed += 1
            if edge != e0:
                frozen.add(edge)
        return e0 in candidates

    # ------------------------------------------------------------------ #
    # deletion internals
    # ------------------------------------------------------------------ #

    def _demote_level(self, seeds: Set[Edge], k: int, stats: UpdateStats) -> None:
        """Demote level-``k`` edges that lost their level-``k`` support.

        Poke-and-recompute cascade: whenever an edge is demoted, its level-k
        triangle neighbors are re-examined.  Each edge demotes at most once
        (Rule 0: change is at most one per deleted edge).
        """
        kappa = self._kappa
        apexes_of = self._apexes
        pending: List[Edge] = list(seeds)
        while pending:
            edge = pending.pop()
            if kappa.get(edge, -1) != k:
                continue
            stats.candidates_examined += 1
            a, b = edge
            count = 0
            for w in apexes_of(a, b):
                if (
                    kappa[canonical_edge(a, w)] >= k
                    and kappa[canonical_edge(b, w)] >= k
                ):
                    count += 1
                    if count >= k:
                        break
            if count >= k:
                continue
            self._note(edge)
            kappa[edge] = k - 1
            stats.edges_changed += 1
            # The demotion may strip support from level-k neighbors.
            for w in apexes_of(a, b):
                g1 = canonical_edge(a, w)
                g2 = canonical_edge(b, w)
                k1 = kappa[g1]
                k2 = kappa[g2]
                # The triangle (edge, g1, g2) supported g1 at level k only
                # if g2 also sat at >= k (edge itself sat at k before the
                # demotion, so it qualified).
                if k1 == k and k2 >= k:
                    pending.append(g1)
                if k2 == k and k1 >= k:
                    pending.append(g2)


def insertion_upper_bound(side_levels: List[int]) -> int:
    """Upper bound on the new edge's kappa after an insertion.

    Every side edge can rise by at most one (Rule 0), so the new edge's
    level is bounded by the h-index of ``min(side levels) + 1`` over its
    triangles.  The climb loop in :meth:`DynamicTriangleKCore.add_edge`
    terminates within this bound; exposed for tests and documentation.
    """
    return h_index([level + 1 for level in side_levels])
