"""Triangle-connected community search over the decomposition.

The paper's visual workflow — spot a plateau, circle it, inspect the
community — has a programmatic counterpart: *community search*.  Given a
query vertex or edge, return the triangle-connected component of the
level-``k`` subgraph containing it (today's "k-truss community").  Two
access paths are provided:

* :func:`community_of_edge` / :func:`community_of_vertex` — one-shot BFS
  (no preprocessing; good for a handful of queries);
* :class:`CommunityIndex` — one descending union-find sweep over the
  decomposition that precomputes the communities of *every* level, making
  each subsequent query a dictionary lookup.  Build cost
  O(|E| + |Tri| + levels * |E| alpha); memory O(sum of kappa values).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..exceptions import EdgeNotFoundError, VertexNotFoundError
from ..graph.edge import Edge, Vertex, canonical_edge
from ..graph.undirected import Graph
from .extract import triangle_connected_component, vertex_set_of_edges
from .triangle_kcore import TriangleKCoreResult


def _decompose(graph, backend, engine) -> TriangleKCoreResult:
    """Route the default decomposition through the engine layer.

    Imported lazily because :mod:`repro.engine` sits above ``repro.core``
    in the layer stack (it imports this package's siblings).
    """
    from ..engine import resolve_engine

    return resolve_engine(engine).decompose(graph, backend=backend)


class _EdgeUnionFind:
    """Union-find over edges with path compression + union by size."""

    def __init__(self) -> None:
        self._parent: Dict[Edge, Edge] = {}
        self._size: Dict[Edge, int] = {}

    def add(self, edge: Edge) -> None:
        if edge not in self._parent:
            self._parent[edge] = edge
            self._size[edge] = 1

    def find(self, edge: Edge) -> Edge:
        root = edge
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[edge] != root:
            self._parent[edge], edge = root, self._parent[edge]
        return root

    def union(self, a: Edge, b: Edge) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]


class CommunityIndex:
    """Precomputed triangle-connected communities at every level.

    Examples
    --------
    >>> from ..graph.undirected import complete_graph
    >>> g = complete_graph(4)
    >>> index = CommunityIndex(g)
    >>> sorted(index.community_of_edge(0, 1))      # the K4 at level 2
    [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    """

    def __init__(
        self,
        graph: Graph,
        result: Optional[TriangleKCoreResult] = None,
        *,
        backend: Optional[str] = None,
        engine: Optional[object] = None,
    ) -> None:
        self._graph = graph
        self._result = (
            result if result is not None else _decompose(graph, backend, engine)
        )
        #: level -> {edge: component root}; only levels 1..max_kappa.
        self._labels: Dict[int, Dict[Edge, Edge]] = {}
        self._build()

    @property
    def result(self) -> TriangleKCoreResult:
        return self._result

    @property
    def max_level(self) -> int:
        return self._result.max_kappa

    def _build(self) -> None:
        kappa = self._result.kappa
        by_level: Dict[int, List[Edge]] = {}
        for edge, k in kappa.items():
            by_level.setdefault(k, []).append(edge)
        union_find = _EdgeUnionFind()
        active: Set[Edge] = set()
        for k in range(self.max_level, 0, -1):
            for edge in by_level.get(k, ()):
                union_find.add(edge)
                active.add(edge)
            # Union through every triangle whose minimum level is exactly k:
            # scanning the newly activated edges' apexes covers them all.
            for edge in by_level.get(k, ()):
                a, b = edge
                for w in self._graph.common_neighbors(a, b):
                    e1 = canonical_edge(a, w)
                    e2 = canonical_edge(b, w)
                    if kappa[e1] >= k and kappa[e2] >= k:
                        union_find.union(edge, e1)
                        union_find.union(edge, e2)
            self._labels[k] = {edge: union_find.find(edge) for edge in active}

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def community_of_edge(
        self, u: Vertex, v: Vertex, k: Optional[int] = None
    ) -> Set[Edge]:
        """Edges of the level-``k`` community containing edge ``{u, v}``.

        ``k`` defaults to the edge's own kappa (its densest community).
        Returns an empty set when the edge's kappa is below ``k`` or the
        requested level is 0 (every edge is trivially level-0).
        """
        edge = canonical_edge(u, v)
        if edge not in self._result.kappa:
            raise EdgeNotFoundError(u, v)
        if k is None:
            k = self._result.kappa[edge]
        if k <= 0 or self._result.kappa[edge] < k:
            return set()
        labels = self._labels[k]
        root = labels[edge]
        return {e for e, r in labels.items() if r == root}

    def communities_at(self, k: int) -> List[Set[Edge]]:
        """All communities of level ``k``, largest first."""
        if k <= 0 or k > self.max_level:
            return []
        grouped: Dict[Edge, Set[Edge]] = {}
        for edge, root in self._labels[k].items():
            grouped.setdefault(root, set()).add(edge)
        return sorted(
            grouped.values(),
            key=lambda c: (-len(c), tuple(sorted(map(repr, c)))),
        )

    def community_of_vertex(
        self, vertex: Vertex, k: Optional[int] = None
    ) -> List[Set[Vertex]]:
        """Vertex sets of the level-``k`` communities touching ``vertex``.

        ``k`` defaults to the vertex's best incident kappa.  A vertex can
        belong to several communities at one level (two cliques meeting at
        a shared vertex), hence the list.
        """
        if not self._graph.has_vertex(vertex):
            raise VertexNotFoundError(vertex)
        incident = [
            canonical_edge(vertex, w) for w in self._graph.neighbors(vertex)
        ]
        if k is None:
            k = max(
                (self._result.kappa[e] for e in incident),
                default=0,
            )
        if k <= 0:
            return []
        roots: Set[Edge] = set()
        labels = self._labels.get(k, {})
        for edge in incident:
            if edge in labels:
                roots.add(labels[edge])
        communities = []
        for root in sorted(roots, key=repr):
            edges = {e for e, r in labels.items() if r == root}
            communities.append(vertex_set_of_edges(edges))
        communities.sort(key=lambda c: (-len(c), tuple(sorted(map(repr, c)))))
        return communities

    def densest_community_of_vertex(
        self, vertex: Vertex
    ) -> Tuple[int, Set[Vertex]]:
        """The community of ``vertex`` at its highest level, with that level.

        Returns ``(0, {vertex})`` for vertices in no triangle.
        """
        communities = self.community_of_vertex(vertex)
        if not communities:
            return 0, {vertex}
        incident = [
            canonical_edge(vertex, w) for w in self._graph.neighbors(vertex)
        ]
        k = max(self._result.kappa[e] for e in incident)
        return k, communities[0]

    def __iter__(self) -> Iterator[Tuple[int, Set[Edge]]]:
        """Iterate ``(level, edge set)`` pairs densest-level first."""
        for k in range(self.max_level, 0, -1):
            for community in self.communities_at(k):
                yield k, community


def community_of_edge(
    graph: Graph,
    u: Vertex,
    v: Vertex,
    *,
    k: Optional[int] = None,
    result: Optional[TriangleKCoreResult] = None,
    backend: Optional[str] = None,
    engine: Optional[object] = None,
) -> Set[Edge]:
    """One-shot community search for an edge (BFS, no index).

    Equivalent to ``CommunityIndex(graph, result).community_of_edge(u, v, k)``
    but only explores the queried component.
    """
    if result is None:
        result = _decompose(graph, backend, engine)
    edge = canonical_edge(u, v)
    if edge not in result.kappa:
        raise EdgeNotFoundError(u, v)
    if k is None:
        k = result.kappa[edge]
    if k <= 0 or result.kappa[edge] < k:
        return set()
    return triangle_connected_component(graph, result, edge, k)


def community_of_vertex(
    graph: Graph,
    vertex: Vertex,
    *,
    k: Optional[int] = None,
    result: Optional[TriangleKCoreResult] = None,
    backend: Optional[str] = None,
    engine: Optional[object] = None,
) -> List[Set[Vertex]]:
    """One-shot community search for a vertex (BFS, no index)."""
    if result is None:
        result = _decompose(graph, backend, engine)
    if not graph.has_vertex(vertex):
        raise VertexNotFoundError(vertex)
    incident = [canonical_edge(vertex, w) for w in graph.neighbors(vertex)]
    if k is None:
        k = max((result.kappa[e] for e in incident), default=0)
    if k <= 0:
        return []
    seen_edges: Set[Edge] = set()
    communities: List[Set[Vertex]] = []
    for edge in sorted(incident, key=repr):
        if result.kappa[edge] < k or edge in seen_edges:
            continue
        component = triangle_connected_component(graph, result, edge, k)
        if component:
            seen_edges |= component
            communities.append(vertex_set_of_edges(component))
    communities.sort(key=lambda c: (-len(c), tuple(sorted(map(repr, c)))))
    return communities
