"""The writer side of the replication tier: log, state, and feed server.

One process owns the authoritative :class:`DynamicTriangleKCore` — the
**writer**.  Every edit batch it commits becomes a
:class:`~repro.replication.frames.CommitRecord` appended to an in-memory
:class:`ReplicationLog`; a second listening socket (the *feed* port)
streams those records, length-prefixed and checksummed, to any number of
replicas.

Joining (and re-joining) replicas handshake with a ``HELLO`` frame that
carries their current version.  The writer answers in one of two ways:

* the replica's version is inside the retained log window → stream the
  **log tail** from that version (cheap catch-up);
* the replica is uninitialized, diverged, or has fallen behind the log's
  retention floor → ship a full **snapshot** at a version fence (graph +
  kappa + the template baseline), then stream from the fence.

Commit records carry the exact version transition the writer's graph
made (``prev_version -> version``) and the *resolved* repair strategy,
so replicas replay the same mutations the writer performed and must land
on the same version — a structural conformance check that runs on every
fold, for free.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from typing import Callable, Deque, List, Optional

from ..graph.undirected import Graph
from ..service.server import ServiceServer
from ..service.state import ServiceState
from ..testing.editscript import EditScript
from .frames import (
    KIND_COMMIT,
    KIND_HELLO,
    KIND_SNAPSHOT,
    CommitRecord,
    FrameError,
    encode_frame,
    read_frame,
)

#: Schema tag for the snapshot document a joining replica receives.
REPLICATION_SCHEMA = "repro.replication/1"


class ReplicationLog:
    """Bounded in-memory window of contiguous commit records.

    Appends are contiguous by construction (each record's
    ``prev_version`` must equal the log head); once ``capacity`` records
    are retained the oldest is dropped and the retention **floor** rises
    — replicas below the floor must resync via snapshot.  All methods are
    thread-safe: the writer state may commit from any thread while feed
    tasks read on the event loop.
    """

    def __init__(self, *, capacity: int = 4096, head_version: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"log capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._records: Deque[CommitRecord] = deque()
        self._head = head_version
        self._lock = threading.Lock()

    @property
    def head_version(self) -> int:
        """Version of the newest committed record (or the seed version)."""
        with self._lock:
            return self._head

    @property
    def floor_version(self) -> int:
        """Oldest version the retained tail can serve a replica from."""
        with self._lock:
            return self._records[0].prev_version if self._records else self._head

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def append(self, record: CommitRecord) -> None:
        with self._lock:
            if record.prev_version != self._head:
                raise ValueError(
                    f"non-contiguous commit: log head is {self._head}, "
                    f"record transitions {record.prev_version} -> "
                    f"{record.version}"
                )
            self._records.append(record)
            self._head = record.version
            while len(self._records) > self.capacity:
                self._records.popleft()

    def can_serve(self, version: int) -> bool:
        """Can a replica at ``version`` catch up from the retained tail?"""
        with self._lock:
            floor = self._records[0].prev_version if self._records else self._head
            return floor <= version <= self._head

    def tail_since(self, version: int) -> Optional[List[CommitRecord]]:
        """Records transitioning past ``version``, oldest first.

        Returns ``None`` when ``version`` is outside the retained window
        (the caller must resync via snapshot); an empty list means the
        replica is already at head.
        """
        with self._lock:
            floor = self._records[0].prev_version if self._records else self._head
            if not floor <= version <= self._head:
                return None
            # Strictly past ``version``: a consumer at the head must get
            # [], never a record that leaves its cursor where it was.
            return [r for r in self._records if r.version > version]


class WriterState(ServiceState):
    """The authoritative :class:`ServiceState`, committing to a log.

    Behaves exactly like a standalone state — same edit semantics, same
    read payloads — plus: every applied batch appends one
    :class:`CommitRecord` (ops + version transition + resolved strategy)
    to :attr:`log` and wakes registered commit listeners so feed tasks
    can push the record to replicas immediately.
    """

    def __init__(self, graph: Graph, *, log_capacity: int = 4096, **kwargs) -> None:
        super().__init__(graph, **kwargs)
        self.role = "writer"
        self.log = ReplicationLog(
            capacity=log_capacity, head_version=self.version
        )
        # Thread-safe wake hooks (feed servers register
        # loop.call_soon_threadsafe trampolines here).
        self._commit_listeners: List[Callable[[], None]] = []

    def add_commit_listener(self, callback: Callable[[], None]) -> None:
        self._commit_listeners.append(callback)

    def remove_commit_listener(self, callback: Callable[[], None]) -> None:
        if callback in self._commit_listeners:
            self._commit_listeners.remove(callback)

    def apply_edits(self, script: EditScript, *, strategy=None) -> dict:
        outcome = super().apply_edits(script, strategy=strategy)
        if outcome["version"] == outcome["prev_version"]:
            # Every op was rejected: nothing changed, so there is
            # nothing to replicate.  A zero-progress record must never
            # enter the log — it would match ``tail_since(head)``
            # forever and spin the feed tasks.
            return outcome
        record = CommitRecord(
            prev_version=outcome["prev_version"],
            version=outcome["version"],
            strategy=outcome["strategy"],
            ops=[op.to_json_obj() for op in script],
        )
        self.log.append(record)
        for callback in list(self._commit_listeners):
            callback()
        return outcome

    def snapshot_document(self) -> dict:
        """Full state for a joining replica, taken at a version fence.

        Serialized under the write lock so the maintainer snapshot and
        its version cannot straddle a concurrent commit.  Includes the
        frozen template baseline — replicas must answer
        ``GET /templates/<name>`` against the *writer's* startup graph,
        not their own (empty) one.
        """
        with self._write_lock:
            return {
                "schema": REPLICATION_SCHEMA,
                "version": self.version,
                "state": self.maintainer.snapshot(),
                "baseline": {
                    "version": self.baseline_version,
                    "vertices": sorted(self.baseline.vertices(), key=repr),
                    "edges": sorted(
                        ([u, v] for u, v in self.baseline.edges()),
                        key=lambda row: (repr(row[0]), repr(row[1])),
                    ),
                },
            }

    def health(self, *, draining: bool = False) -> dict:
        payload = super().health(draining=draining)
        payload["replication"] = {
            "log_head": self.log.head_version,
            "log_floor": self.log.floor_version,
            "log_records": len(self.log),
        }
        return payload


class WriterServer(ServiceServer):
    """A :class:`ServiceServer` plus the replication feed listener.

    The HTTP side is unchanged (same admission control, same serial
    dispatcher).  A second socket accepts replica connections: each gets
    its own feed task that handshakes (``HELLO``), resyncs (snapshot or
    log tail), then streams commits as they land.  Slow consumers that
    fall behind the log's retention floor mid-stream are disconnected and
    resync on reconnect.
    """

    def __init__(
        self,
        state: WriterState,
        *,
        repl_host: str = "127.0.0.1",
        repl_port: int = 0,
        **kwargs,
    ) -> None:
        if not isinstance(state, WriterState):
            raise TypeError(
                f"WriterServer requires a WriterState, got {type(state).__name__}"
            )
        super().__init__(state, **kwargs)
        self.repl_host = repl_host
        self._requested_repl_port = repl_port
        self._repl_server: Optional[asyncio.base_events.Server] = None
        self._feed_tasks: set = set()
        # Generation event: set-and-replaced on every commit, so a feed
        # task that captured the old event before checking the log can
        # never miss a wakeup.
        self._commit_event = asyncio.Event()
        self._commit_hook: Optional[Callable[[], None]] = None

    @property
    def repl_port(self) -> int:
        """The bound feed port (only valid after :meth:`start`)."""
        if self._repl_server is None or not self._repl_server.sockets:
            raise RuntimeError("replication listener is not started")
        return self._repl_server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        await super().start()
        self._repl_server = await asyncio.start_server(
            self._handle_replica, self.repl_host, self._requested_repl_port
        )
        loop = asyncio.get_running_loop()

        def hook() -> None:
            # Commits normally happen on this loop (the dispatcher), but
            # embedders may drive the state from another thread.
            loop.call_soon_threadsafe(self._signal_commit)

        self._commit_hook = hook
        self.state.add_commit_listener(hook)

    def _signal_commit(self) -> None:
        event = self._commit_event
        self._commit_event = asyncio.Event()
        event.set()

    async def _handle_replica(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._feed_tasks.add(task)
        log: ReplicationLog = self.state.log
        try:
            kind, payload = await read_frame(reader)
            if kind != KIND_HELLO:
                return
            version = payload.get("version")
            initialized = bool(payload.get("initialized"))
            cursor = version if isinstance(version, int) else -1
            if not initialized or not log.can_serve(cursor):
                document = self.state.snapshot_document()
                writer.write(encode_frame(KIND_SNAPSHOT, document))
                await writer.drain()
                cursor = document["version"]
            while not self._draining:
                event = self._commit_event
                records = log.tail_since(cursor)
                if records is None:
                    # Fell behind the retention floor mid-stream; the
                    # replica reconnects and resyncs via snapshot.
                    break
                if records:
                    for record in records:
                        writer.write(
                            encode_frame(KIND_COMMIT, record.to_payload())
                        )
                        cursor = record.version
                    await writer.drain()
                    continue
                await event.wait()
        except (
            FrameError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            OSError,
        ):
            pass
        finally:
            if task is not None:
                self._feed_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def drain(self) -> None:
        self._draining = True
        if self._repl_server is not None:
            self._repl_server.close()
            await self._repl_server.wait_closed()
        if self._commit_hook is not None:
            self.state.remove_commit_listener(self._commit_hook)
        # Wake parked feed tasks so they observe the drain and exit.
        self._signal_commit()
        if self._feed_tasks:
            await asyncio.gather(*list(self._feed_tasks), return_exceptions=True)
        await super().drain()
