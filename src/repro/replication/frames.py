"""The replication wire format: length-prefixed, versioned, checksummed.

Everything that travels between the writer and its replicas is a
**frame**::

    +-------+-------+------+----------+---------+=============+
    | magic | proto | kind | length   | crc32   | payload ... |
    | 4s    | u8    | u8   | u32 (BE) | u32(BE) | JSON bytes  |
    +-------+-------+------+----------+---------+=============+

* ``magic`` (``TKRL``) catches cross-protocol connections immediately;
* ``proto`` is the replication protocol version — a replica refuses to
  fold frames from a writer speaking a different protocol;
* ``length`` prefixes the payload so a reader always knows how many
  bytes one frame occupies (partial reads surface as ``truncated``);
* ``crc32`` covers the payload, so a corrupt log frame is rejected with
  a **typed** :class:`FrameError` instead of being half-applied.

The payload of every frame is one JSON document.  Frame kinds:

``HELLO``
    Replica → writer on (re)connect: the replica's current version and
    whether it holds any state at all.
``SNAPSHOT``
    Writer → replica: the full authoritative state at a version fence
    (graph + kappa via :meth:`DynamicTriangleKCore.snapshot
    <repro.core.dynamic.DynamicTriangleKCore.snapshot>`, plus the
    template baseline).  Sent when the replica is uninitialized or has
    fallen behind the retained log tail.
``COMMIT``
    Writer → replica: one committed edit batch — the PR 2 EditScript ops
    plus the version transition (``prev_version -> version``) and the
    repair strategy the writer resolved.  Replicas fold commits in order
    and must land on exactly ``version``.

Corruption never degrades silently: a bad magic, protocol, kind, CRC,
length, or JSON body raises :class:`FrameError` carrying a machine
readable ``reason``, and the replica drops the connection (a fresh
handshake resynchronizes from its last good version).
"""

from __future__ import annotations

import asyncio
import json
import struct
import zlib
from dataclasses import dataclass
from typing import List, Tuple

from ..exceptions import ReproError

#: Replication protocol version; bump on frame-layout or payload changes.
PROTOCOL_VERSION = 1

#: Frame magic: any other prefix is not a replication stream.
MAGIC = b"TKRL"

_HEADER = struct.Struct(">4sBBII")
HEADER_BYTES = _HEADER.size

#: Hard cap on one frame's payload (snapshots of large graphs included).
MAX_FRAME_BYTES = 256 * 1024 * 1024

# Frame kinds.
KIND_HELLO = 1
KIND_SNAPSHOT = 2
KIND_COMMIT = 3

KIND_NAMES = {
    KIND_HELLO: "hello",
    KIND_SNAPSHOT: "snapshot",
    KIND_COMMIT: "commit",
}


class ReplicationError(ReproError):
    """Base class for replication-tier failures."""


class FrameError(ReplicationError):
    """A frame that must not be applied, with a machine-readable reason.

    ``reason`` is one of ``truncated`` / ``bad_magic`` / ``bad_protocol``
    / ``bad_kind`` / ``oversized`` / ``bad_crc`` / ``bad_json``.
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(f"[{reason}] {message}")
        self.reason = reason


class ReplicationDivergenceError(ReplicationError):
    """A replica's state no longer matches the writer's version stream."""


def encode_frame(kind: int, payload: dict) -> bytes:
    """Serialize one frame (header + JSON payload) to raw bytes."""
    if kind not in KIND_NAMES:
        raise ValueError(f"unknown frame kind {kind!r}")
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    if len(body) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame payload of {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    header = _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, kind, len(body), zlib.crc32(body) & 0xFFFFFFFF
    )
    return header + body


def decode_header(header: bytes) -> Tuple[int, int, int]:
    """Validate a raw header; returns ``(kind, length, crc32)``."""
    if len(header) != HEADER_BYTES:
        raise FrameError(
            "truncated",
            f"frame header is {len(header)} bytes, expected {HEADER_BYTES}",
        )
    magic, proto, kind, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError("bad_magic", f"expected {MAGIC!r}, got {magic!r}")
    if proto != PROTOCOL_VERSION:
        raise FrameError(
            "bad_protocol",
            f"peer speaks replication protocol {proto}, "
            f"this build speaks {PROTOCOL_VERSION}",
        )
    if kind not in KIND_NAMES:
        raise FrameError("bad_kind", f"unknown frame kind {kind}")
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            "oversized",
            f"frame payload of {length} bytes exceeds {MAX_FRAME_BYTES}",
        )
    return kind, length, crc


def decode_payload(kind: int, body: bytes, crc: int) -> dict:
    """Check the CRC and decode the JSON payload of one frame."""
    if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
        raise FrameError(
            "bad_crc",
            f"{KIND_NAMES[kind]} frame payload failed its CRC check "
            f"({len(body)} bytes)",
        )
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(
            "bad_json", f"{KIND_NAMES[kind]} frame payload is not JSON: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise FrameError(
            "bad_json",
            f"{KIND_NAMES[kind]} frame payload must be a JSON object",
        )
    return payload


async def read_frame(reader: asyncio.StreamReader) -> Tuple[int, dict]:
    """Read one frame off ``reader``; returns ``(kind, payload)``.

    Raises :class:`FrameError` on any malformed frame and
    ``asyncio.IncompleteReadError`` only via the ``truncated`` reason —
    a cleanly closed stream *before the first header byte* surfaces as
    ``ConnectionResetError`` so callers can tell orderly EOF apart from
    mid-frame truncation.
    """
    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            raise ConnectionResetError("replication stream closed") from None
        raise FrameError(
            "truncated",
            f"stream closed after {len(error.partial)} header bytes",
        ) from None
    kind, length, crc = decode_header(header)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameError(
            "truncated",
            f"stream closed {length - len(error.partial)} bytes short of a "
            f"{KIND_NAMES[kind]} frame payload",
        ) from None
    return kind, decode_payload(kind, body, crc)


@dataclass(frozen=True)
class CommitRecord:
    """One committed edit batch in the writer's log.

    ``prev_version -> version`` is the exact transition the batch made on
    the writer's authoritative graph; a replica folding the record must
    land on ``version`` or declare divergence.  ``strategy`` is the
    *resolved* repair strategy (``incremental`` / ``batch`` /
    ``recompute`` — never ``auto``), so replicas replay deterministically
    without re-resolving.
    """

    prev_version: int
    version: int
    strategy: str
    ops: List[list]

    def to_payload(self) -> dict:
        return {
            "prev_version": self.prev_version,
            "version": self.version,
            "strategy": self.strategy,
            "ops": self.ops,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CommitRecord":
        try:
            prev_version = payload["prev_version"]
            version = payload["version"]
            strategy = payload["strategy"]
            ops = payload["ops"]
        except (KeyError, TypeError) as error:
            raise FrameError(
                "bad_json", f"malformed commit record: {error!r}"
            ) from None
        if (
            not isinstance(prev_version, int)
            or not isinstance(version, int)
            or not isinstance(strategy, str)
            or not isinstance(ops, list)
        ):
            raise FrameError(
                "bad_json", f"malformed commit record fields: {payload!r}"
            )
        return cls(
            prev_version=prev_version,
            version=version,
            strategy=strategy,
            ops=ops,
        )
