"""The replica side: a read-only service fed by the writer's commit log.

A replica process runs the same HTTP surface as a standalone server —
``GET /kappa|/community|/hierarchy|/templates|/healthz|/stats`` — over
its own warm :class:`DynamicTriangleKCore`, but its state only ever
changes by **folding** the writer's commit records, in order.  Folding
reuses the exact :meth:`ServiceState.apply_edits
<repro.service.state.ServiceState.apply_edits>` path with the strategy
the writer resolved, so a replica performs the same deterministic
mutations and must land on the same graph version; any mismatch raises
:class:`~repro.replication.frames.ReplicationDivergenceError` and forces
a snapshot resync instead of serving silently wrong answers.

Consistency contract (documented in docs/SERVICE.md):

* every answer carries ``answered_at_version`` — the replica's folded
  version at answer time;
* per connection, ``answered_at_version`` is **monotonic** (folds only
  advance the version, and the serial dispatcher orders reads);
* a read carrying ``min_version=V`` parks on the server's
  :class:`~repro.service.server.VersionGate` until the replication tail
  folds version ``V`` (bounded by ``fence_timeout``, then 503
  ``stale_replica`` + ``Retry-After``) — this is what gives clients
  read-your-writes through the router;
* ``POST /edits`` is refused with 403 ``read_only`` — only the writer
  mutates.

When the writer dies, the replica keeps answering from its last folded
state (stamped, so staleness is visible) and retries the feed connection
with bounded exponential backoff until the writer returns.
"""

from __future__ import annotations

import asyncio
import sys
import traceback
from typing import Dict, Optional

from ..core.dynamic import DynamicTriangleKCore
from ..graph.undirected import Graph
from ..service.protocol import ERR_READ_ONLY, ServiceError
from ..service.server import ServiceServer
from ..service.state import ServiceState
from ..testing.editscript import EditOp, EditScript
from .frames import (
    KIND_COMMIT,
    KIND_HELLO,
    KIND_SNAPSHOT,
    PROTOCOL_VERSION,
    CommitRecord,
    FrameError,
    ReplicationDivergenceError,
    encode_frame,
    read_frame,
)
from .hub import REPLICATION_SCHEMA


def _baseline_from_payload(payload: dict) -> Graph:
    """Rebuild the writer's template baseline from a snapshot document."""
    if not isinstance(payload, dict):
        raise ValueError(f"malformed baseline payload: {payload!r}")
    version = payload.get("version")
    vertices = payload.get("vertices")
    edges = payload.get("edges")
    if (
        not isinstance(version, int)
        or version < 0
        or not isinstance(vertices, list)
        or not isinstance(edges, list)
    ):
        raise ValueError(f"malformed baseline payload: {payload!r}")
    graph = Graph(vertices=vertices)
    for row in edges:
        if not isinstance(row, (list, tuple)) or len(row) != 2:
            raise ValueError(f"malformed baseline edge row: {row!r}")
        graph.add_edge(row[0], row[1])
    graph.restore_version(version)
    return graph


class ReplicaState(ServiceState):
    """Read-only :class:`ServiceState` whose writes are writer folds.

    Starts empty and uninitialized; :meth:`install_snapshot` swaps in the
    writer's state wholesale, :meth:`fold` advances it one commit record
    at a time.  ``POST /edits`` through the public :meth:`apply_edits`
    is refused with 403 ``read_only``.
    """

    def __init__(self, **kwargs) -> None:
        super().__init__(Graph(), **kwargs)
        self.role = "replica"
        #: Has a snapshot ever been installed?  Until then reads answer
        #: over the empty placeholder graph (version 0).
        self.initialized = False
        #: Is the feed connection to the writer currently up?
        self.writer_connected = False
        self.folds = 0
        self.snapshots_installed = 0
        #: Typed replication fault counters (FrameError reasons plus
        #: ``divergence``) — corruption is visible, never silent.
        self.faults: Dict[str, int] = {}
        self.last_fault: Optional[str] = None

    # -------------------------------------------------------------- #
    # the read-only gate
    # -------------------------------------------------------------- #

    def apply_edits(self, script: EditScript, *, strategy=None) -> dict:
        raise ServiceError(
            403,
            ERR_READ_ONLY,
            "this server is a read replica; send edits to the writer "
            "(or through the router)",
        )

    # -------------------------------------------------------------- #
    # replication entry points (called by the feed tail)
    # -------------------------------------------------------------- #

    def note_fault(self, reason: str, message: str) -> None:
        self.faults[reason] = self.faults.get(reason, 0) + 1
        self.last_fault = f"[{reason}] {message}"

    def install_snapshot(self, document: dict) -> int:
        """Adopt a full writer snapshot; returns the installed version."""
        if (
            not isinstance(document, dict)
            or document.get("schema") != REPLICATION_SCHEMA
        ):
            raise ValueError(
                f"not a {REPLICATION_SCHEMA} snapshot document: "
                f"{document.get('schema') if isinstance(document, dict) else document!r}"
            )
        maintainer = DynamicTriangleKCore.from_snapshot(document["state"])
        baseline = _baseline_from_payload(document.get("baseline"))
        with self._write_lock:
            self.maintainer = maintainer
            self.baseline = baseline
            self.baseline_version = baseline.version
            # Derived caches were materialized against the old graph
            # object; version tags alone cannot be trusted across a
            # wholesale swap.
            self._index_cache = None
            self._hierarchy_cache = None
            self._template_cache = {}
            self.initialized = True
            self.snapshots_installed += 1
        return self.version

    def fold(self, record: CommitRecord) -> dict:
        """Apply one writer commit; divergence is an error, never silent."""
        if self.version != record.prev_version:
            raise ReplicationDivergenceError(
                f"replica is at version {self.version} but the commit "
                f"transitions {record.prev_version} -> {record.version}"
            )
        script = EditScript(
            ops=[EditOp.from_json_obj(row) for row in record.ops]
        )
        # The parent's apply path, with the writer's resolved strategy:
        # same mutations, same version arithmetic, same kappa repairs.
        outcome = ServiceState.apply_edits(
            self, script, strategy=record.strategy
        )
        if outcome["version"] != record.version:
            raise ReplicationDivergenceError(
                f"fold of commit {record.prev_version} -> {record.version} "
                f"landed on version {outcome['version']}"
            )
        self.folds += 1
        return outcome

    # -------------------------------------------------------------- #
    # observability
    # -------------------------------------------------------------- #

    def health(self, *, draining: bool = False) -> dict:
        payload = super().health(draining=draining)
        payload["replication"] = {
            "initialized": self.initialized,
            "writer_connected": self.writer_connected,
            "folds": self.folds,
            "snapshots_installed": self.snapshots_installed,
            "faults": dict(self.faults),
            "last_fault": self.last_fault,
        }
        return payload


class ReplicaServer(ServiceServer):
    """A :class:`ServiceServer` over a :class:`ReplicaState`, plus the
    replication tail task that keeps it fresh.

    The tail connects to the writer's feed port, handshakes with the
    replica's current version, folds whatever arrives (snapshot first if
    the writer says so), and releases matured ``min_version`` fences
    after every fold.  Any feed failure — writer death, truncated or
    corrupt frame, divergence — is recorded as a typed fault on the
    state, the connection is dropped, and the tail reconnects with
    bounded exponential backoff; reads keep being served (stamped) from
    the last folded version throughout.
    """

    def __init__(
        self,
        state: ReplicaState,
        *,
        writer_host: str,
        writer_port: int,
        reconnect_min: float = 0.05,
        reconnect_max: float = 2.0,
        **kwargs,
    ) -> None:
        if not isinstance(state, ReplicaState):
            raise TypeError(
                f"ReplicaServer requires a ReplicaState, got {type(state).__name__}"
            )
        super().__init__(state, **kwargs)
        self.writer_host = writer_host
        self.writer_port = writer_port
        self.reconnect_min = reconnect_min
        self.reconnect_max = reconnect_max
        self._tail_task: Optional[asyncio.Task] = None
        #: Set once the first snapshot/catch-up completes (tests and the
        #: CLI wait on this before announcing the replica ready).
        self.caught_up = asyncio.Event()

    async def start(self) -> None:
        await super().start()
        self._tail_task = asyncio.create_task(self._tail_loop())

    async def _tail_loop(self) -> None:
        state: ReplicaState = self.state
        backoff = self.reconnect_min
        while not self._draining:
            try:
                reader, writer = await asyncio.open_connection(
                    self.writer_host, self.writer_port
                )
            except OSError:
                state.writer_connected = False
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.reconnect_max)
                continue
            try:
                writer.write(
                    encode_frame(
                        KIND_HELLO,
                        {
                            "protocol": PROTOCOL_VERSION,
                            "version": state.version,
                            "initialized": state.initialized,
                        },
                    )
                )
                await writer.drain()
                state.writer_connected = True
                backoff = self.reconnect_min
                if state.initialized and not self.caught_up.is_set():
                    # Already inside the writer's log window (reconnect
                    # at head): no frame may arrive until the next
                    # commit, but the replica is serving valid state.
                    self.caught_up.set()
                while not self._draining:
                    kind, payload = await read_frame(reader)
                    if kind == KIND_SNAPSHOT:
                        state.install_snapshot(payload)
                    elif kind == KIND_COMMIT:
                        state.fold(CommitRecord.from_payload(payload))
                    else:
                        raise FrameError(
                            "bad_kind",
                            f"replica received unexpected frame kind {kind}",
                        )
                    # Release matured min_version fences: folds advance
                    # the version outside the dispatcher.
                    self.notify_version()
                    if state.initialized and not self.caught_up.is_set():
                        self.caught_up.set()
            except FrameError as error:
                state.note_fault(error.reason, str(error))
            except ReplicationDivergenceError as error:
                state.note_fault("divergence", str(error))
                # Force a full resync on the next handshake rather than
                # trusting any locally folded state.
                state.initialized = False
            except (ValueError, TypeError) as error:
                state.note_fault("bad_snapshot", str(error))
                state.initialized = False
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            except asyncio.CancelledError:
                raise
            except Exception:  # pragma: no cover - defensive
                traceback.print_exc(file=sys.stderr)
            finally:
                state.writer_connected = False
                try:
                    writer.close()
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass
            if not self._draining:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.reconnect_max)

    async def drain(self) -> None:
        self._draining = True
        if self._tail_task is not None:
            self._tail_task.cancel()
            try:
                await self._tail_task
            except (asyncio.CancelledError, Exception):
                pass
        await super().drain()
