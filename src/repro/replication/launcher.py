"""Cluster harnesses: wire up a writer, N replicas, and a router.

Two flavours, same topology:

* :class:`LocalCluster` — everything in the current process, one daemon
  thread (and event loop) per component.  The conformance and property
  suites use it: tests can reach **into** each replica's state (e.g.
  compare its folded kappa map against a from-scratch recompute of the
  writer's graph) while still exercising the real sockets, frames, and
  fences between components.
* :class:`ReplicatedCluster` — one OS process per component via the CLI
  (``triangle-kcore serve --role ...``), parsing each child's structured
  ``ANNOUNCE {json}`` stdout line for its bound ports.  The
  fault-injection suite and the replication benchmark use it: processes
  can be SIGKILLed mid-stream and rejoined for real.

Both expose the same accessors (writer/replica/router addresses and
ready-made :class:`~repro.service.client.ServiceClient` instances) so a
test parameterized over clusters reads identically.
"""

from __future__ import annotations

import asyncio
import json
import os
import queue
import signal
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..graph.undirected import Graph
from ..service.client import ServiceClient
from ..service.server import BackgroundServer
from .hub import WriterServer, WriterState
from .replica import ReplicaServer, ReplicaState
from .router import RouterServer

#: Prefix of the structured stdout line every ``serve --role`` prints.
ANNOUNCE_PREFIX = "ANNOUNCE "


class BackgroundRouter:
    """A :class:`RouterServer` on an event loop in a daemon thread."""

    def __init__(
        self,
        *,
        writer_addr: Tuple[str, int],
        replica_addrs: List[Tuple[str, int]],
        **router_kwargs,
    ) -> None:
        self._kwargs = dict(
            writer_addr=writer_addr,
            replica_addrs=replica_addrs,
            **router_kwargs,
        )
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._failed: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.router: Optional[RouterServer] = None
        self.port: Optional[int] = None

    def start(self) -> "BackgroundRouter":
        if self._thread is not None:
            raise RuntimeError("already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="triangle-kcore-router", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("router thread failed to start in time")
        if self._failed is not None:
            raise RuntimeError(
                f"router thread failed to start: {self._failed!r}"
            ) from self._failed
        return self

    def _thread_main(self) -> None:
        async def main() -> None:
            router = RouterServer(**self._kwargs)
            try:
                await router.start()
            except BaseException as error:
                self._failed = error
                self._ready.set()
                raise
            self.router = router
            self.port = router.port
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await router.serve_forever()

        try:
            asyncio.run(main())
        except BaseException as error:  # noqa: BLE001 - surfaced via start()
            if not self._ready.is_set():
                self._failed = error
                self._ready.set()

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self.router is not None:
            try:
                self._loop.call_soon_threadsafe(self.router.request_shutdown)
            except RuntimeError:
                pass
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("router thread did not stop in time")
        self._thread = None

    def __enter__(self) -> "BackgroundRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class LocalCluster:
    """Writer + N replicas + router, all in this process (one thread each).

    Tests get sockets-and-frames realism *and* white-box access:
    :attr:`writer_state` / :attr:`replica_states` are the live state
    objects, so a conformance check can read a replica's folded kappa map
    directly instead of paging it over HTTP.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        replicas: int = 2,
        backend: Optional[str] = None,
        edit_strategy: str = "auto",
        log_capacity: int = 4096,
        with_router: bool = True,
        router_port: int = 0,
        fence_timeout: float = 5.0,
        replica_reconnect_min: float = 0.05,
    ) -> None:
        if replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {replicas}")
        self._graph = graph
        self._n_replicas = replicas
        self._backend = backend
        self._edit_strategy = edit_strategy
        self._log_capacity = log_capacity
        self._with_router = with_router
        self._router_port = router_port
        self._fence_timeout = fence_timeout
        self._reconnect_min = replica_reconnect_min
        self.writer: Optional[BackgroundServer] = None
        self.writer_state: Optional[WriterState] = None
        self.replicas: List[BackgroundServer] = []
        self.router: Optional[BackgroundRouter] = None

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #

    def start(self) -> "LocalCluster":
        self.writer_state = WriterState(
            self._graph,
            backend=self._backend,
            edit_strategy=self._edit_strategy,
            log_capacity=self._log_capacity,
        )
        self.writer = BackgroundServer(
            state=self.writer_state,
            server_cls=WriterServer,
            fence_timeout=self._fence_timeout,
        ).start()
        for _ in range(self._n_replicas):
            self._start_replica()
        self.wait_caught_up()
        if self._with_router:
            self.router = BackgroundRouter(
                writer_addr=("127.0.0.1", self.writer_port),
                replica_addrs=[
                    ("127.0.0.1", port) for port in self.replica_ports
                ],
                port=self._router_port,
            ).start()
        return self

    def _start_replica(self) -> BackgroundServer:
        state = ReplicaState(backend=self._backend)
        background = BackgroundServer(
            state=state,
            server_cls=ReplicaServer,
            writer_host="127.0.0.1",
            writer_port=self.writer_repl_port,
            reconnect_min=self._reconnect_min,
            fence_timeout=self._fence_timeout,
        ).start()
        self.replicas.append(background)
        return background

    def stop(self) -> None:
        if self.router is not None:
            self.router.stop()
            self.router = None
        for background in self.replicas:
            background.stop()
        self.replicas = []
        if self.writer is not None:
            self.writer.stop()
            self.writer = None

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -------------------------------------------------------------- #
    # topology accessors
    # -------------------------------------------------------------- #

    @property
    def writer_port(self) -> int:
        assert self.writer is not None and self.writer.port is not None
        return self.writer.port

    @property
    def writer_repl_port(self) -> int:
        assert self.writer is not None and self.writer.server is not None
        return self.writer.server.repl_port  # type: ignore[attr-defined]

    @property
    def replica_ports(self) -> List[int]:
        return [background.port for background in self.replicas]

    @property
    def router_port(self) -> int:
        assert self.router is not None and self.router.port is not None
        return self.router.port

    @property
    def replica_states(self) -> List[ReplicaState]:
        return [background.state for background in self.replicas]  # type: ignore[misc]

    def writer_client(self, **kwargs) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.writer_port, **kwargs)

    def replica_client(self, index: int, **kwargs) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.replica_ports[index], **kwargs)

    def router_client(self, **kwargs) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.router_port, **kwargs)

    # -------------------------------------------------------------- #
    # synchronization helpers
    # -------------------------------------------------------------- #

    def wait_caught_up(self, timeout: float = 30.0) -> None:
        """Block until every replica has installed its first snapshot."""
        deadline = time.monotonic() + timeout
        for background in self.replicas:
            server = background.server
            while time.monotonic() < deadline:
                if server is not None and server.caught_up.is_set():  # type: ignore[attr-defined]
                    break
                time.sleep(0.005)
            else:
                raise TimeoutError("replica did not catch up in time")

    def wait_converged(self, version: int, timeout: float = 30.0) -> None:
        """Block until every replica has folded up to ``version``."""
        deadline = time.monotonic() + timeout
        for state in self.replica_states:
            while state.version < version:
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"replica stuck at version {state.version}, "
                        f"wanted {version}"
                    )
                time.sleep(0.005)

    def restart_replica(self, index: int) -> BackgroundServer:
        """Drain one replica and start a fresh (empty) one in its place.

        The newcomer must rejoin via snapshot + catch-up; its state
        object is brand new (``replica_states[index]`` changes).
        """
        old = self.replicas.pop(index)
        old.stop()
        state = ReplicaState(backend=self._backend)
        background = BackgroundServer(
            state=state,
            server_cls=ReplicaServer,
            writer_host="127.0.0.1",
            writer_port=self.writer_repl_port,
            reconnect_min=self._reconnect_min,
            fence_timeout=self._fence_timeout,
        ).start()
        self.replicas.insert(index, background)
        return background


# ------------------------------------------------------------------ #
# subprocess-based cluster (fault injection, benchmarks)
# ------------------------------------------------------------------ #


class ClusterProcess:
    """One ``serve --role ...`` child with line-buffered stdout capture."""

    def __init__(self, cli_args: List[str], *, label: str) -> None:
        self.label = label
        self.args = cli_args
        env = dict(os.environ)
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", *cli_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.lines: "queue.Queue[str]" = queue.Queue()
        self._reader = threading.Thread(
            target=self._pump, name=f"cluster-stdout-{label}", daemon=True
        )
        self._reader.start()
        self.announce: Optional[dict] = None

    def _pump(self) -> None:
        assert self.process.stdout is not None
        for line in self.process.stdout:
            self.lines.put(line.rstrip("\n"))

    def wait_announce(self, timeout: float = 60.0) -> dict:
        """Block until the child prints its ``ANNOUNCE {json}`` line."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"{self.label}: no ANNOUNCE line within {timeout:g}s"
                )
            if self.process.poll() is not None:
                backlog = []
                while not self.lines.empty():
                    backlog.append(self.lines.get_nowait())
                raise RuntimeError(
                    f"{self.label} exited with {self.process.returncode} "
                    f"before announcing: {backlog[-5:]}"
                )
            try:
                line = self.lines.get(timeout=min(remaining, 0.2))
            except queue.Empty:
                continue
            if line.startswith(ANNOUNCE_PREFIX):
                self.announce = json.loads(line[len(ANNOUNCE_PREFIX):])
                return self.announce

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL — the crash-fault injector (no drain, no goodbye)."""
        if self.alive:
            self.process.kill()
        self.process.wait(timeout=30)

    def terminate(self, timeout: float = 30.0) -> int:
        """SIGTERM and wait for the graceful drain."""
        if self.alive:
            self.process.send_signal(signal.SIGTERM)
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            return self.process.wait(timeout=timeout)


class ReplicatedCluster:
    """Writer + N replicas + router as real OS processes via the CLI.

    ``graph_spec`` is whatever ``serve`` accepts (a dataset name or an
    edge-list path).  Components bind port 0 and report where the kernel
    put them through their ``ANNOUNCE`` lines.
    """

    def __init__(
        self,
        graph_spec: str,
        *,
        replicas: int = 2,
        backend: Optional[str] = None,
        edit_strategy: str = "auto",
        with_router: bool = True,
        extra_serve_args: Tuple[str, ...] = (),
    ) -> None:
        self.graph_spec = graph_spec
        self.n_replicas = replicas
        self.backend = backend
        self.edit_strategy = edit_strategy
        self.with_router = with_router
        self.extra_serve_args = tuple(extra_serve_args)
        self.writer: Optional[ClusterProcess] = None
        self.replicas: List[Optional[ClusterProcess]] = []
        self.router: Optional[ClusterProcess] = None
        self.writer_port: Optional[int] = None
        self.writer_repl_port: Optional[int] = None
        self.replica_ports: List[int] = []
        self.router_port: Optional[int] = None

    def _common_args(self) -> List[str]:
        args: List[str] = []
        if self.backend:
            args += ["--backend", self.backend]
        args += list(self.extra_serve_args)
        return args

    def start(self) -> "ReplicatedCluster":
        self.writer = ClusterProcess(
            [
                "serve",
                self.graph_spec,
                "--role",
                "writer",
                "--port",
                "0",
                "--repl-port",
                "0",
                "--edit-strategy",
                self.edit_strategy,
                *self._common_args(),
            ],
            label="writer",
        )
        announce = self.writer.wait_announce()
        self.writer_port = int(announce["port"])
        self.writer_repl_port = int(announce["repl_port"])
        for index in range(self.n_replicas):
            self.replicas.append(self._spawn_replica(index))
        self.replica_ports = []
        for replica in self.replicas:
            assert replica is not None
            self.replica_ports.append(int(replica.wait_announce()["port"]))
        if self.with_router:
            router_args = [
                "serve",
                "--role",
                "router",
                "--port",
                "0",
                "--writer",
                f"127.0.0.1:{self.writer_port}",
            ]
            for port in self.replica_ports:
                router_args += ["--replica", f"127.0.0.1:{port}"]
            self.router = ClusterProcess(router_args, label="router")
            self.router_port = int(self.router.wait_announce()["port"])
        return self

    def _spawn_replica(self, index: int) -> ClusterProcess:
        return ClusterProcess(
            [
                "serve",
                "--role",
                "replica",
                "--port",
                "0",
                "--writer-feed",
                f"127.0.0.1:{self.writer_repl_port}",
                *self._common_args(),
            ],
            label=f"replica-{index}",
        )

    def stop(self) -> None:
        if self.router is not None:
            self.router.terminate()
            self.router = None
        for replica in self.replicas:
            if replica is not None:
                replica.terminate()
        self.replicas = []
        if self.writer is not None:
            self.writer.terminate()
            self.writer = None

    def __enter__(self) -> "ReplicatedCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -------------------------------------------------------------- #
    # fault injection
    # -------------------------------------------------------------- #

    def kill_replica(self, index: int) -> None:
        replica = self.replicas[index]
        assert replica is not None, "replica already dead"
        replica.kill()
        self.replicas[index] = None

    def restart_replica(self, index: int, timeout: float = 60.0) -> int:
        """Start a fresh replica process in slot ``index``; returns its port."""
        assert self.replicas[index] is None, "kill the old replica first"
        replica = self._spawn_replica(index)
        self.replicas[index] = replica
        port = int(replica.wait_announce(timeout=timeout)["port"])
        self.replica_ports[index] = port
        return port

    def kill_writer(self) -> None:
        assert self.writer is not None
        self.writer.kill()
        self.writer = None

    # -------------------------------------------------------------- #
    # clients
    # -------------------------------------------------------------- #

    def writer_client(self, **kwargs) -> ServiceClient:
        assert self.writer_port is not None
        return ServiceClient("127.0.0.1", self.writer_port, **kwargs)

    def replica_client(self, index: int, **kwargs) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.replica_ports[index], **kwargs)

    def router_client(self, **kwargs) -> ServiceClient:
        assert self.router_port is not None
        return ServiceClient("127.0.0.1", self.router_port, **kwargs)

    def wait_converged(
        self, version: int, timeout: float = 60.0, poll: float = 0.02
    ) -> None:
        """Poll every live replica's ``/healthz`` until it reaches ``version``."""
        deadline = time.monotonic() + timeout
        for index, replica in enumerate(self.replicas):
            if replica is None or not replica.alive:
                continue
            client = self.replica_client(index, timeout=5.0)
            try:
                while True:
                    try:
                        status, doc = client.request("GET", "/healthz")
                        if int(doc.get("version", -1)) >= version:
                            break
                    except Exception:
                        pass
                    if time.monotonic() >= deadline:
                        raise TimeoutError(
                            f"replica {index} did not reach version {version}"
                        )
                    time.sleep(poll)
            finally:
                client.close()
