"""Replicated read-scaling tier for the Triangle K-Core query service.

A single **writer** process owns the authoritative
:class:`~repro.core.dynamic.DynamicTriangleKCore`; every committed edit
batch is shipped as a length-prefixed, checksummed frame over a
replication log socket to any number of **replica** processes, which
fold the edits into their own warm indexes and answer reads stamped with
``answered_at_version``.  A front **router** spreads reads across the
replicas and forwards writes to the writer; clients get read-your-writes
by passing the write's returned ``version`` back as a ``min_version``
read fence.

See docs/SERVICE.md ("Replication") for the consistency model and
topology, and ``tests/test_replication.py`` for the conformance suite.
"""

from .frames import (
    KIND_COMMIT,
    KIND_HELLO,
    KIND_SNAPSHOT,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    CommitRecord,
    FrameError,
    ReplicationDivergenceError,
    ReplicationError,
    decode_header,
    decode_payload,
    encode_frame,
    read_frame,
)
from .hub import REPLICATION_SCHEMA, ReplicationLog, WriterServer, WriterState
from .launcher import (
    ANNOUNCE_PREFIX,
    BackgroundRouter,
    ClusterProcess,
    LocalCluster,
    ReplicatedCluster,
)
from .replica import ReplicaServer, ReplicaState
from .router import RouterServer, run_router

__all__ = [
    "ANNOUNCE_PREFIX",
    "BackgroundRouter",
    "ClusterProcess",
    "CommitRecord",
    "FrameError",
    "KIND_COMMIT",
    "KIND_HELLO",
    "KIND_SNAPSHOT",
    "LocalCluster",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "REPLICATION_SCHEMA",
    "ReplicaServer",
    "ReplicaState",
    "ReplicatedCluster",
    "ReplicationDivergenceError",
    "ReplicationError",
    "ReplicationLog",
    "RouterServer",
    "WriterServer",
    "WriterState",
    "decode_header",
    "decode_payload",
    "encode_frame",
    "read_frame",
    "run_router",
]
