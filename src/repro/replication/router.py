"""The front router: one address, writes to the writer, reads spread out.

A :class:`RouterServer` is a small asyncio HTTP proxy that gives clients
a single endpoint over a replicated tier:

* **writes** (``POST /edits``) and ``GET /stats`` always go to the
  writer — the authoritative state and its metrics;
* **reads** (``/kappa``, ``/community``, ``/hierarchy``,
  ``/templates/*``, ``/healthz``) round-robin across the replicas,
  failing over to the next replica — and finally the writer itself — on
  connection errors or a 503 ``stale_replica`` fence timeout;
* ``GET /router/healthz`` is answered locally (backend inventory).

Read-your-writes through the router is the client's ``min_version``
fence: ``POST /edits`` returns the new authoritative ``version``; the
client passes it back as ``min_version=V`` on its next read and the
chosen replica parks the read until its replication tail has folded
``V`` (or answers 503 ``stale_replica`` after the fence timeout, which
the router treats as "try another backend").

The router holds per-backend keep-alive connection pools; a pooled
connection that turns out to be dead is discarded and the request is
retried once on a fresh connection before the backend is considered
down for this request.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Dict, List, Optional, Tuple

from ..service.protocol import (
    ERR_STALE,
    ERR_UPSTREAM,
    SERVICE_SCHEMA,
    HttpRequest,
    HttpResponse,
    ProtocolError,
    error_payload,
    read_http_request,
    read_http_response,
    render_http_response,
)

#: (host, port) of one backend.
Address = Tuple[str, int]

#: Error payloads the router retries on another backend.
_FAILOVER_STATUS = 503


class _BackendPool:
    """Keep-alive connection pool for one backend address."""

    def __init__(self, address: Address, *, connect_timeout: float) -> None:
        self.address = address
        self.connect_timeout = connect_timeout
        self._idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def acquire(
        self,
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter, bool]:
        """A (reader, writer, was_pooled) triple; raises OSError if down."""
        while self._idle:
            reader, writer = self._idle.pop()
            if writer.is_closing():
                continue
            return reader, writer, True
        host, port = self.address
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=self.connect_timeout
        )
        return reader, writer, False

    def release(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if not writer.is_closing():
            self._idle.append((reader, writer))
        else:
            writer.close()

    def close_all(self) -> None:
        for _reader, writer in self._idle:
            writer.close()
        self._idle.clear()


class RouterServer:
    """Single-address front for one writer plus N replicas.

    Duck-types the :class:`~repro.service.server.ServiceServer`
    lifecycle (``start`` / ``port`` / ``request_shutdown`` /
    ``serve_forever`` / ``drain``) so :func:`~repro.service.server.run_server`
    and :class:`~repro.service.server.BackgroundServer`-style harnesses
    drive it unchanged.
    """

    def __init__(
        self,
        *,
        writer_addr: Address,
        replica_addrs: List[Address],
        host: str = "127.0.0.1",
        port: int = 0,
        connect_timeout: float = 5.0,
        idle_timeout: float = 60.0,
    ) -> None:
        self.writer_addr = (writer_addr[0], int(writer_addr[1]))
        self.replica_addrs = [(h, int(p)) for (h, p) in replica_addrs]
        self.host = host
        self._requested_port = port
        self.connect_timeout = connect_timeout
        self.idle_timeout = idle_timeout
        self._server: Optional[asyncio.base_events.Server] = None
        self._pools: Dict[Address, _BackendPool] = {}
        self._rr = 0
        self._draining = False
        self._shutdown_requested = asyncio.Event()
        self._connections: set = set()
        # Observability: per-backend proxied/failed counters.
        self.proxied: Dict[str, int] = {}
        self.failovers = 0

    # -------------------------------------------------------------- #
    # lifecycle (ServiceServer-compatible)
    # -------------------------------------------------------------- #

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("router is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    def request_shutdown(self) -> None:
        self._shutdown_requested.set()

    async def serve_forever(self) -> None:
        await self._shutdown_requested.wait()
        await self.drain()

    async def drain(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        for pool in self._pools.values():
            pool.close_all()

    # -------------------------------------------------------------- #
    # routing policy
    # -------------------------------------------------------------- #

    def _is_write(self, request: HttpRequest) -> bool:
        return request.method != "GET" or request.path == "/stats"

    def _read_order(self) -> List[Address]:
        """Replicas starting at the round-robin cursor, writer last."""
        if not self.replica_addrs:
            return [self.writer_addr]
        start = self._rr % len(self.replica_addrs)
        self._rr += 1
        rotated = (
            self.replica_addrs[start:] + self.replica_addrs[:start]
        )
        return rotated + [self.writer_addr]

    def _pool(self, address: Address) -> _BackendPool:
        pool = self._pools.get(address)
        if pool is None:
            pool = _BackendPool(address, connect_timeout=self.connect_timeout)
            self._pools[address] = pool
        return pool

    # -------------------------------------------------------------- #
    # proxying
    # -------------------------------------------------------------- #

    async def _forward_once(
        self, address: Address, request: HttpRequest
    ) -> HttpResponse:
        """Send ``request`` to one backend; one retry on a stale pooled
        connection, then errors propagate."""
        pool = self._pool(address)
        for _attempt in (0, 1):
            reader, writer, was_pooled = await pool.acquire()
            try:
                writer.write(_render_request(address, request))
                await writer.drain()
                response = await read_http_response(reader)
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.IncompleteReadError,
                OSError,
            ):
                writer.close()
                if was_pooled:
                    continue  # the idle connection had died; retry fresh
                raise
            if response.will_close:
                writer.close()
            else:
                pool.release(reader, writer)
            return response
        raise ConnectionResetError(f"backend {address} unreachable")

    async def _answer(self, request: HttpRequest) -> Tuple[bytes, bool]:
        """Route one request; returns (raw response bytes, close?)."""
        if request.path == "/router/healthz":
            return (
                render_http_response(
                    200,
                    {
                        "status": "draining" if self._draining else "ok",
                        "schema": SERVICE_SCHEMA,
                        "role": "router",
                        "writer": list(self.writer_addr),
                        "replicas": [list(a) for a in self.replica_addrs],
                        "proxied": dict(self.proxied),
                        "failovers": self.failovers,
                    },
                ),
                False,
            )
        targets = (
            [self.writer_addr]
            if self._is_write(request)
            else self._read_order()
        )
        last_error: Optional[str] = None
        for index, address in enumerate(targets):
            is_last = index == len(targets) - 1
            try:
                response = await self._forward_once(address, request)
            except (OSError, asyncio.TimeoutError, ProtocolError) as error:
                last_error = f"{address[0]}:{address[1]}: {error}"
                if not is_last:
                    self.failovers += 1
                continue
            if (
                response.status == _FAILOVER_STATUS
                and not is_last
                and _error_code(response) == ERR_STALE
            ):
                # This replica couldn't reach the fence in time; another
                # backend (ultimately the writer) may already be there.
                self.failovers += 1
                continue
            key = f"{address[0]}:{address[1]}"
            self.proxied[key] = self.proxied.get(key, 0) + 1
            return _stamp_served_by(response, key), False
        return (
            render_http_response(
                502,
                error_payload(
                    ERR_UPSTREAM,
                    "no backend could answer the request"
                    + (f" (last error: {last_error})" if last_error else ""),
                ),
                retry_after=1.0,
            ),
            False,
        )

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while not self._draining:
                try:
                    request = await asyncio.wait_for(
                        read_http_request(reader), timeout=self.idle_timeout
                    )
                except asyncio.TimeoutError:
                    break
                except ProtocolError as error:
                    writer.write(
                        render_http_response(
                            error.status,
                            error_payload(error.code, error.message),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                if request is None:
                    break
                keep_alive = not request.wants_close
                body, close_after = await self._answer(request)
                try:
                    writer.write(body)
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    break
                if close_after or not keep_alive:
                    break
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


def _render_request(address: Address, request: HttpRequest) -> bytes:
    """Re-serialize a parsed request for the backend leg."""
    host, port = address
    lines = [
        f"{request.method} {request.target or request.path} HTTP/1.1",
        f"Host: {host}:{port}",
        "Connection: keep-alive",
    ]
    content_type = request.headers.get("content-type")
    if content_type:
        lines.append(f"Content-Type: {content_type}")
    lines.append(f"Content-Length: {len(request.body)}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + request.body


def _error_code(response: HttpResponse) -> Optional[str]:
    """The ``error.code`` of a JSON error body, if any."""
    import json

    try:
        document = json.loads(response.body.decode("utf-8"))
        return document["error"]["code"]
    except Exception:
        return None


def _stamp_served_by(response: HttpResponse, backend: str) -> bytes:
    """Re-render a backend response with an ``X-Served-By`` header."""
    import json

    try:
        payload = json.loads(response.body.decode("utf-8"))
    except Exception:
        payload = None
    if isinstance(payload, dict):
        retry_after = response.header("retry-after")
        return render_http_response(
            response.status,
            payload,
            keep_alive=not response.will_close,
            retry_after=float(retry_after) if retry_after else None,
            extra_headers=(("X-Served-By", backend),),
        )
    # Non-JSON body (shouldn't happen with this service): pass through.
    head = (
        f"HTTP/1.1 {response.status} proxied\r\n"
        f"Content-Length: {len(response.body)}\r\n"
        f"Connection: keep-alive\r\n"
        f"X-Served-By: {backend}\r\n\r\n"
    ).encode("latin-1")
    return head + response.body


async def _run_router_async(
    router: RouterServer, *, announce=None, install_signals: bool = True
) -> None:
    if install_signals:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, router.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                signal.signal(signum, lambda *_args: router.request_shutdown())
    await router.start()
    if announce is not None:
        announce(router)
    await router.serve_forever()


def run_router(router: RouterServer, *, announce=None) -> None:
    """Serve the router until SIGTERM/SIGINT, then drain and return."""
    asyncio.run(
        _run_router_async(router, announce=announce, install_signals=True)
    )
