"""Dual View Plots — the paper's Algorithm 3.

Captures how clique-like structures change in a dynamic graph:

1. plot(a): the density plot of the original graph;
2. apply the edge updates through the incremental maintainer (Algorithm 2);
3. plot(b): a density plot of the *changed* cliques only — newly added
   edges keep ``co_clique_size = kappa + 2``, every old edge is zeroed
   (Algorithm 3 step 5), so only structures touched by new edges rise above
   the floor;
4. correspondence: selecting a community in plot(b) locates the same
   vertices in plot(a) with a shared marker (the paper's green triangle /
   red rectangle / orange ellipse of Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..engine import resolve_engine
from ..graph.edge import Edge, Vertex, canonical_edge
from ..graph.undirected import Graph
from ..core.triangle_kcore import TriangleKCoreResult
from .density_plot import DensityPlot, Marker, density_plot, density_plot_from_scores

_MARKER_SHAPES = ("triangle", "rect", "ellipse", "circle")


@dataclass
class DualViewPlots:
    """The two linked views plus the correspondence bookkeeping."""

    before: DensityPlot
    after: DensityPlot
    added_edges: Tuple[Edge, ...]
    removed_edges: Tuple[Edge, ...] = ()
    selections: List[Tuple[Marker, Marker]] = field(default_factory=list)

    def select(
        self, vertices: Sequence[Vertex], *, label: str = ""
    ) -> Tuple[Marker, Marker]:
        """Mark ``vertices`` in both views with the same shape and label.

        Vertices absent from the *before* view (brand-new vertices) are
        simply omitted from the before-marker — exactly the situation in the
        paper's Fig 8(c), where a new Wiki page exists only in plot(b).
        """
        shape = _MARKER_SHAPES[len(self.selections) % len(_MARKER_SHAPES)]
        before_positions = set(self.before.order)
        before_marker = self.before.add_marker(
            [v for v in vertices if v in before_positions],
            label=label,
            shape=shape,
        )
        after_marker = self.after.add_marker(list(vertices), label=label, shape=shape)
        self.selections.append((before_marker, after_marker))
        return before_marker, after_marker

    def locate(self, vertices: Iterable[Vertex]) -> Dict[Vertex, Tuple[int, int]]:
        """``{vertex: (x_before, x_after)}`` positions; -1 where absent."""
        before_positions = self.before.positions()
        after_positions = self.after.positions()
        return {
            v: (before_positions.get(v, -1), after_positions.get(v, -1))
            for v in vertices
        }


def dual_view_plots(
    old_graph: Graph,
    *,
    added: Sequence[Tuple[Vertex, Vertex]],
    removed: Sequence[Tuple[Vertex, Vertex]] = (),
    title_before: str = "snapshot t",
    title_after: str = "snapshot t+1 (changed cliques)",
    before_result: Optional[TriangleKCoreResult] = None,
    after_result: Optional[TriangleKCoreResult] = None,
    new_graph: Optional[Graph] = None,
    backend: Optional[str] = None,
    engine: Optional[object] = None,
) -> DualViewPlots:
    """Run Algorithm 3 end to end.

    Steps 1-3: decompose the original graph and draw plot(a).  Step 4:
    apply the updates through the engine's incremental maintainer.  Steps
    5-6: re-score edges — added edges keep ``kappa + 2``, surviving old
    edges are zeroed — and draw plot(b).  Step 7 (selection /
    correspondence) is the caller's move via :meth:`DualViewPlots.select`.

    Callers that already hold decompositions can pass ``before_result``
    and/or ``after_result`` (the latter together with ``new_graph``) to
    skip the corresponding recompute entirely — previously plot(a) was
    always recomputed even when the caller had the result in hand.
    """
    eng = resolve_engine(engine)
    if before_result is None:
        before_result = eng.decompose(old_graph, backend=backend)
    before = density_plot(old_graph, before_result, title=title_before)

    if after_result is not None and new_graph is not None:
        after_kappa: Dict[Edge, int] = after_result.kappa
    else:
        maintainer = eng.maintainer(old_graph, copy=True)
        maintainer.apply(added=added, removed=removed)
        new_graph = maintainer.graph
        after_kappa = maintainer.kappa

    added_set = {canonical_edge(u, v) for u, v in added}
    changed_scores: Dict[Edge, int] = {}
    for edge, kappa in after_kappa.items():
        changed_scores[edge] = kappa + 2 if edge in added_set else 0

    after = density_plot_from_scores(new_graph, changed_scores, title=title_after)
    return DualViewPlots(
        before=before,
        after=after,
        added_edges=tuple(sorted(added_set, key=repr)),
        removed_edges=tuple(
            sorted({canonical_edge(u, v) for u, v in removed}, key=repr)
        ),
    )


def dual_view_from_snapshots(
    old_graph: Graph,
    new_graph: Graph,
    *,
    backend: Optional[str] = None,
    engine: Optional[object] = None,
) -> DualViewPlots:
    """Convenience wrapper: derive the deltas from two snapshots.

    This is how the Wiki case study (paper Fig 8) is driven: two consecutive
    snapshots in, two linked plots out.
    """
    from ..graph.io import graph_diff

    added, removed = graph_diff(old_graph, new_graph)
    return dual_view_plots(
        old_graph, added=added, removed=removed, backend=backend, engine=engine
    )
