"""Density plots: the paper's CSV-style clique-distribution visualization.

A :class:`DensityPlot` is pure data — an ordered list of vertices with a
height per vertex — independent of any rendering backend.  Heights are
``co_clique_size`` values (``kappa + 2`` when built from a Triangle K-Core
decomposition, or CSV's own estimates when built from the baseline), so flat
plateaus at height ``h`` reveal approximate ``h``-vertex cliques.

Renderers live in :mod:`repro.viz.ascii` and :mod:`repro.viz.svg`; plateau
analysis in :mod:`repro.analysis.peaks`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from ..graph.edge import Edge, Vertex
from ..graph.undirected import Graph
from ..core.triangle_kcore import TriangleKCoreResult
from .ordering import optics_order, order_positions, vertex_scores


@dataclass
class Marker:
    """A highlighted region of a plot (the paper's circles/rectangles).

    ``vertices`` are the members; ``label`` and ``shape`` control rendering
    (``shape`` is one of ``"circle"``, ``"rect"``, ``"ellipse"``,
    ``"triangle"`` — matching the paper's Figure 8 marker vocabulary).
    """

    vertices: Tuple[Vertex, ...]
    label: str = ""
    shape: str = "circle"


@dataclass
class DensityPlot:
    """An OPTICS-style clique-distribution plot as data.

    Attributes
    ----------
    order:
        Vertices in plot (x-axis) order.
    heights:
        One height per vertex (same indexing as ``order``).
    title:
        Free-form title used by the renderers.
    markers:
        Highlighted regions (communities of interest).
    """

    order: List[Vertex]
    heights: List[int]
    title: str = ""
    markers: List[Marker] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.order) != len(self.heights):
            raise ValueError(
                f"order has {len(self.order)} vertices but heights has "
                f"{len(self.heights)} values"
            )

    @property
    def max_height(self) -> int:
        return max(self.heights, default=0)

    def position_of(self, vertex: Vertex) -> int:
        """X position of ``vertex`` (ValueError if absent)."""
        try:
            return self.order.index(vertex)
        except ValueError:
            raise ValueError(f"vertex {vertex!r} is not in this plot") from None

    def positions(self) -> Dict[Vertex, int]:
        """``{vertex: x position}`` lookup table."""
        return order_positions(self.order)

    def height_of(self, vertex: Vertex) -> int:
        """Height drawn for ``vertex``."""
        return self.heights[self.position_of(vertex)]

    def add_marker(
        self, vertices: Sequence[Vertex], *, label: str = "", shape: str = "circle"
    ) -> Marker:
        """Highlight a vertex set; returns the created marker."""
        marker = Marker(vertices=tuple(vertices), label=label, shape=shape)
        self.markers.append(marker)
        return marker

    def series(self) -> List[Tuple[int, int]]:
        """``(x, height)`` pairs — the raw polyline renderers draw."""
        return list(enumerate(self.heights))


def density_plot(
    graph: Graph,
    result: TriangleKCoreResult,
    *,
    title: str = "",
    y_mode: str = "reachability",
) -> DensityPlot:
    """Build the paper's density plot from a Triangle K-Core decomposition.

    Heights are ``co_clique_size = kappa + 2`` (edges at kappa 0 still count
    as 2-cliques; isolated vertices get 0).

    ``y_mode``:

    * ``"reachability"`` (default) — each vertex is drawn at the score of
      the edge through which the OPTICS-style traversal reached it.  This
      is the closest match to CSV's published plots.
    * ``"vertex_max"`` — each vertex is drawn at its best incident edge
      score; plateaus are flatter, boundaries sharper.
    """
    edge_scores = {edge: value + 2 for edge, value in result.kappa.items()}
    return density_plot_from_scores(graph, edge_scores, title=title, y_mode=y_mode)


def density_plot_from_scores(
    graph: Graph,
    edge_scores: Mapping[Edge, int],
    *,
    title: str = "",
    y_mode: str = "reachability",
) -> DensityPlot:
    """Build a density plot from arbitrary per-edge scores.

    This is the entry point the CSV baseline and the template-pattern
    detectors use: anything that can score edges can be plotted with the
    same machinery (paper Algorithm 4 step 14 — "use the same plot method
    as CSV").
    """
    if y_mode not in ("reachability", "vertex_max"):
        raise ValueError(
            f"y_mode must be 'reachability' or 'vertex_max', got {y_mode!r}"
        )
    order, reach_heights = optics_order(graph, edge_scores)
    if y_mode == "reachability":
        heights = reach_heights
    else:
        per_vertex = vertex_scores(edge_scores)
        heights = [per_vertex.get(vertex, 0) for vertex in order]
    return DensityPlot(order=order, heights=heights, title=title)


def plot_similarity(a: DensityPlot, b: DensityPlot) -> float:
    """Similarity in [0, 1] between two plots over the same vertex set.

    Compares per-vertex heights (invariant to the enumeration order, which
    the paper notes can shift between CSV and Triangle K-Core plots without
    changing the trends): 1 - mean(|h_a - h_b|) / max_height.  Returns 1.0
    for two empty plots.
    """
    heights_a = {v: h for v, h in zip(a.order, a.heights)}
    heights_b = {v: h for v, h in zip(b.order, b.heights)}
    common = set(heights_a) & set(heights_b)
    if not common:
        return 1.0 if not heights_a and not heights_b else 0.0
    scale = max(
        max((heights_a[v] for v in common), default=0),
        max((heights_b[v] for v in common), default=0),
    )
    if scale == 0:
        return 1.0
    total = sum(abs(heights_a[v] - heights_b[v]) for v in common)
    return 1.0 - total / (scale * len(common))
