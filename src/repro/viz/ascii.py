"""Terminal rendering of density plots.

Keeps the examples and the CLI self-contained: no plotting dependency is
installed in the reproduction environment, and a bar chart in a terminal is
enough to see the paper's plateaus.
"""

from __future__ import annotations

from typing import List

from .density_plot import DensityPlot

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(plot: DensityPlot, *, width: int = 100) -> str:
    """One-line unicode sparkline of the plot heights.

    Downsamples (max-pooling) to ``width`` columns so plateaus survive.
    """
    heights = plot.heights
    if not heights:
        return ""
    scale = max(plot.max_height, 1)
    columns = min(width, len(heights))
    chunk = len(heights) / columns
    cells: List[str] = []
    for i in range(columns):
        lo = int(i * chunk)
        hi = max(lo + 1, int((i + 1) * chunk))
        value = max(heights[lo:hi])
        level = round(value / scale * (len(_BLOCKS) - 1))
        cells.append(_BLOCKS[level])
    return "".join(cells)


def render(plot: DensityPlot, *, height: int = 12, width: int = 100) -> str:
    """Multi-line bar rendering with a y-axis scale and title."""
    heights = plot.heights
    lines: List[str] = []
    if plot.title:
        lines.append(plot.title)
    if not heights:
        lines.append("(empty plot)")
        return "\n".join(lines)
    scale = max(plot.max_height, 1)
    columns = min(width, len(heights))
    chunk = len(heights) / columns
    pooled: List[int] = []
    for i in range(columns):
        lo = int(i * chunk)
        hi = max(lo + 1, int((i + 1) * chunk))
        pooled.append(max(heights[lo:hi]))
    for row in range(height, 0, -1):
        threshold = scale * row / height
        label = f"{threshold:6.1f} |" if row in (height, 1) else "       |"
        cells = "".join("█" if value >= threshold else " " for value in pooled)
        lines.append(label + cells)
    lines.append("       +" + "-" * columns)
    lines.append(f"        {len(heights)} vertices, max co-clique size {plot.max_height}")
    for marker in plot.markers:
        positions = plot.positions()
        xs = sorted(positions[v] for v in marker.vertices if v in positions)
        if xs:
            lines.append(
                f"        marker[{marker.shape}] {marker.label or '(unlabeled)'}: "
                f"x in {xs[0]}..{xs[-1]} ({len(xs)} vertices)"
            )
    return "\n".join(lines)
