"""Comparison and timeline figures.

* :func:`side_by_side_svg` — a grid of density plots in one SVG, the
  layout of the paper's Figure 6 (CSV panel next to the Triangle K-Core
  panel per dataset).
* :func:`timeline_svg` — a swimlane view of a
  :class:`~repro.analysis.timeline.CommunityTimeline`: snapshots as
  columns, communities as dots sized by membership, transitions as lines
  (merges fan in, splits fan out).
"""

from __future__ import annotations

import html
from typing import List, Sequence

from .density_plot import DensityPlot
from .svg import density_plot_svg

_KIND_COLORS = {
    "continue": "#90a4ae",
    "grow": "#2e7d32",
    "shrink": "#ef6c00",
    "merge": "#c62828",
    "split": "#6a1b9a",
    "form": "#1565c0",
    "dissolve": "#b0bec5",
}


def side_by_side_svg(
    plots: Sequence[DensityPlot],
    *,
    columns: int = 2,
    panel_width: int = 450,
    panel_height: int = 220,
) -> str:
    """Stack density plots into a grid (row-major), one standalone SVG."""
    if not plots:
        raise ValueError("side_by_side_svg needs at least one plot")
    columns = max(1, columns)
    rows = (len(plots) + columns - 1) // columns
    width = columns * panel_width
    height = rows * panel_height
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for index, plot in enumerate(plots):
        x = (index % columns) * panel_width
        y = (index // columns) * panel_height
        panel = density_plot_svg(plot, width=panel_width, height=panel_height)
        body = panel.split("\n", 2)[2].rsplit("</svg>", 1)[0]
        parts.append(f'<g transform="translate({x},{y})">{body}</g>')
    parts.append("</svg>")
    return "\n".join(parts)


def timeline_svg(
    timeline,
    *,
    width: int = 900,
    row_height: int = 26,
    labels: Sequence[str] | None = None,
) -> str:
    """Render a community-evolution timeline as a swimlane SVG.

    Accepts a :class:`repro.analysis.timeline.CommunityTimeline`.  Each
    snapshot is a column; each tracked community a circle (radius ~ size);
    each transition a colored connector (see ``_KIND_COLORS``).
    """
    snapshots = timeline.communities
    if not snapshots:
        raise ValueError("timeline has no snapshots")
    num_snapshots = len(snapshots)
    max_rows = max((len(c) for c in snapshots), default=1)
    height = 60 + max_rows * row_height
    margin = 70
    column_gap = (width - 2 * margin) / max(num_snapshots - 1, 1)

    def position(snapshot: int, row: int) -> tuple:
        return (margin + snapshot * column_gap, 50 + row * row_height)

    # Row assignment: order of appearance within each snapshot.
    row_of = {}
    for t, communities in enumerate(snapshots):
        for row, community in enumerate(communities):
            row_of[id(community)] = row

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for t in range(num_snapshots):
        x = margin + t * column_gap
        label = labels[t] if labels and t < len(labels) else f"t{t}"
        parts.append(
            f'<text x="{x:.1f}" y="24" font-size="12" text-anchor="middle" '
            f'font-family="sans-serif">{html.escape(str(label))}</text>'
        )
        parts.append(
            f'<line x1="{x:.1f}" y1="34" x2="{x:.1f}" y2="{height - 12}" '
            'stroke="#eceff1"/>'
        )

    # Transition connectors first (under the dots).
    for transition in timeline.transitions:
        color = _KIND_COLORS.get(transition.kind, "#90a4ae")
        for old in transition.before:
            for new in transition.after:
                x1, y1 = position(old.snapshot, row_of[id(old)])
                x2, y2 = position(new.snapshot, row_of[id(new)])
                parts.append(
                    f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
                    f'y2="{y2:.1f}" stroke="{color}" stroke-width="1.5"/>'
                )
        if not transition.after:  # dissolve: fade out marker
            old = transition.before[0]
            x, y = position(old.snapshot, row_of[id(old)])
            parts.append(
                f'<text x="{x + 10:.1f}" y="{y + 4:.1f}" font-size="10" '
                f'fill="{_KIND_COLORS["dissolve"]}" '
                'font-family="sans-serif">&#215;</text>'
            )

    # Community dots.
    for t, communities in enumerate(snapshots):
        for row, community in enumerate(communities):
            x, y = position(t, row)
            radius = 3 + min(community.size, 30) / 4
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius:.1f}" '
                'fill="#37474f" fill-opacity="0.85"/>'
            )
            parts.append(
                f'<text x="{x:.1f}" y="{y + 3:.1f}" font-size="8" '
                'fill="white" text-anchor="middle" '
                f'font-family="sans-serif">{community.size}</text>'
            )

    # Legend.
    legend_x = 8
    legend_y = height - 8
    for kind, color in _KIND_COLORS.items():
        parts.append(
            f'<text x="{legend_x}" y="{legend_y}" font-size="9" fill="{color}" '
            f'font-family="sans-serif">{kind}</text>'
        )
        legend_x += 9 * len(kind) + 14
    parts.append("</svg>")
    return "\n".join(parts)
