"""Interactive, self-contained HTML explorers.

The paper describes a visual-analytic *tool*: the user looks at the
density plot, circles a plateau, inspects its members, and — in the dual
view — sees where those members sat before the change.  These functions
produce that tool as a single HTML file with no external dependencies:
the plot data is embedded as JSON, vanilla JavaScript renders it to a
canvas and implements hover tooltips, drag-selection and (for the dual
view) cross-view highlighting.

* :func:`explorer_html` — one density plot, hover + drag-to-inspect;
* :func:`dual_view_explorer_html` — the Algorithm 3 pair with linked
  selection (select a plateau in the changed view, its vertices light up
  in the before view — the paper's cognitive correspondence, live).
"""

from __future__ import annotations

import html
import json
from typing import List

from .density_plot import DensityPlot
from .dual_view import DualViewPlots

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 1.5rem;
       color: #263238; }
h1 { font-size: 1.3rem; }
.panel { position: relative; margin-bottom: 1rem; }
canvas { border: 1px solid #b0bec5; display: block; cursor: crosshair; }
#tooltip { position: absolute; background: #263238; color: #eceff1;
           padding: 2px 8px; border-radius: 3px; font-size: 12px;
           pointer-events: none; display: none; white-space: nowrap; }
#selection { margin-top: .6rem; font-size: .9rem; max-width: 60rem; }
#selection b { color: #c62828; }
button { margin-left: .6rem; }
.hint { color: #607d8b; font-size: .85rem; }
"""

_EXPLORER_JS = """
function drawPlot(canvas, data, highlight) {
  const ctx = canvas.getContext('2d');
  const W = canvas.width, H = canvas.height, pad = 30;
  ctx.clearRect(0, 0, W, H);
  const n = data.order.length || 1;
  const maxH = Math.max(1, ...data.heights);
  const bw = (W - pad - 10) / n;
  for (let i = 0; i < n; i++) {
    const h = data.heights[i] / maxH * (H - pad - 14);
    const sel = highlight && highlight.has(data.order[i]);
    ctx.fillStyle = sel ? '#c62828' : '#37474f';
    ctx.fillRect(pad + i * bw, H - pad - h, Math.max(bw, 0.75), h);
  }
  ctx.strokeStyle = '#555';
  ctx.beginPath();
  ctx.moveTo(pad, 8); ctx.lineTo(pad, H - pad);
  ctx.lineTo(W - 8, H - pad); ctx.stroke();
  ctx.fillStyle = '#263238'; ctx.font = '11px sans-serif';
  ctx.fillText(String(maxH), 4, 16);
  ctx.fillText('0', 16, H - pad + 4);
  ctx.fillText(data.title || '', pad + 6, 16);
}

function attachExplorer(canvasId, data, onSelect) {
  const canvas = document.getElementById(canvasId);
  const tooltip = document.getElementById('tooltip');
  const pad = 30;
  let dragStart = null;
  drawPlot(canvas, data, null);

  function indexAt(evt) {
    const rect = canvas.getBoundingClientRect();
    const x = evt.clientX - rect.left - pad;
    const bw = (canvas.width - pad - 10) / Math.max(data.order.length, 1);
    return Math.max(0, Math.min(data.order.length - 1, Math.floor(x / bw)));
  }
  canvas.addEventListener('mousemove', (evt) => {
    const i = indexAt(evt);
    tooltip.style.display = 'block';
    tooltip.style.left = (evt.pageX + 12) + 'px';
    tooltip.style.top = (evt.pageY - 10) + 'px';
    tooltip.textContent =
      data.order[i] + '  (co-clique size ' + data.heights[i] + ')';
    if (dragStart !== null) {
      const lo = Math.min(dragStart, i), hi = Math.max(dragStart, i);
      const picked = new Set(data.order.slice(lo, hi + 1));
      drawPlot(canvas, data, picked);
    }
  });
  canvas.addEventListener('mouseleave', () => {
    tooltip.style.display = 'none';
  });
  canvas.addEventListener('mousedown', (evt) => {
    dragStart = indexAt(evt);
  });
  canvas.addEventListener('mouseup', (evt) => {
    if (dragStart === null) return;
    const i = indexAt(evt);
    const lo = Math.min(dragStart, i), hi = Math.max(dragStart, i);
    dragStart = null;
    const members = data.order.slice(lo, hi + 1);
    const heights = data.heights.slice(lo, hi + 1);
    drawPlot(canvas, data, new Set(members));
    onSelect(members, heights);
  });
  return { redraw: (highlight) => drawPlot(canvas, data, highlight) };
}

function describeSelection(members, heights) {
  const peak = Math.max(...heights);
  const dense = members.filter((m, i) => heights[i] >= peak - 1);
  document.getElementById('selection').innerHTML =
    '<b>' + members.length + ' vertices selected</b> (peak co-clique size ' +
    peak + '): ' + dense.slice(0, 40).map(escapeHtml).join(', ') +
    (dense.length > 40 ? ', …' : '');
}

function escapeHtml(s) {
  return String(s).replace(/[&<>"]/g, (c) =>
    ({'&': '&amp;', '<': '&lt;', '>': '&gt;', '"': '&quot;'}[c]));
}
"""


def _plot_payload(plot: DensityPlot) -> dict:
    return {
        "title": plot.title,
        "order": [str(v) for v in plot.order],
        "heights": list(plot.heights),
    }


def explorer_html(plot: DensityPlot, *, title: str = "Density plot explorer") -> str:
    """A single-plot interactive explorer as one HTML document."""
    payload = json.dumps(_plot_payload(plot), separators=(",", ":"))
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"/>
<title>{html.escape(title)}</title>
<style>{_CSS}</style>
</head><body>
<h1>{html.escape(title)}</h1>
<p class="hint">hover for vertex details; click-drag a plateau to list its
members <button onclick="clearSelection()">clear</button></p>
<div class="panel"><canvas id="plot" width="960" height="280"></canvas></div>
<div id="tooltip"></div>
<div id="selection" class="hint">nothing selected</div>
<script>
const PLOT_DATA = {payload};
{_EXPLORER_JS}
const view = attachExplorer('plot', PLOT_DATA, describeSelection);
function clearSelection() {{
  view.redraw(null);
  document.getElementById('selection').textContent = 'nothing selected';
}}
</script>
</body></html>
"""


def dual_view_explorer_html(
    plots: DualViewPlots, *, title: str = "Dual view explorer"
) -> str:
    """The linked Algorithm 3 pair with live cross-view highlighting.

    Drag-select a plateau in the *changed* view (bottom); the same vertices
    highlight in the *before* view (top), wherever its ordering placed
    them — the interactive version of the paper's Figure 8 markers.
    """
    before = json.dumps(_plot_payload(plots.before), separators=(",", ":"))
    after = json.dumps(_plot_payload(plots.after), separators=(",", ":"))
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"/>
<title>{html.escape(title)}</title>
<style>{_CSS}</style>
</head><body>
<h1>{html.escape(title)}</h1>
<p class="hint">drag-select changed cliques in the bottom view; their
vertices highlight above <button onclick="clearSelection()">clear</button></p>
<div class="panel"><canvas id="before" width="960" height="250"></canvas></div>
<div class="panel"><canvas id="after" width="960" height="250"></canvas></div>
<div id="tooltip"></div>
<div id="selection" class="hint">nothing selected</div>
<script>
const BEFORE_DATA = {before};
const AFTER_DATA = {after};
{_EXPLORER_JS}
const beforeView = attachExplorer('before', BEFORE_DATA, describeSelection);
const afterView = attachExplorer('after', AFTER_DATA, (members, heights) => {{
  describeSelection(members, heights);
  beforeView.redraw(new Set(members));
}});
function clearSelection() {{
  beforeView.redraw(null);
  afterView.redraw(null);
  document.getElementById('selection').textContent = 'nothing selected';
}}
</script>
</body></html>
"""


def save_explorer(document: str, path: str) -> None:
    """Write an explorer document to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
