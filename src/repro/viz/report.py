"""Self-contained HTML reports.

The paper's workflow produces artifacts a person reads: density plots,
circled communities, before/after views.  :class:`HtmlReport` assembles
them into one dependency-free HTML file (SVGs inlined, simple styling), so
a whole case study can be shared as a single document.

:func:`decomposition_report` is the batteries-included variant: graph
statistics, the kappa histogram, the density plot and the densest
communities of a decomposition, one call.
"""

from __future__ import annotations

import html
from typing import List, Optional, Sequence

from ..graph.undirected import Graph
from ..core.triangle_kcore import TriangleKCoreResult
from .density_plot import DensityPlot
from .dual_view import DualViewPlots
from .svg import density_plot_svg, dual_view_svg

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem auto;
       max-width: 64rem; color: #263238; line-height: 1.5; }
h1 { border-bottom: 2px solid #37474f; padding-bottom: .3rem; }
h2 { margin-top: 2rem; color: #37474f; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #b0bec5; padding: .35rem .7rem; text-align: left;
         font-size: .92rem; }
th { background: #eceff1; }
figure { margin: 1rem 0; }
figcaption { font-size: .85rem; color: #607d8b; }
code { background: #eceff1; padding: 0 .3rem; border-radius: 3px; }
"""


class HtmlReport:
    """Incremental builder for a standalone HTML document.

    Examples
    --------
    >>> report = HtmlReport("My analysis")
    >>> report.add_paragraph("hello")
    >>> "<p>hello</p>" in report.render()
    True
    """

    def __init__(self, title: str) -> None:
        self.title = title
        self._body: List[str] = []

    # ------------------------------------------------------------------ #
    # content
    # ------------------------------------------------------------------ #

    def add_heading(self, text: str, *, level: int = 2) -> None:
        level = min(max(level, 1), 6)
        self._body.append(f"<h{level}>{html.escape(text)}</h{level}>")

    def add_paragraph(self, text: str) -> None:
        self._body.append(f"<p>{html.escape(text)}</p>")

    def add_code(self, text: str) -> None:
        self._body.append(f"<pre><code>{html.escape(text)}</code></pre>")

    def add_table(
        self, headers: Sequence[str], rows: Sequence[Sequence[object]]
    ) -> None:
        parts = ["<table><thead><tr>"]
        for header in headers:
            parts.append(f"<th>{html.escape(str(header))}</th>")
        parts.append("</tr></thead><tbody>")
        for row in rows:
            parts.append("<tr>")
            for cell in row:
                parts.append(f"<td>{html.escape(str(cell))}</td>")
            parts.append("</tr>")
        parts.append("</tbody></table>")
        self._body.append("".join(parts))

    def add_svg(self, svg: str, *, caption: str = "") -> None:
        """Embed an SVG string (produced by :mod:`repro.viz.svg`) inline."""
        figure = ["<figure>", svg]
        if caption:
            figure.append(f"<figcaption>{html.escape(caption)}</figcaption>")
        figure.append("</figure>")
        self._body.append("".join(figure))

    def add_plot(self, plot: DensityPlot, *, caption: str = "", **svg_kwargs) -> None:
        """Embed a density plot."""
        self.add_svg(density_plot_svg(plot, **svg_kwargs), caption=caption)

    def add_dual_view(self, plots: DualViewPlots, *, caption: str = "") -> None:
        """Embed a linked dual-view pair."""
        self.add_svg(dual_view_svg(plots), caption=caption)

    # ------------------------------------------------------------------ #
    # output
    # ------------------------------------------------------------------ #

    def render(self) -> str:
        """Assemble the full HTML document."""
        return "\n".join(
            [
                "<!DOCTYPE html>",
                '<html lang="en"><head><meta charset="utf-8"/>',
                f"<title>{html.escape(self.title)}</title>",
                f"<style>{_STYLE}</style>",
                "</head><body>",
                f"<h1>{html.escape(self.title)}</h1>",
                *self._body,
                "</body></html>",
            ]
        )

    def save(self, path: str) -> None:
        """Write the document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())


def decomposition_report(
    graph: Graph,
    result: TriangleKCoreResult,
    *,
    title: str = "Triangle K-Core decomposition",
    plot: Optional[DensityPlot] = None,
    max_communities: int = 10,
) -> HtmlReport:
    """One-call report: stats, histogram, density plot, top communities."""
    from ..analysis.stats import graph_stats
    from ..core.extract import dense_communities
    from .density_plot import density_plot

    report = HtmlReport(title)

    stats = graph_stats(graph)
    report.add_heading("Graph")
    report.add_table(
        ("vertices", "edges", "triangles", "max degree", "transitivity",
         "degeneracy", "max kappa"),
        [(
            stats.vertices, stats.edges, stats.triangles, stats.max_degree,
            f"{stats.transitivity:.3f}", stats.degeneracy, result.max_kappa,
        )],
    )

    report.add_heading("Kappa histogram")
    histogram = result.histogram()
    report.add_table(
        ("kappa", "edges"), [(k, count) for k, count in histogram.items()]
    )

    report.add_heading("Density plot")
    report.add_plot(
        plot if plot is not None else density_plot(graph, result, title=title),
        caption="OPTICS-style clique distribution; plateaus at height h "
        "indicate approximate h-vertex cliques.",
    )

    report.add_heading("Densest communities")
    rows = []
    for count, (level, vertices) in enumerate(
        dense_communities(graph, result, min_kappa=1)
    ):
        if count >= max_communities:
            break
        members = ", ".join(sorted(map(str, vertices))[:10])
        suffix = ", ..." if len(vertices) > 10 else ""
        rows.append((count + 1, level, level + 2, len(vertices), members + suffix))
    report.add_table(
        ("rank", "kappa", "~clique size", "vertices", "members"), rows
    )
    return report
