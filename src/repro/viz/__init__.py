"""Visualization: OPTICS-style density plots, Dual View Plots, renderers."""

from .ascii import render, sparkline
from .compare import side_by_side_svg, timeline_svg
from .density_plot import (
    DensityPlot,
    Marker,
    density_plot,
    density_plot_from_scores,
    plot_similarity,
)
from .dual_view import DualViewPlots, dual_view_from_snapshots, dual_view_plots
from .explorer import dual_view_explorer_html, explorer_html, save_explorer
from .ordering import optics_order, order_positions, vertex_scores
from .report import HtmlReport, decomposition_report
from .svg import (
    density_plot_svg,
    dual_view_svg,
    graph_drawing_svg,
    save_svg,
)

__all__ = [
    "DensityPlot",
    "DualViewPlots",
    "HtmlReport",
    "Marker",
    "density_plot",
    "density_plot_from_scores",
    "decomposition_report",
    "density_plot_svg",
    "explorer_html",
    "dual_view_explorer_html",
    "dual_view_from_snapshots",
    "dual_view_plots",
    "dual_view_svg",
    "graph_drawing_svg",
    "optics_order",
    "order_positions",
    "plot_similarity",
    "render",
    "save_explorer",
    "save_svg",
    "side_by_side_svg",
    "timeline_svg",
    "sparkline",
    "vertex_scores",
]
