"""OPTICS-style vertex enumeration for density plots.

CSV (and this paper, §V) plots vertices along the x-axis in an order that
keeps each dense region contiguous, the way OPTICS orders points by
reachability.  We implement the graph analogue: a priority-first traversal
that always extends the plot with the frontier vertex whose connection to
the already-plotted region is densest (largest incident co-clique size /
kappa), restarting at the densest unvisited vertex when a region is
exhausted.

The outcome is the paper's plot shape: every clique-like structure shows up
as a flat plateau whose height is the clique's (approximate) size, and the
plateaus appear one after another from the densest down.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Mapping, Tuple

from ..graph.edge import Edge, Vertex, canonical_edge
from ..graph.undirected import Graph


def vertex_scores(edge_scores: Mapping[Edge, int]) -> Dict[Vertex, int]:
    """Per-vertex score: max score over incident edges.

    CSV's convention — "the Y-axis value for each vertex is one of its
    neighbor edges' co_clique_size value" — resolved to the maximum, which
    is what makes clique plateaus flat at the clique size.
    """
    scores: Dict[Vertex, int] = {}
    for (u, v), value in edge_scores.items():
        if scores.get(u, -1) < value:
            scores[u] = value
        if scores.get(v, -1) < value:
            scores[v] = value
    return scores


def optics_order(
    graph: Graph,
    edge_scores: Mapping[Edge, int],
) -> Tuple[List[Vertex], List[int]]:
    """Order vertices density-first; return (order, reachability heights).

    The traversal keeps a max-heap of frontier vertices keyed by the best
    edge score linking them to the visited set.  The returned heights are
    the *reachability* values — the edge score through which each vertex was
    reached (its own best score for region starters) — the closest analogue
    of OPTICS reachability distance and the series the density plot draws.

    Vertices with no edges are appended at the end with height 0.
    """
    scores = vertex_scores(edge_scores)
    counter = itertools.count()  # tie-breaker keeps heap entries comparable
    visited: set = set()
    order: List[Vertex] = []
    heights: List[int] = []

    # Region starters: densest vertices first, deterministic tie-break.
    starters = sorted(
        (v for v in graph.vertices()),
        key=lambda v: (-scores.get(v, 0), repr(v)),
    )

    frontier: List[tuple] = []

    def push(vertex: Vertex, height: int) -> None:
        heapq.heappush(frontier, (-height, next(counter), vertex))

    for starter in starters:
        if starter in visited:
            continue
        push(starter, scores.get(starter, 0))
        while frontier:
            negative_height, _, vertex = heapq.heappop(frontier)
            if vertex in visited:
                continue
            visited.add(vertex)
            order.append(vertex)
            heights.append(-negative_height)
            for neighbor in graph.neighbors(vertex):
                if neighbor in visited:
                    continue
                edge = canonical_edge(vertex, neighbor)
                push(neighbor, edge_scores.get(edge, 0))
    return order, heights


def order_positions(order: List[Vertex]) -> Dict[Vertex, int]:
    """``{vertex: x position}`` for locating vertices across plots.

    Dual View Plots use this to place the *same* community's vertices in
    both views (the paper's cognitive-correspondence markers).
    """
    return {vertex: index for index, vertex in enumerate(order)}
