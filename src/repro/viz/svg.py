"""Dependency-free SVG rendering of density plots.

Produces standalone ``.svg`` files for the paper's figures: single density
plots (Fig 6, 9-12) and linked dual-view panels (Fig 8).  Pure string
assembly — no third-party plotting stack is available in the reproduction
environment, and SVG keeps the output inspectable and diff-able.
"""

from __future__ import annotations

import html
from typing import List, Optional, Sequence

from .density_plot import DensityPlot, Marker
from .dual_view import DualViewPlots

# A small colorblind-safe palette for marker shapes.
PALETTE = ("#2e7d32", "#c62828", "#ef6c00", "#1565c0", "#6a1b9a")


def _escape(text: str) -> str:
    return html.escape(str(text), quote=True)


def _marker_svg(
    marker: Marker,
    color: str,
    plot: DensityPlot,
    x_of,
    y_of,
) -> str:
    """Draw one marker as an outline spanning its vertices' x-range."""
    positions = plot.positions()
    xs = sorted(positions[v] for v in marker.vertices if v in positions)
    if not xs:
        return ""
    heights = [plot.heights[x] for x in xs]
    x0, x1 = x_of(xs[0]) - 4, x_of(xs[-1]) + 4
    top = y_of(max(heights)) - 6
    bottom = y_of(0) + 2
    label = (
        f'<text x="{x0}" y="{top - 4}" font-size="10" fill="{color}">'
        f"{_escape(marker.label)}</text>"
        if marker.label
        else ""
    )
    cx, cy = (x0 + x1) / 2, (top + bottom) / 2
    rx, ry = max((x1 - x0) / 2, 6), max((bottom - top) / 2, 6)
    style = f'fill="none" stroke="{color}" stroke-width="1.5"'
    if marker.shape == "rect":
        shape = f'<rect x="{x0}" y="{top}" width="{x1 - x0}" height="{bottom - top}" {style}/>'
    elif marker.shape == "triangle":
        shape = (
            f'<polygon points="{cx},{top} {x0},{bottom} {x1},{bottom}" {style}/>'
        )
    elif marker.shape == "ellipse":
        shape = f'<ellipse cx="{cx}" cy="{cy}" rx="{rx}" ry="{ry}" {style}/>'
    else:  # circle
        r = max(rx, ry)
        shape = f'<circle cx="{cx}" cy="{cy}" r="{r}" {style}/>'
    return shape + label


def density_plot_svg(
    plot: DensityPlot,
    *,
    width: int = 900,
    height: int = 260,
    bar_color: str = "#37474f",
) -> str:
    """Render one density plot to a standalone SVG string."""
    margin_left, margin_bottom, margin_top = 46, 28, 26
    inner_w = width - margin_left - 10
    inner_h = height - margin_bottom - margin_top
    n = max(len(plot.order), 1)
    max_h = max(plot.max_height, 1)

    def x_of(index: int) -> float:
        return margin_left + index / n * inner_w

    def y_of(value: float) -> float:
        return margin_top + inner_h - value / max_h * inner_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if plot.title:
        parts.append(
            f'<text x="{margin_left}" y="16" font-size="13" '
            f'font-family="sans-serif">{_escape(plot.title)}</text>'
        )
    # Axes.
    parts.append(
        f'<line x1="{margin_left}" y1="{y_of(0)}" x2="{width - 10}" '
        f'y2="{y_of(0)}" stroke="#555"/>'
    )
    parts.append(
        f'<line x1="{margin_left}" y1="{margin_top}" x2="{margin_left}" '
        f'y2="{y_of(0)}" stroke="#555"/>'
    )
    for tick in range(0, max_h + 1, max(1, max_h // 5)):
        parts.append(
            f'<text x="{margin_left - 6}" y="{y_of(tick) + 4}" font-size="9" '
            f'text-anchor="end" font-family="sans-serif">{tick}</text>'
        )
    # Height bars (as a step polyline + fill for plateau visibility).
    if plot.heights:
        bar_w = max(inner_w / n, 0.5)
        for index, value in enumerate(plot.heights):
            if value <= 0:
                continue
            parts.append(
                f'<rect x="{x_of(index):.2f}" y="{y_of(value):.2f}" '
                f'width="{bar_w:.2f}" height="{(y_of(0) - y_of(value)):.2f}" '
                f'fill="{bar_color}"/>'
            )
    for index, marker in enumerate(plot.markers):
        parts.append(
            _marker_svg(marker, PALETTE[index % len(PALETTE)], plot, x_of, y_of)
        )
    parts.append(
        f'<text x="{width - 12}" y="{height - 8}" font-size="10" '
        f'text-anchor="end" font-family="sans-serif">'
        f"{len(plot.order)} vertices</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)


def dual_view_svg(plots: DualViewPlots, *, width: int = 900) -> str:
    """Render a linked dual-view pair (plot(a) above plot(b)) as one SVG."""
    panel_height = 250
    total_height = panel_height * 2 + 16
    top = density_plot_svg(plots.before, width=width, height=panel_height)
    bottom = density_plot_svg(plots.after, width=width, height=panel_height)
    # Strip the outer <svg> wrappers and restack.
    top_body = top.split("\n", 2)[2].rsplit("</svg>", 1)[0]
    bottom_body = bottom.split("\n", 2)[2].rsplit("</svg>", 1)[0]
    return "\n".join(
        [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{total_height}" viewBox="0 0 {width} {total_height}">',
            f'<rect width="{width}" height="{total_height}" fill="white"/>',
            "<g>",
            top_body,
            "</g>",
            f'<g transform="translate(0,{panel_height + 16})">',
            bottom_body,
            "</g>",
            "</svg>",
        ]
    )


def save_svg(svg: str, path: str) -> None:
    """Write an SVG string to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg)


def graph_drawing_svg(
    graph,
    *,
    width: int = 500,
    height: int = 500,
    highlight_edges: Optional[Sequence] = None,
    vertex_colors: Optional[dict] = None,
) -> str:
    """Draw a small graph (circular layout) — used for clique close-ups.

    The paper's Figures 7/8(c-e)/12(b) zoom into individual cliques; for
    graphs of a few dozen vertices a circular layout with highlighted edges
    is sufficient and keeps us dependency-free.
    """
    import math

    from ..graph.edge import canonical_edge

    vertices = sorted(graph.vertices(), key=repr)
    n = max(len(vertices), 1)
    cx, cy = width / 2, height / 2
    radius = min(width, height) / 2 - 50
    pos = {
        v: (
            cx + radius * math.cos(2 * math.pi * i / n - math.pi / 2),
            cy + radius * math.sin(2 * math.pi * i / n - math.pi / 2),
        )
        for i, v in enumerate(vertices)
    }
    highlighted = {canonical_edge(u, v) for u, v in (highlight_edges or [])}
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for u, v in graph.edges():
        x1, y1 = pos[u]
        x2, y2 = pos[v]
        color = "#c62828" if canonical_edge(u, v) in highlighted else "#90a4ae"
        w = 2.0 if canonical_edge(u, v) in highlighted else 1.0
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{color}" stroke-width="{w}"/>'
        )
    for v in vertices:
        x, y = pos[v]
        fill = (vertex_colors or {}).get(v, "#37474f")
        parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="5" fill="{fill}"/>')
        parts.append(
            f'<text x="{x:.1f}" y="{y - 8:.1f}" font-size="9" '
            f'text-anchor="middle" font-family="sans-serif">{_escape(v)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
