"""Exception hierarchy for the Triangle K-Core library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish specific failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class GraphError(ReproError):
    """Base class for graph-structure errors."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex referenced by an operation does not exist in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by an operation does not exist in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class EdgeExistsError(GraphError, ValueError):
    """An edge being added is already present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is already in the graph")
        self.u = u
        self.v = v


class SelfLoopError(GraphError, ValueError):
    """Self loops are not meaningful for triangle analysis and are rejected."""

    def __init__(self, vertex: object) -> None:
        super().__init__(
            f"self loop on vertex {vertex!r} rejected: Triangle K-Cores are "
            "defined on simple undirected graphs"
        )
        self.vertex = vertex


class BackendError(ReproError):
    """A decomposition backend failed mechanically (not algorithmically).

    Raised by the ``parallel`` backend when a worker process dies or the
    pool cannot be created, and by the ``external`` backend when its spill
    directory misbehaves (see :class:`SpillError`); the input graph is
    always left untouched and the caller can retry with an in-process
    backend (``csr``/``reference``) or ``workers=1``.
    """


class SpillError(BackendError):
    """An on-disk spill artifact could not be read or failed validation.

    Raised by :mod:`repro.fast.external` for missing/truncated column
    files, checksum mismatches, manifest format-version mismatches, or a
    spill directory that vanished mid-run — instead of surfacing raw
    ``OSError`` / ``json.JSONDecodeError``.  ``path`` names the offending
    file or directory (mirrors :class:`PersistenceError`).
    """

    def __init__(self, path: object, message: str) -> None:
        super().__init__(f"{path}: {message}")
        self.path = str(path)


class DecompositionError(ReproError):
    """The decomposition state is inconsistent with the underlying graph."""


class PersistenceError(DecompositionError):
    """A persisted artifact could not be read or failed validation.

    Raised by :func:`repro.core.persistence.load_result` for truncated,
    corrupt, or schema-violating files instead of surfacing raw
    ``json.JSONDecodeError`` / ``KeyError``.  ``path`` names the offending
    file.
    """

    def __init__(self, path: object, message: str) -> None:
        super().__init__(f"{path}: {message}")
        self.path = str(path)


class StaleIndexError(DecompositionError):
    """A decomposition index was queried after its graph changed under it.

    Raised by :class:`repro.core.dynamic.DynamicTriangleKCore` when the caller
    mutated the graph directly instead of going through the maintainer's
    ``add_edge`` / ``remove_edge`` API.
    """


class TemplateError(ReproError):
    """A template-pattern specification is invalid or cannot be evaluated."""


class DatasetError(ReproError):
    """A named dataset could not be generated or loaded."""


class ValidationError(ReproError):
    """An invariant check failed (see :mod:`repro.core.validate`)."""


class WorkspaceError(ReproError):
    """An interactive-workspace command is invalid or cannot be executed.

    Raised by :mod:`repro.workspace` for unknown names, duplicate names,
    malformed shell commands, and remote commands issued while no service
    connection is active.  The shell catches these (like every other
    :class:`ReproError`) and prints a deterministic ``error:`` line
    instead of aborting the session.
    """
