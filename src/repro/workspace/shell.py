"""The ``triangle-kcore shell`` driver: REPL, scripts, and replay.

Three entry modes, all sharing one :class:`ShellContext`:

* **interactive / piped** — read command lines from stdin (a prompt is
  printed only when stdin is a tty, so piped scripts stay clean);
* **``--script FILE``** — read command lines from a file;
* **``--replay SESSION.json``** — re-execute a saved session log and
  assert every command's output is byte-for-byte identical to the
  recording (exit 1 on any mismatch).

Output discipline: each executed command's output lines go to stdout;
replay mismatch diagnostics go to stderr, so a ``--stats`` JSON object
is always the last stdout line (the same contract every other
stats-bearing subcommand obeys).
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Optional, TextIO, Tuple

from ..exceptions import WorkspaceError
from .commands import ShellContext, execute
from .log import SessionLog
from .session import Workspace

PROMPT = "tk> "


def parse_connect_override(text: Optional[str]) -> Optional[Tuple[str, int]]:
    """Parse a ``HOST:PORT`` override (the ``shell --connect`` flag)."""
    if text is None:
        return None
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise WorkspaceError(
            f"--connect expects HOST:PORT, got {text!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise WorkspaceError(
            f"--connect expects an integer port, got {port!r}"
        )


def run_lines(
    ctx: ShellContext,
    lines: Iterable[str],
    *,
    out: TextIO,
    prompt: bool = False,
) -> None:
    """Execute command lines until exhausted or an ``exit`` command."""
    if prompt:
        out.write(PROMPT)
        out.flush()
    for line in lines:
        output = execute(ctx, line)
        if output:
            for text in output:
                out.write(text + "\n")
        if ctx.done:
            break
        if prompt:
            out.write(PROMPT)
            out.flush()


def replay_session(
    ctx: ShellContext,
    path: str,
    *,
    out: TextIO,
    err: TextIO,
) -> int:
    """Re-execute a saved session; returns the number of mismatches.

    Every command's live output is printed to ``out`` (so a clean
    replay's stdout reproduces the original session's answers), and
    compared byte-for-byte against the recorded output; differences are
    reported on ``err``.
    """
    log = SessionLog.load(path)
    mismatches = 0
    for index, entry in enumerate(log.entries):
        line = str(entry["line"])
        expected = list(entry["output"])
        output = execute(ctx, line)
        actual = list(output) if output is not None else []
        for text in actual:
            out.write(text + "\n")
        if actual != expected:
            mismatches += 1
            err.write(
                f"replay mismatch at command {index} ({line!r}):\n"
                f"  expected: {expected!r}\n"
                f"  actual:   {actual!r}\n"
            )
        if ctx.done:
            break
    if mismatches:
        err.write(
            f"{mismatches} of {len(log.entries)} command(s) diverged\n"
        )
    return mismatches


def run_shell(
    workspace: Workspace,
    *,
    script: Optional[str] = None,
    replay: Optional[str] = None,
    save: Optional[str] = None,
    connect: Optional[str] = None,
    stdin: Optional[TextIO] = None,
    out: Optional[TextIO] = None,
    err: Optional[TextIO] = None,
) -> int:
    """Drive one shell session end to end; returns the exit code."""
    stdin = stdin if stdin is not None else sys.stdin
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    ctx = ShellContext(
        workspace=workspace,
        connect_override=parse_connect_override(connect),
    )
    exit_code = 0
    if replay is not None:
        if replay_session(ctx, replay, out=out, err=err):
            exit_code = 1
    elif script is not None:
        with open(script, "r", encoding="utf-8") as handle:
            run_lines(ctx, handle, out=out)
    else:
        interactive = hasattr(stdin, "isatty") and stdin.isatty()
        run_lines(ctx, stdin, out=out, prompt=interactive)
    if save is not None:
        SessionLog(entries=list(ctx.log)).save(save)
    return exit_code


def session_log_of(ctx: ShellContext) -> SessionLog:
    """The context's live log as a saveable :class:`SessionLog`."""
    return SessionLog(entries=list(ctx.log))


__all__: List[str] = [
    "PROMPT",
    "parse_connect_override",
    "replay_session",
    "run_lines",
    "run_shell",
    "session_log_of",
]
