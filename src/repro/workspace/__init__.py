"""Interactive multi-graph workspace: named graphs, live views, replay.

The analyst-facing interaction layer over everything the library builds:

* :class:`Workspace` — a session holding multiple named graphs (from
  datasets, edge-list files, CSV adjacency matrices, or generators) and
  named subgraph :class:`View` recipes over them (community extractions,
  κ≥k slices, template hits, explicit vertex sets), all analyzed through
  one shared warm :class:`~repro.engine.Engine`;
* :mod:`~repro.workspace.commands` — the deterministic line-in/lines-out
  command dispatcher behind the ``triangle-kcore shell`` REPL;
* :class:`SessionLog` — the ``repro.workspace-session/1`` JSON record
  every command appends to, re-executed byte-for-byte by
  ``shell --replay``;
* :mod:`~repro.workspace.shell` — the REPL / script / replay driver.

See docs/WORKSPACE.md for the command reference and view semantics.
"""

from .commands import ShellContext, execute
from .log import SESSION_SCHEMA, SessionLog
from .session import Workspace
from .shell import replay_session, run_lines, run_shell
from .views import VIEW_KINDS, View

__all__ = [
    "SESSION_SCHEMA",
    "SessionLog",
    "ShellContext",
    "VIEW_KINDS",
    "View",
    "Workspace",
    "execute",
    "replay_session",
    "run_lines",
    "run_shell",
]
