"""Session logs: the JSON record replayed by ``shell --replay``.

Format (``repro.workspace-session/1``)::

    {
      "format": "repro.workspace-session/1",
      "commands": [
        {"line": "load g karate", "output": ["graph g: |V|=34 |E|=78"]},
        ...
      ]
    }

``commands[i].line`` is the exact command as typed and
``commands[i].output`` the exact lines it printed.  Because command
output is deterministic (no timings/ports/uptimes — see
:mod:`repro.workspace.commands`), re-executing the lines against a
fresh workspace must reproduce every output byte-for-byte; ``--replay``
asserts exactly that, which is the shell's script-in/answers-out CI
contract (the same shape the fuzz harness's repro bundles use).

Malformed files raise the library's typed
:class:`~repro.exceptions.PersistenceError` carrying the path.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Union

from ..exceptions import PersistenceError

PathLike = Union[str, os.PathLike]

#: Format tag of the session-log payload; bump on schema changes.
SESSION_SCHEMA = "repro.workspace-session/1"


@dataclass
class SessionLog:
    """An ordered list of ``{"line": ..., "output": [...]}`` entries."""

    entries: List[Dict[str, object]] = field(default_factory=list)

    def record(self, line: str, output: List[str]) -> None:
        self.entries.append({"line": line, "output": list(output)})

    def to_json_obj(self) -> Dict[str, object]:
        return {"format": SESSION_SCHEMA, "commands": list(self.entries)}

    def save(self, path: PathLike) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json_obj(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: PathLike) -> "SessionLog":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise PersistenceError(path, f"cannot read session log: {exc}")
        except json.JSONDecodeError as exc:
            raise PersistenceError(path, f"invalid JSON: {exc}")
        if not isinstance(payload, dict):
            raise PersistenceError(path, "session log must be a JSON object")
        if payload.get("format") != SESSION_SCHEMA:
            raise PersistenceError(
                path,
                f"unsupported session format {payload.get('format')!r} "
                f"(expected {SESSION_SCHEMA!r})",
            )
        commands = payload.get("commands")
        if not isinstance(commands, list):
            raise PersistenceError(path, "'commands' must be a list")
        entries: List[Dict[str, object]] = []
        for index, entry in enumerate(commands):
            if (
                not isinstance(entry, dict)
                or not isinstance(entry.get("line"), str)
                or not isinstance(entry.get("output"), list)
                or not all(isinstance(s, str) for s in entry["output"])
            ):
                raise PersistenceError(
                    path,
                    f"commands[{index}] must be "
                    "{'line': str, 'output': [str, ...]}",
                )
            entries.append(
                {"line": entry["line"], "output": list(entry["output"])}
            )
        return cls(entries=entries)
