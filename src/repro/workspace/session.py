"""The :class:`Workspace`: named graphs + named views over one warm engine.

A workspace is the in-memory state behind the ``triangle-kcore shell``
REPL: a dictionary of named graphs, a dictionary of named
:class:`~repro.workspace.views.View` recipes over them, one shared
:class:`~repro.engine.Engine` every analysis routes through (so repeated
analyses on an unchanged graph or view hit the version-keyed artifact
cache), an optional live :class:`~repro.service.client.ServiceClient`
(the shell's front-end to the service tier), and per-graph warm
:class:`~repro.core.dynamic.DynamicTriangleKCore` maintainers that edits
are applied through.

Every mutation reports into the engine's ``workspace`` stats section
(``repro.engine.stats/6``), so one ``--stats`` payload tells the whole
story of a session.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core import DynamicTriangleKCore, TriangleKCoreResult
from ..engine import Engine
from ..exceptions import WorkspaceError
from ..graph.edge import Vertex
from ..graph.undirected import Graph
from ..testing.editscript import EditOp
from .views import VIEW_KINDS, View

#: Graph/view names must be shell-token friendly.
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.-]*$")


class Workspace:
    """A session holding named graphs and named views over one engine."""

    def __init__(
        self,
        *,
        engine: Optional[Engine] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.engine = engine if engine is not None else Engine()
        #: Per-analysis backend override (``None`` = engine default).
        self.backend = backend
        self.graphs: Dict[str, Graph] = {}
        self.views: Dict[str, View] = {}
        self._maintainers: Dict[str, DynamicTriangleKCore] = {}
        self.client: Optional[object] = None
        self._record()  # initialize the gauges so the section always exists

    # ------------------------------------------------------------------ #
    # stats plumbing
    # ------------------------------------------------------------------ #

    def _record(self, **deltas: int) -> None:
        self.engine.stats.record_workspace(
            graphs=len(self.graphs), views=len(self.views), **deltas
        )

    def note_command(self) -> None:
        """Count one executed shell command (called by the dispatcher)."""
        self._record(commands=1)

    # ------------------------------------------------------------------ #
    # graphs
    # ------------------------------------------------------------------ #

    def _check_new_name(self, name: str) -> None:
        if not _NAME_RE.match(name):
            raise WorkspaceError(
                f"invalid name {name!r}: names match [A-Za-z_][A-Za-z0-9_.-]*"
            )
        if name in self.graphs:
            raise WorkspaceError(f"name {name!r} is already a graph")
        if name in self.views:
            raise WorkspaceError(f"name {name!r} is already a view")

    def add_graph(self, name: str, graph: Graph) -> Graph:
        """Register ``graph`` under ``name`` (names are workspace-unique)."""
        self._check_new_name(name)
        self.graphs[name] = graph
        self._record()
        return graph

    def load(self, name: str, spec: str) -> Graph:
        """Load a graph from a dataset name, edge-list path, or ``.csv``.

        ``.csv`` paths go through the adjacency-matrix importer
        (:func:`repro.graph.io.read_adjacency_csv`); anything else is a
        built-in dataset name or an edge-list file.
        """
        from ..datasets import load as load_dataset
        from ..datasets import names as dataset_names
        from ..graph.io import read_adjacency_csv, read_edge_list

        self._check_new_name(name)
        if spec in dataset_names():
            graph = load_dataset(spec).graph
        elif str(spec).endswith(".csv"):
            graph = read_adjacency_csv(spec)
        else:
            graph = read_edge_list(spec)
        return self.add_graph(name, graph)

    def graph_of(self, name: str) -> Graph:
        try:
            return self.graphs[name]
        except KeyError:
            raise WorkspaceError(f"no graph named {name!r}") from None

    def drop(self, name: str) -> Tuple[str, int]:
        """Drop a graph (cascading to its views) or a single view.

        Returns ``(kind, n_dependent_views_dropped)``.
        """
        if name in self.graphs:
            dependents = [
                v.name for v in self.views.values() if v.graph_name == name
            ]
            invalidated = sum(
                1 for d in dependents if not self.views[d].stale
            )
            for dependent in dependents:
                del self.views[dependent]
            del self.graphs[name]
            self._maintainers.pop(name, None)
            self._record(view_invalidations=invalidated)
            return ("graph", len(dependents))
        if name in self.views:
            del self.views[name]
            self._record()
            return ("view", 0)
        raise WorkspaceError(f"no graph or view named {name!r}")

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    def create_view(
        self,
        name: str,
        kind: str,
        graph_name: str,
        params: Dict[str, object],
    ) -> View:
        """Create a view and derive its membership immediately."""
        self._check_new_name(name)
        if kind not in VIEW_KINDS:
            raise WorkspaceError(
                f"unknown view kind {kind!r} (expected one of "
                f"{', '.join(VIEW_KINDS)})"
            )
        graph = self.graph_of(graph_name)
        view = View(name=name, kind=kind, graph_name=graph_name,
                    params=dict(params))
        if kind == "template":
            # The "old" side of the template detection is the backing
            # graph frozen at view-creation time.
            view.baseline = graph.copy()
        self._derive(view)
        self.views[name] = view
        self._record(views_created=1)
        return view

    def view_of(self, name: str) -> View:
        try:
            return self.views[name]
        except KeyError:
            raise WorkspaceError(f"no view named {name!r}") from None

    def _derive(self, view: View) -> None:
        """(Re-)evaluate the view's recipe against the current graph."""
        graph = self.graph_of(view.graph_name)
        members: Set[Vertex]
        if view.kind == "community":
            from ..core import CommunityIndex

            vertex = view.params["vertex"]
            if not graph.has_vertex(vertex):
                raise WorkspaceError(
                    f"view {view.name!r}: vertex {vertex!r} is not in "
                    f"graph {view.graph_name!r}"
                )
            index = CommunityIndex(
                graph, backend=self.backend, engine=self.engine
            )
            k = view.params.get("k")
            if k is None:
                _, members = index.densest_community_of_vertex(vertex)
            else:
                members = set()
                for community in index.community_of_vertex(vertex, int(k)):
                    members |= community
        elif view.kind == "slice":
            from ..core import vertex_set_of_edges

            result = self.engine.decompose(graph, backend=self.backend)
            members = vertex_set_of_edges(
                set(result.edges_with_kappa_at_least(int(view.params["k"])))
            )
        elif view.kind == "template":
            from ..templates import BUILTIN_TEMPLATES, detect_on_snapshots

            pattern = str(view.params["pattern"])
            if pattern not in BUILTIN_TEMPLATES:
                raise WorkspaceError(
                    f"unknown template pattern {pattern!r} (expected one "
                    f"of {', '.join(sorted(BUILTIN_TEMPLATES))})"
                )
            detection = detect_on_snapshots(
                view.baseline,
                graph,
                BUILTIN_TEMPLATES[pattern],
                backend=self.backend,
                engine=self.engine,
            )
            members = set()
            for _, clique in detection.densest_cliques():
                members |= set(clique)
            members &= set(graph.vertices())
        elif view.kind == "vertices":
            requested = view.params["vertices"]
            members = {v for v in requested if graph.has_vertex(v)}
        else:  # pragma: no cover - guarded by create_view
            raise WorkspaceError(f"unknown view kind {view.kind!r}")
        was_stale_rederive = view.derived_at >= 0
        view.vertices = tuple(sorted(members, key=repr))
        view.derived_at = graph.version
        view.stale = False
        if was_stale_rederive:
            self._record(view_refreshes=1)

    def refresh_view(self, name: str) -> View:
        """Force re-derivation of a view against the current graph."""
        view = self.view_of(name)
        view.invalidate()
        self._derive(view)
        return view

    def view_subgraph(self, name: str) -> Graph:
        """The view's induced subgraph, derived/materialized as needed.

        The subgraph object is cached per backing-graph version, so
        repeated analyses on an unchanged view analyze the *same* graph
        object and hit the engine's version-keyed artifact cache.
        """
        view = self.view_of(name)
        graph = self.graph_of(view.graph_name)
        if view.stale:
            self._derive(view)
        cached = view.cached_subgraph(graph.version)
        if cached is not None:
            return cached
        subgraph = graph.subgraph(view.vertices)
        view.cache_subgraph(subgraph, graph.version)
        self._record(materializations=1)
        return subgraph

    # ------------------------------------------------------------------ #
    # analysis targets
    # ------------------------------------------------------------------ #

    def resolve(self, target: str) -> Graph:
        """A graph or the materialized subgraph of a view, by name."""
        if target in self.graphs:
            return self.graphs[target]
        if target in self.views:
            return self.view_subgraph(target)
        raise WorkspaceError(f"no graph or view named {target!r}")

    def decompose(self, target: str) -> TriangleKCoreResult:
        """Run the triangle k-core decomposition scoped to ``target``."""
        return self.engine.decompose(self.resolve(target),
                                     backend=self.backend)

    # ------------------------------------------------------------------ #
    # edits (through the warm dynamic maintainer)
    # ------------------------------------------------------------------ #

    def _maintainer(self, name: str) -> DynamicTriangleKCore:
        graph = self.graph_of(name)
        maintainer = self._maintainers.get(name)
        if maintainer is None or maintainer.graph is not graph:
            maintainer = self.engine.maintainer(graph, copy=False)
            self._maintainers[name] = maintainer
        return maintainer

    def edit(self, name: str, ops: Sequence[EditOp]) -> Tuple[int, int, int]:
        """Apply an edit script to graph ``name`` via its maintainer.

        Total semantics (like the fuzz harness): inapplicable ops —
        duplicate adds, removals of absent edges/vertices, self loops —
        are skipped, not errors.  Dependent views are invalidated.
        Returns ``(applied, skipped, max_kappa_after)``.
        """
        graph = self.graph_of(name)
        maintainer = self._maintainer(name)
        applied = skipped = 0
        for op in ops:
            if op.kind == "add":
                if op.u == op.v or graph.has_edge(op.u, op.v):
                    skipped += 1
                    continue
                maintainer.add_edge(op.u, op.v)
            elif op.kind == "remove":
                if not graph.has_edge(op.u, op.v):
                    skipped += 1
                    continue
                maintainer.remove_edge(op.u, op.v)
            elif op.kind == "add_vertex":
                if graph.has_vertex(op.u):
                    skipped += 1
                    continue
                maintainer.add_vertex(op.u)
            elif op.kind == "remove_vertex":
                if not graph.has_vertex(op.u):
                    skipped += 1
                    continue
                maintainer.remove_vertex(op.u)
            else:
                raise WorkspaceError(f"unknown edit op kind {op.kind!r}")
            applied += 1
        invalidated = 0
        if applied:
            for view in self.views.values():
                if view.graph_name == name and not view.stale:
                    view.invalidate()
                    invalidated += 1
        self._record(view_invalidations=invalidated)
        return applied, skipped, maintainer.max_kappa

    # ------------------------------------------------------------------ #
    # service front-end
    # ------------------------------------------------------------------ #

    def connect(self, host: str, port: int):
        """Attach a live :class:`ServiceClient` and health-check it."""
        from ..service.client import ServiceClient

        client = ServiceClient(host, int(port))
        info = client.healthz()
        self.client = client
        return info

    def disconnect(self) -> bool:
        """Detach the service client; returns whether one was attached."""
        was_connected = self.client is not None
        self.client = None
        return was_connected

    def require_client(self):
        if self.client is None:
            raise WorkspaceError(
                "not connected to a service (use: connect <host> <port>)"
            )
        return self.client

    # ------------------------------------------------------------------ #
    # listings
    # ------------------------------------------------------------------ #

    def describe_graphs(self) -> List[str]:
        if not self.graphs:
            return ["no graphs"]
        return [
            f"{name}: |V|={g.num_vertices} |E|={g.num_edges}"
            for name, g in sorted(self.graphs.items())
        ]

    def describe_views(self) -> List[str]:
        if not self.views:
            return ["no views"]
        return [view.describe() for _, view in sorted(self.views.items())]
