"""Named subgraph views: recipes over a backing workspace graph.

A :class:`View` is *not* a copy of a subgraph — it is a named **recipe**
(community extraction, κ≥k slice, template hits, or an explicit vertex
set) over one backing graph, plus the cached result of evaluating that
recipe.  The workspace evaluates recipes lazily and re-materializes the
induced subgraph at most once per backing-graph version, so repeated
view-scoped analyses hit the engine's version-keyed artifact cache.

Liveness contract (see docs/WORKSPACE.md):

* editing the backing graph marks every dependent view **stale**;
* a stale *recipe* view (``community`` / ``slice`` / ``template``) is
  re-derived from the current graph the next time it is used;
* a stale ``vertices`` view keeps its explicit vertex list and simply
  re-materializes it intersected with the vertices still alive;
* dropping the backing graph drops its views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..graph.edge import Vertex
from ..graph.undirected import Graph

#: The recipe kinds a view can carry.
VIEW_KINDS = ("community", "slice", "template", "vertices")


@dataclass
class View:
    """One named subgraph recipe plus its cached evaluation.

    ``vertices`` / ``derived_at`` / ``stale`` are maintained by the
    owning :class:`~repro.workspace.session.Workspace`; ``baseline`` is
    only set for ``template`` views (the backing graph snapshotted at
    view creation, the "old" side of the template detection).
    """

    name: str
    kind: str
    graph_name: str
    params: Dict[str, object]
    #: Evaluated membership, sorted by ``repr`` (deterministic).
    vertices: Tuple[Vertex, ...] = ()
    #: Backing-graph version the membership was derived at.
    derived_at: int = -1
    #: True until first derivation and after every backing-graph edit.
    stale: bool = True
    #: Template views: snapshot of the backing graph at creation time.
    baseline: Optional[Graph] = None
    #: Cached induced subgraph + the backing version it was built at.
    _materialized: Optional[Graph] = field(default=None, repr=False)
    _materialized_at: int = field(default=-1, repr=False)

    def invalidate(self) -> None:
        """Mark the cached evaluation out of date (backing graph edited)."""
        self.stale = True
        self._materialized = None
        self._materialized_at = -1

    def cached_subgraph(self, version: int) -> Optional[Graph]:
        """The materialized subgraph if still valid at ``version``."""
        if self._materialized is not None and self._materialized_at == version:
            return self._materialized
        return None

    def cache_subgraph(self, subgraph: Graph, version: int) -> None:
        self._materialized = subgraph
        self._materialized_at = version

    def describe(self) -> str:
        """One deterministic summary line (used by the ``views`` command)."""
        state = "stale" if self.stale else "fresh"
        return (
            f"{self.name}: kind={self.kind} graph={self.graph_name} "
            f"|V|={len(self.vertices)} {state}"
        )
