"""Shell command parser/dispatcher: one line in, deterministic lines out.

Every command is one whitespace-tokenized line; ``execute`` returns the
command's output as a list of strings.  The contract that makes session
replay work (and the shell CI-testable without a pty) is that output is
a pure function of the workspace state and the command line: **no
timings, ports, uptimes, or wall-clock values ever appear in output**.
Errors raised by the library (:class:`~repro.exceptions.ReproError`,
including :class:`~repro.exceptions.WorkspaceError`) become
deterministic ``error: ...`` lines instead of aborting the session.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..exceptions import ReproError, WorkspaceError
from ..graph.undirected import Graph
from ..testing.editscript import EditOp
from .session import Workspace

# --------------------------------------------------------------------- #
# token parsing helpers
# --------------------------------------------------------------------- #


def _vertex(token: str) -> object:
    """Vertex tokens: int if possible, else the raw string (I/O idiom)."""
    try:
        return int(token)
    except ValueError:
        return token


def _int(token: str, what: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise WorkspaceError(f"{what} must be an integer, got {token!r}")


def _float(token: str, what: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise WorkspaceError(f"{what} must be a number, got {token!r}")


def _need(args: Sequence[str], count: int, usage: str) -> None:
    if len(args) < count:
        raise WorkspaceError(f"usage: {usage}")


def _fmt_members(members) -> str:
    return ",".join(str(v) for v in sorted(members, key=repr)) or "-"


# --------------------------------------------------------------------- #
# generator registry (the shell's ``generate`` command)
# --------------------------------------------------------------------- #

def _gen_kronecker(n: int, seed: int) -> Graph:
    from ..graph.generators import kronecker

    # Fixed canonical 2x2 initiator; ``n`` is the iteration count.
    return kronecker([[0.9, 0.5], [0.5, 0.3]], n, seed=seed)


def _gen_configuration(n: int, seed: int) -> Graph:
    from ..graph.generators import configuration_model

    # Decreasing heavy-tail-ish sequence over ``n`` vertices, padded even.
    degrees = [max(2, n // (rank + 1)) for rank in range(n)]
    if sum(degrees) % 2 != 0:
        degrees[-1] += 1
    return configuration_model(degrees, seed=seed)


def _generators() -> Dict[str, Callable[..., Graph]]:
    from ..graph import generators as g

    return {
        "erdos_renyi": lambda a, seed: g.erdos_renyi(
            _int(a[0], "n"), _float(a[1], "p"), seed=seed
        ),
        "barabasi_albert": lambda a, seed: g.barabasi_albert(
            _int(a[0], "n"), _int(a[1], "m"), seed=seed
        ),
        "watts_strogatz": lambda a, seed: g.watts_strogatz(
            _int(a[0], "n"), _int(a[1], "k"), _float(a[2], "p"), seed=seed
        ),
        "rmat": lambda a, seed: g.rmat(
            _int(a[0], "scale"), _int(a[1], "edge_factor"), seed=seed
        ),
        "powerlaw_cluster": lambda a, seed: g.powerlaw_cluster(
            _int(a[0], "n"), _int(a[1], "m"), _float(a[2], "p_triad"),
            seed=seed,
        ),
        "relaxed_caveman": lambda a, seed: g.relaxed_caveman(
            _int(a[0], "communities"), _int(a[1], "size"),
            _float(a[2], "rewire_p"), seed=seed,
        ),
        "kronecker": lambda a, seed: _gen_kronecker(
            _int(a[0], "iterations"), seed
        ),
        "configuration_model": lambda a, seed: _gen_configuration(
            _int(a[0], "n"), seed
        ),
    }


#: arity (positional args before the optional seed) per generator.
_GEN_ARITY = {
    "erdos_renyi": 2, "barabasi_albert": 2, "watts_strogatz": 3,
    "rmat": 2, "powerlaw_cluster": 3, "relaxed_caveman": 3,
    "kronecker": 1, "configuration_model": 1,
}


# --------------------------------------------------------------------- #
# execution context
# --------------------------------------------------------------------- #


@dataclass
class ShellContext:
    """Mutable state the dispatcher threads through command handlers."""

    workspace: Workspace
    #: Recorded ``(line, output)`` pairs (the live session log).
    log: List[Dict[str, object]] = field(default_factory=list)
    #: ``(host, port)`` override applied to ``connect`` commands — lets
    #: ``shell --replay`` target a freshly started server on a different
    #: port while replaying the original, byte-identical session lines.
    connect_override: Optional[tuple] = None
    #: Set by the ``exit`` / ``quit`` commands.
    done: bool = False


# --------------------------------------------------------------------- #
# command handlers — each returns the output lines
# --------------------------------------------------------------------- #


def _cmd_help(ctx: ShellContext, args: List[str]) -> List[str]:
    return [
        "commands:",
        "  load <name> <dataset|edges-path|csv-path>",
        "  import <name> <adjacency.csv>",
        "  generate <name> <generator> <args...> [seed]",
        "    generators: " + " ".join(sorted(_GEN_ARITY)),
        "  graphs | views",
        "  view community <name> <graph> <vertex> [k]",
        "  view slice <name> <graph> <k>",
        "  view template <name> <graph> <pattern>",
        "  view vertices <name> <graph> <v...>",
        "  refresh <view> | drop <name>",
        "  run decompose|communities|hierarchy|maxcore|robustness|plot"
        " <target> [args]",
        "  run templates <old> <new> <pattern>",
        "  edit <graph> add|remove <u> <v>",
        "  edit <graph> addv|removev <v>",
        "  connect <host> <port> | disconnect",
        "  remote kappa|community|hierarchy|templates|edit <args...>",
        "  save <path> | exit",
    ]


def _describe_graph(name: str, graph: Graph) -> str:
    return f"graph {name}: |V|={graph.num_vertices} |E|={graph.num_edges}"


def _cmd_load(ctx: ShellContext, args: List[str]) -> List[str]:
    _need(args, 2, "load <name> <dataset|edges-path|csv-path>")
    graph = ctx.workspace.load(args[0], args[1])
    return [_describe_graph(args[0], graph)]


def _cmd_import(ctx: ShellContext, args: List[str]) -> List[str]:
    from ..graph.io import read_adjacency_csv

    _need(args, 2, "import <name> <adjacency.csv>")
    graph = ctx.workspace.add_graph(args[0], read_adjacency_csv(args[1]))
    return [_describe_graph(args[0], graph)]


def _cmd_generate(ctx: ShellContext, args: List[str]) -> List[str]:
    _need(args, 2, "generate <name> <generator> <args...> [seed]")
    name, gen_name, rest = args[0], args[1], args[2:]
    registry = _generators()
    if gen_name not in registry:
        raise WorkspaceError(
            f"unknown generator {gen_name!r} (expected one of "
            f"{', '.join(sorted(registry))})"
        )
    arity = _GEN_ARITY[gen_name]
    if len(rest) < arity or len(rest) > arity + 1:
        raise WorkspaceError(
            f"generate {gen_name}: expected {arity} argument(s) plus an "
            f"optional seed, got {len(rest)}"
        )
    seed = _int(rest[arity], "seed") if len(rest) > arity else 0
    ctx.workspace._check_new_name(name)
    graph = registry[gen_name](rest, seed)
    ctx.workspace.add_graph(name, graph)
    return [_describe_graph(name, graph)]


def _cmd_graphs(ctx: ShellContext, args: List[str]) -> List[str]:
    return ctx.workspace.describe_graphs()


def _cmd_views(ctx: ShellContext, args: List[str]) -> List[str]:
    return ctx.workspace.describe_views()


def _cmd_view(ctx: ShellContext, args: List[str]) -> List[str]:
    _need(args, 3, "view <kind> <name> <graph> <args...>")
    kind, name, graph_name, rest = args[0], args[1], args[2], args[3:]
    ws = ctx.workspace
    if kind == "community":
        _need(rest, 1, "view community <name> <graph> <vertex> [k]")
        params: Dict[str, object] = {"vertex": _vertex(rest[0])}
        if len(rest) > 1:
            params["k"] = _int(rest[1], "k")
    elif kind == "slice":
        _need(rest, 1, "view slice <name> <graph> <k>")
        params = {"k": _int(rest[0], "k")}
    elif kind == "template":
        _need(rest, 1, "view template <name> <graph> <pattern>")
        params = {"pattern": rest[0]}
    elif kind == "vertices":
        _need(rest, 1, "view vertices <name> <graph> <v...>")
        params = {"vertices": tuple(_vertex(t) for t in rest)}
    else:
        raise WorkspaceError(
            f"unknown view kind {kind!r} (expected community, slice, "
            "template, or vertices)"
        )
    view = ws.create_view(name, kind, graph_name, params)
    return [
        f"view {name}: kind={kind} graph={graph_name} "
        f"|V|={len(view.vertices)}"
    ]


def _cmd_refresh(ctx: ShellContext, args: List[str]) -> List[str]:
    _need(args, 1, "refresh <view>")
    view = ctx.workspace.refresh_view(args[0])
    return [f"view {args[0]}: refreshed |V|={len(view.vertices)}"]


def _cmd_drop(ctx: ShellContext, args: List[str]) -> List[str]:
    _need(args, 1, "drop <name>")
    kind, dependents = ctx.workspace.drop(args[0])
    if kind == "graph":
        return [f"dropped graph {args[0]} ({dependents} dependent view(s))"]
    return [f"dropped view {args[0]}"]


def _cmd_run(ctx: ShellContext, args: List[str]) -> List[str]:
    _need(args, 2, "run <analysis> <target> [args]")
    analysis, rest = args[0], args[1:]
    ws = ctx.workspace
    if analysis == "decompose":
        target = rest[0]
        graph = ws.resolve(target)
        result = ws.engine.decompose(graph, backend=ws.backend)
        histogram = " ".join(
            f"{k}:{n}" for k, n in sorted(result.histogram().items())
        )
        return [
            f"decompose {target}: |V|={graph.num_vertices} "
            f"|E|={graph.num_edges} max_kappa={result.max_kappa}",
            f"histogram: {histogram or '-'}",
        ]
    if analysis == "communities":
        _need(rest, 2, "run communities <target> <vertex> [k]")
        from ..core import CommunityIndex

        target, vertex = rest[0], _vertex(rest[1])
        graph = ws.resolve(target)
        if not graph.has_vertex(vertex):
            raise WorkspaceError(
                f"vertex {vertex!r} is not in {target!r}"
            )
        index = CommunityIndex(graph, backend=ws.backend, engine=ws.engine)
        if len(rest) > 2:
            k = _int(rest[2], "k")
            communities = index.community_of_vertex(vertex, k)
            lines = [
                f"communities of {vertex} at k={k} in {target}: "
                f"{len(communities)}"
            ]
            for i, community in enumerate(
                sorted(communities, key=lambda c: sorted(c, key=repr))
            ):
                lines.append(f"  [{i}] {_fmt_members(community)}")
            return lines
        level, members = index.densest_community_of_vertex(vertex)
        return [
            f"densest community of {vertex} in {target}: level={level} "
            f"members={_fmt_members(members)}"
        ]
    if analysis == "hierarchy":
        from ..core import CommunityHierarchy

        target = rest[0]
        hierarchy = CommunityHierarchy(
            ws.resolve(target), backend=ws.backend, engine=ws.engine
        )
        return [f"hierarchy {target}:"] + hierarchy.ascii_tree().splitlines()
    if analysis == "maxcore":
        from ..core import max_triangle_kcore

        target = rest[0]
        k, subgraph = max_triangle_kcore(ws.resolve(target))
        return [
            f"maxcore {target}: k={k} |V|={subgraph.num_vertices} "
            f"|E|={subgraph.num_edges}"
        ]
    if analysis == "robustness":
        from ..analysis.robustness import robustness_report

        target = rest[0]
        fraction = _float(rest[1], "fraction") if len(rest) > 1 else 0.1
        trials = _int(rest[2], "trials") if len(rest) > 2 else 1
        report = robustness_report(
            ws.resolve(target),
            fractions=(fraction,),
            trials_per_fraction=trials,
            seed=0,
            backend=ws.backend,
            engine=ws.engine,
        )
        overlap = report.mean_core_overlap(fraction)
        kappa_after = report.mean_core_kappa_after(fraction)
        breakdown = report.breakdown_fraction()
        return [
            f"robustness {target}: fraction={fraction:g} "
            f"overlap={overlap:.4f} kappa_after={kappa_after:.4f} "
            f"breakdown={breakdown:g}"
        ]
    if analysis == "templates":
        _need(rest, 3, "run templates <old> <new> <pattern>")
        from ..templates import BUILTIN_TEMPLATES, detect_on_snapshots

        old_name, new_name, pattern = rest[0], rest[1], rest[2]
        if pattern not in BUILTIN_TEMPLATES:
            raise WorkspaceError(
                f"unknown template pattern {pattern!r} (expected one of "
                f"{', '.join(sorted(BUILTIN_TEMPLATES))})"
            )
        detection = detect_on_snapshots(
            ws.resolve(old_name),
            ws.resolve(new_name),
            BUILTIN_TEMPLATES[pattern],
            backend=ws.backend,
            engine=ws.engine,
        )
        cliques = list(detection.densest_cliques())
        return [
            f"templates {pattern} ({old_name} -> {new_name}): "
            f"cliques={len(cliques)} "
            f"max_size={detection.max_clique_size_estimate}"
        ]
    if analysis == "plot":
        from ..viz import density_plot, render

        target = rest[0]
        graph = ws.resolve(target)
        result = ws.engine.decompose(graph, backend=ws.backend)
        plot = density_plot(graph, result, title=f"workspace:{target}")
        return render(plot, height=10, width=60).splitlines()
    raise WorkspaceError(
        f"unknown analysis {analysis!r} (expected decompose, communities, "
        "hierarchy, maxcore, robustness, templates, or plot)"
    )


_EDIT_OPS = {
    "add": ("add", 2), "remove": ("remove", 2),
    "addv": ("add_vertex", 1), "removev": ("remove_vertex", 1),
}


def _cmd_edit(ctx: ShellContext, args: List[str]) -> List[str]:
    _need(args, 2, "edit <graph> <add|remove|addv|removev> <args...>")
    graph_name, verb, rest = args[0], args[1], args[2:]
    if verb not in _EDIT_OPS:
        raise WorkspaceError(
            f"unknown edit op {verb!r} (expected add, remove, addv, removev)"
        )
    kind, arity = _EDIT_OPS[verb]
    _need(rest, arity, f"edit <graph> {verb} " + " ".join(
        ("<u>", "<v>")[:arity]
    ))
    u = _vertex(rest[0])
    v = _vertex(rest[1]) if arity == 2 else None
    applied, skipped, max_kappa = ctx.workspace.edit(
        graph_name, [EditOp(kind, u, v)]
    )
    return [
        f"edit {graph_name}: applied={applied} skipped={skipped} "
        f"max_kappa={max_kappa}"
    ]


def _cmd_connect(ctx: ShellContext, args: List[str]) -> List[str]:
    _need(args, 2, "connect <host> <port>")
    host, port = args[0], _int(args[1], "port")
    if ctx.connect_override is not None:
        host, port = ctx.connect_override
    info = ctx.workspace.connect(host, port)
    # No host/port/uptime in the output: replay against a server on a
    # different port must reproduce these bytes exactly.
    return [
        f"connected: status={info.status} |V|={info.vertices} "
        f"|E|={info.edges} max_kappa={info.max_kappa}"
    ]


def _cmd_disconnect(ctx: ShellContext, args: List[str]) -> List[str]:
    if ctx.workspace.disconnect():
        return ["disconnected"]
    return ["not connected"]


def _cmd_remote(ctx: ShellContext, args: List[str]) -> List[str]:
    _need(args, 1, "remote <kappa|community|hierarchy|templates|edit> ...")
    client = ctx.workspace.require_client()
    verb, rest = args[0], args[1:]
    if verb == "kappa":
        _need(rest, 2, "remote kappa <u> <v>")
        answer = client.kappa(_vertex(rest[0]), _vertex(rest[1]))
        return [f"remote kappa({rest[0]}, {rest[1]}) = {answer.kappa}"]
    if verb == "community":
        _need(rest, 1, "remote community <vertex> [k]")
        k = _int(rest[1], "k") if len(rest) > 1 else None
        answer = client.community(_vertex(rest[0]), k)
        return [
            f"remote community of {rest[0]}: level={answer.level} "
            f"members={_fmt_members(answer.members)}"
        ]
    if verb == "hierarchy":
        answer = client.hierarchy()
        return [
            f"remote hierarchy: max_level={answer.max_level} "
            f"roots={len(answer.roots)}"
        ]
    if verb == "templates":
        _need(rest, 1, "remote templates <pattern>")
        answer = client.templates(rest[0])
        return [
            f"remote templates {rest[0]}: cliques={len(answer.cliques)}"
        ]
    if verb == "edit":
        _need(rest, 3, "remote edit <add|remove> <u> <v>")
        if rest[0] not in ("add", "remove"):
            raise WorkspaceError(
                f"unknown remote edit op {rest[0]!r} (expected add, remove)"
            )
        outcome = client.edits(
            [(rest[0], _vertex(rest[1]), _vertex(rest[2]))]
        )
        rejected = outcome.rejected
        n_rejected = (
            len(rejected) if hasattr(rejected, "__len__") else int(rejected)
        )
        return [
            f"remote edit: applied={outcome.applied} "
            f"rejected={n_rejected} max_kappa={outcome.max_kappa}"
        ]
    raise WorkspaceError(
        f"unknown remote command {verb!r} (expected kappa, community, "
        "hierarchy, templates, edit)"
    )


def _cmd_save(ctx: ShellContext, args: List[str]) -> List[str]:
    from .log import SessionLog

    _need(args, 1, "save <path>")
    log = SessionLog(entries=list(ctx.log))
    log.save(args[0])
    return [f"saved {len(ctx.log)} command(s) to {args[0]}"]


def _cmd_exit(ctx: ShellContext, args: List[str]) -> List[str]:
    ctx.done = True
    return []


_HANDLERS: Dict[str, Callable[[ShellContext, List[str]], List[str]]] = {
    "help": _cmd_help,
    "load": _cmd_load,
    "import": _cmd_import,
    "generate": _cmd_generate,
    "graphs": _cmd_graphs,
    "views": _cmd_views,
    "view": _cmd_view,
    "refresh": _cmd_refresh,
    "drop": _cmd_drop,
    "run": _cmd_run,
    "edit": _cmd_edit,
    "connect": _cmd_connect,
    "disconnect": _cmd_disconnect,
    "remote": _cmd_remote,
    "save": _cmd_save,
    "exit": _cmd_exit,
    "quit": _cmd_exit,
}


def execute(ctx: ShellContext, line: str) -> Optional[List[str]]:
    """Execute one command line; returns its output lines.

    Blank lines and ``#`` comments return ``None`` (nothing executed,
    nothing logged).  Executed commands — including ones that fail with
    an ``error:`` line — are appended to ``ctx.log``.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    try:
        tokens = shlex.split(stripped)
    except ValueError as exc:
        tokens = None
        output = [f"error: unparseable line: {exc}"]
    if tokens is not None:
        handler = _HANDLERS.get(tokens[0])
        if handler is None:
            output = [
                f"error: unknown command {tokens[0]!r} (try: help)"
            ]
        else:
            try:
                output = handler(ctx, tokens[1:])
            except (ReproError, OSError, ValueError) as exc:
                output = [f"error: {exc}"]
    ctx.workspace.note_command()
    if not ctx.done or output:
        ctx.log.append({"line": stripped, "output": list(output)})
    return output
