"""Community evolution tracking across snapshot streams.

The paper motivates Triangle K-Cores with dynamic analysis: "identifying
the portions of the network that are changing, characterizing the type of
change" (§I), and cites the event framework of Asur et al. [15].  This
module implements that layer on top of the decomposition: extract the
dense (triangle-connected) communities of every snapshot, match them
across consecutive snapshots by overlap, and classify the transitions:

* ``continue`` — same community, roughly the same members;
* ``grow`` / ``shrink`` — matched, with a significant size change;
* ``merge`` — several previous communities map into one;
* ``split`` — one previous community maps onto several;
* ``form`` — no predecessor (a new dense group);
* ``dissolve`` — no successor.

The Fig 8 case study events reappear here automatically: the Astrology
story is a ``grow``, the two topic fusions are ``merge`` events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..engine import resolve_engine
from ..graph.snapshots import SnapshotStream
from ..graph.undirected import Graph
from ..core.extract import dense_communities
from ..core.triangle_kcore import TriangleKCoreResult


@dataclass(frozen=True)
class TrackedCommunity:
    """One dense community of one snapshot."""

    snapshot: int
    level: int
    vertices: frozenset

    @property
    def size(self) -> int:
        return len(self.vertices)


@dataclass(frozen=True)
class Transition:
    """An evolution event between consecutive snapshots."""

    kind: str  # continue/grow/shrink/merge/split/form/dissolve
    snapshot: int  # index of the *later* snapshot
    before: Tuple[TrackedCommunity, ...]
    after: Tuple[TrackedCommunity, ...]

    def __repr__(self) -> str:
        before_sizes = [c.size for c in self.before]
        after_sizes = [c.size for c in self.after]
        return (
            f"Transition({self.kind!r}, t={self.snapshot}, "
            f"{before_sizes} -> {after_sizes})"
        )


def snapshot_communities(
    graph: Graph,
    snapshot: int,
    *,
    min_kappa: int = 2,
    max_communities: int = 50,
    result: Optional[TriangleKCoreResult] = None,
    backend: Optional[str] = None,
    engine: Optional[object] = None,
) -> List[TrackedCommunity]:
    """Dense communities of one snapshot, densest first.

    Pass ``backend="dynamic"`` (through :func:`track_communities`) to
    answer successive snapshots by incremental diffs against the engine's
    warm maintainer instead of a per-snapshot recompute.
    """
    if result is None:
        result = resolve_engine(engine).decompose(graph, backend=backend)
    communities: List[TrackedCommunity] = []
    for count, (level, vertices) in enumerate(
        dense_communities(graph, result, min_kappa=min_kappa)
    ):
        if count >= max_communities:
            break
        communities.append(
            TrackedCommunity(
                snapshot=snapshot, level=level, vertices=frozenset(vertices)
            )
        )
    return communities


def _jaccard(a: frozenset, b: frozenset) -> float:
    union = len(a | b)
    return len(a & b) / union if union else 0.0


@dataclass
class CommunityTimeline:
    """Communities per snapshot plus the classified transitions."""

    communities: List[List[TrackedCommunity]] = field(default_factory=list)
    transitions: List[Transition] = field(default_factory=list)

    def events(self, kind: Optional[str] = None) -> List[Transition]:
        """Transitions, optionally filtered by kind."""
        if kind is None:
            return list(self.transitions)
        return [t for t in self.transitions if t.kind == kind]

    def summary(self) -> Dict[str, int]:
        """``{event kind: count}`` over the whole stream."""
        counts: Dict[str, int] = {}
        for transition in self.transitions:
            counts[transition.kind] = counts.get(transition.kind, 0) + 1
        return dict(sorted(counts.items()))


def track_communities(
    stream: SnapshotStream,
    *,
    min_kappa: int = 2,
    match_threshold: float = 0.3,
    grow_factor: float = 1.25,
    max_communities: int = 50,
    backend: Optional[str] = None,
    engine: Optional[object] = None,
) -> CommunityTimeline:
    """Build the evolution timeline of a snapshot stream.

    Parameters
    ----------
    min_kappa:
        Minimum community density to track.
    match_threshold:
        Minimum Jaccard overlap for a predecessor/successor link.
    grow_factor:
        Size ratio beyond which a matched community counts as
        ``grow`` / ``shrink`` instead of ``continue``.
    max_communities:
        Cap per snapshot (densest first) to bound matching cost.
    backend / engine:
        Decomposition routing.  ``backend="dynamic"`` warms the engine's
        maintainer on the first snapshot and diff-applies each subsequent
        one (Algorithm 2) — the intended path for long streams.
    """
    timeline = CommunityTimeline()
    for index in range(len(stream)):
        timeline.communities.append(
            snapshot_communities(
                stream[index],
                index,
                min_kappa=min_kappa,
                max_communities=max_communities,
                backend=backend,
                engine=engine,
            )
        )

    for index in range(1, len(stream)):
        previous = timeline.communities[index - 1]
        current = timeline.communities[index]
        links: List[Tuple[int, int]] = []  # (prev idx, cur idx)
        for i, old in enumerate(previous):
            for j, new in enumerate(current):
                if _jaccard(old.vertices, new.vertices) >= match_threshold:
                    links.append((i, j))

        prev_to_cur: Dict[int, List[int]] = {}
        cur_to_prev: Dict[int, List[int]] = {}
        for i, j in links:
            prev_to_cur.setdefault(i, []).append(j)
            cur_to_prev.setdefault(j, []).append(i)

        consumed_prev: Set[int] = set()
        consumed_cur: Set[int] = set()

        # Merges: one current community with several predecessors.
        for j, sources in sorted(cur_to_prev.items()):
            if len(sources) > 1:
                timeline.transitions.append(
                    Transition(
                        kind="merge",
                        snapshot=index,
                        before=tuple(previous[i] for i in sorted(sources)),
                        after=(current[j],),
                    )
                )
                consumed_cur.add(j)
                consumed_prev.update(sources)

        # Splits: one predecessor with several current successors.
        for i, targets in sorted(prev_to_cur.items()):
            if i in consumed_prev:
                continue
            live_targets = [j for j in targets if j not in consumed_cur]
            if len(live_targets) > 1:
                timeline.transitions.append(
                    Transition(
                        kind="split",
                        snapshot=index,
                        before=(previous[i],),
                        after=tuple(current[j] for j in sorted(live_targets)),
                    )
                )
                consumed_prev.add(i)
                consumed_cur.update(live_targets)

        # One-to-one: continue / grow / shrink.
        for i, targets in sorted(prev_to_cur.items()):
            if i in consumed_prev:
                continue
            live_targets = [j for j in targets if j not in consumed_cur]
            if len(live_targets) != 1:
                continue
            j = live_targets[0]
            old, new = previous[i], current[j]
            if new.size >= old.size * grow_factor:
                kind = "grow"
            elif old.size >= new.size * grow_factor:
                kind = "shrink"
            else:
                kind = "continue"
            timeline.transitions.append(
                Transition(kind=kind, snapshot=index, before=(old,), after=(new,))
            )
            consumed_prev.add(i)
            consumed_cur.add(j)

        # Unmatched: dissolutions and formations.
        for i, old in enumerate(previous):
            if i not in consumed_prev and i not in prev_to_cur:
                timeline.transitions.append(
                    Transition(
                        kind="dissolve", snapshot=index, before=(old,), after=()
                    )
                )
        for j, new in enumerate(current):
            if j not in consumed_cur and j not in cur_to_prev:
                timeline.transitions.append(
                    Transition(kind="form", snapshot=index, before=(), after=(new,))
                )
    return timeline
