"""Event detection on evolving graphs via template patterns.

The paper positions template pattern cliques as a probe for "interesting or
anomalous behavior" in evolving networks (§V, citing [22]).  This module
turns the three built-in templates into a small event-detection API: run
all templates over every consecutive snapshot pair of a stream and emit the
pattern cliques found, densest first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..graph.edge import Vertex
from ..graph.snapshots import SnapshotStream
from ..templates.detect import detect_on_snapshots
from ..templates.library import BUILTIN_TEMPLATES
from ..templates.spec import TemplateSpec


@dataclass(frozen=True)
class Event:
    """A detected pattern clique between two consecutive snapshots."""

    step: int  # index of the *new* snapshot in the stream
    pattern: str
    kappa: int
    vertices: Tuple[Vertex, ...]

    @property
    def clique_size_estimate(self) -> int:
        return self.kappa + 2


def detect_events(
    stream: SnapshotStream,
    *,
    patterns: Sequence[TemplateSpec] | None = None,
    min_kappa: int = 1,
    max_events_per_step: int = 10,
) -> List[Event]:
    """Scan all consecutive snapshot pairs for template pattern cliques.

    Returns events sorted by (step, descending kappa).  ``patterns``
    defaults to the three built-ins (New Form, Bridge, New Join).
    """
    specs = list(patterns) if patterns is not None else list(
        BUILTIN_TEMPLATES.values()
    )
    events: List[Event] = []
    for step in range(1, len(stream)):
        old_graph, new_graph = stream[step - 1], stream[step]
        for spec in specs:
            detection = detect_on_snapshots(old_graph, new_graph, spec)
            for count, (kappa, vertices) in enumerate(
                detection.densest_cliques(min_kappa=min_kappa)
            ):
                if count >= max_events_per_step:
                    break
                events.append(
                    Event(
                        step=step,
                        pattern=spec.name,
                        kappa=kappa,
                        vertices=tuple(sorted(vertices, key=repr)),
                    )
                )
    events.sort(key=lambda e: (e.step, -e.kappa, e.pattern))
    return events


def densest_event(events: Sequence[Event], pattern: str) -> Event:
    """The single densest event of ``pattern`` (ValueError when none)."""
    matching = [e for e in events if e.pattern == pattern]
    if not matching:
        raise ValueError(f"no events of pattern {pattern!r}")
    return max(matching, key=lambda e: e.kappa)
