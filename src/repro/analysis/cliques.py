"""Clique analysis inside extracted Triangle K-Cores.

A Triangle K-Core with number ``k`` approximates a ``(k+2)``-clique; these
helpers measure how good the approximation is on a concrete region —
exactly what the paper does in the PPI case study ("clique 2 ... is an
exact 10-vertex clique", "clique 3 ... the edge between APC4 and CDC16 is
missed").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from ..graph.edge import Vertex
from ..graph.undirected import Graph
from ..baselines.csv_baseline import max_clique


@dataclass(frozen=True)
class CliqueReport:
    """How clique-like a vertex set is."""

    vertices: Tuple[Vertex, ...]
    present_edges: int
    possible_edges: int
    missing_edges: Tuple[Tuple[Vertex, Vertex], ...]

    @property
    def is_clique(self) -> bool:
        return self.present_edges == self.possible_edges

    @property
    def density(self) -> float:
        """Edge density in [0, 1]; 1.0 for an exact clique."""
        if self.possible_edges == 0:
            return 1.0
        return self.present_edges / self.possible_edges


def clique_report(graph: Graph, vertices: Sequence[Vertex]) -> CliqueReport:
    """Check how close ``vertices`` is to a clique in ``graph``.

    >>> from ..graph.undirected import complete_graph
    >>> clique_report(complete_graph(4), [0, 1, 2, 3]).is_clique
    True
    """
    members = list(dict.fromkeys(vertices))
    present = 0
    missing: List[Tuple[Vertex, Vertex]] = []
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            if graph.has_edge(u, v):
                present += 1
            else:
                missing.append((u, v))
    possible = len(members) * (len(members) - 1) // 2
    return CliqueReport(
        vertices=tuple(members),
        present_edges=present,
        possible_edges=possible,
        missing_edges=tuple(missing),
    )


def largest_clique_in(graph: Graph, vertices: Sequence[Vertex]) -> Set[Vertex]:
    """Exact maximum clique within the subgraph induced by ``vertices``.

    Safe for the small extracted regions the case studies look at (tens of
    vertices); do not call on whole graphs.
    """
    return max_clique(graph.subgraph(vertices))


def approximation_quality(
    graph: Graph, vertices: Sequence[Vertex], claimed_size: int
) -> float:
    """Ratio of the true max clique in the region to the claimed size.

    1.0 means the Triangle K-Core estimate was exact; below 1.0 the region
    is a quasi-clique (still the paper's intended reading).
    """
    if claimed_size <= 0:
        return 1.0
    actual = len(largest_clique_in(graph, vertices))
    return actual / claimed_size
