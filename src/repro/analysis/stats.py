"""Summary statistics for graphs and decompositions.

Backs the Table I benchmark (dataset characterization) and EXPERIMENTS.md
(shape commentary): degree distribution moments, triangle counts,
clustering, kappa histograms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..graph.triangles import count_triangles, global_clustering_coefficient
from ..graph.undirected import Graph
from ..core.kcore import degeneracy
from ..core.triangle_kcore import TriangleKCoreResult


@dataclass(frozen=True)
class GraphStats:
    """One row of the dataset characterization table."""

    vertices: int
    edges: int
    triangles: int
    max_degree: int
    mean_degree: float
    transitivity: float
    degeneracy: int

    def as_row(self) -> str:
        return (
            f"|V|={self.vertices} |E|={self.edges} |Tri|={self.triangles} "
            f"dmax={self.max_degree} dmean={self.mean_degree:.2f} "
            f"C={self.transitivity:.3f} degeneracy={self.degeneracy}"
        )


def graph_stats(graph: Graph) -> GraphStats:
    """Compute the characterization row for ``graph``."""
    degrees = [graph.degree(v) for v in graph.vertices()]
    return GraphStats(
        vertices=graph.num_vertices,
        edges=graph.num_edges,
        triangles=count_triangles(graph),
        max_degree=max(degrees, default=0),
        mean_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
        transitivity=global_clustering_coefficient(graph),
        degeneracy=degeneracy(graph),
    )


def kappa_summary(result: TriangleKCoreResult) -> Dict[str, float]:
    """Aggregate kappa statistics for EXPERIMENTS.md reporting."""
    values = list(result.kappa.values())
    if not values:
        return {"edges": 0, "max": 0, "mean": 0.0, "nonzero_fraction": 0.0}
    return {
        "edges": len(values),
        "max": max(values),
        "mean": sum(values) / len(values),
        "nonzero_fraction": sum(1 for v in values if v > 0) / len(values),
    }


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """``{degree: vertex count}`` — used to sanity-check generator shape."""
    histogram: Dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        histogram[d] = histogram.get(d, 0) + 1
    return dict(sorted(histogram.items()))
