"""Sliding-window density monitoring over temporal edge streams.

The paper's dynamic algorithms are motivated by networks that never stop
changing.  The natural deployment is a *temporal stream*: interactions
arrive with timestamps, only the last ``window`` time units matter, and an
analyst watches for dense structure forming right now (the §V event-
detection story, online).

:class:`SlidingWindowDensity` wraps
:class:`~repro.core.dynamic.DynamicTriangleKCore`: ``observe(u, v, t)``
inserts an interaction, expiring everything older than ``t - window``
first.  Repeated interactions refresh the edge's timestamp instead of
duplicating it.  Every query (max kappa, densest community, kappa of an
edge) reads the incrementally-maintained state — no recomputation.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from ..engine import resolve_engine
from ..exceptions import ReproError
from ..graph.edge import Edge, Vertex, canonical_edge
from ..graph.undirected import Graph
from ..core.extract import dense_communities


class SlidingWindowDensity:
    """Maintains Triangle K-Cores over the last ``window`` time units.

    Timestamps must be non-decreasing (a stream); out-of-order events
    raise :class:`~repro.exceptions.ReproError`.

    Examples
    --------
    >>> monitor = SlidingWindowDensity(window=10)
    >>> for t, (u, v) in enumerate([(0, 1), (1, 2), (0, 2)]):
    ...     _ = monitor.observe(u, v, t)
    >>> monitor.max_kappa
    1
    >>> _ = monitor.advance_to(20)   # everything expires
    >>> monitor.max_kappa
    0
    """

    def __init__(
        self,
        *,
        window: float,
        store_triangles: bool = False,
        engine: Optional[object] = None,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        # copy=False: the maintainer owns the (initially empty) graph.
        self._maintainer = resolve_engine(engine).maintainer(
            Graph(), copy=False, store_triangles=store_triangles
        )
        self._last_seen: Dict[Edge, float] = {}
        #: (timestamp, edge) min-heap; stale entries are skipped on expiry.
        self._expiry_heap: List[Tuple[float, Edge]] = []
        self._now = float("-inf")

    # ------------------------------------------------------------------ #
    # stream input
    # ------------------------------------------------------------------ #

    def observe(self, u: Vertex, v: Vertex, timestamp: float) -> int:
        """Ingest one interaction; returns the number of expired edges.

        A repeated interaction refreshes the edge's timestamp (the edge
        stays; its expiry moves forward).
        """
        expired = self.advance_to(timestamp)
        edge = canonical_edge(u, v)
        self._last_seen[edge] = timestamp
        heapq.heappush(self._expiry_heap, (timestamp, edge))
        if not self._maintainer.graph.has_edge(u, v):
            self._maintainer.add_edge(u, v)
        return expired

    def advance_to(self, timestamp: float) -> int:
        """Move time forward, expiring edges older than ``timestamp - window``.

        Returns the number of edges removed.  Raises on time going
        backwards.
        """
        if timestamp < self._now:
            raise ReproError(
                f"stream time went backwards: {timestamp} < {self._now}"
            )
        self._now = timestamp
        horizon = timestamp - self.window
        expired = 0
        while self._expiry_heap and self._expiry_heap[0][0] <= horizon:
            stamp, edge = heapq.heappop(self._expiry_heap)
            if self._last_seen.get(edge) != stamp:
                continue  # refreshed later; stale heap entry
            del self._last_seen[edge]
            self._maintainer.remove_edge(*edge)
            expired += 1
        return expired

    # ------------------------------------------------------------------ #
    # queries (all O(1) or read-only on maintained state)
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        return self._now

    @property
    def graph(self) -> Graph:
        """The current window's graph (treat as read-only)."""
        return self._maintainer.graph

    @property
    def num_edges(self) -> int:
        return len(self._last_seen)

    @property
    def max_kappa(self) -> int:
        return self._maintainer.max_kappa

    def kappa_of(self, u: Vertex, v: Vertex) -> int:
        """Current kappa of a live edge."""
        return self._maintainer.kappa_of(u, v)

    def densest_community(self) -> Tuple[int, Set[Vertex]]:
        """``(kappa, vertices)`` of the window's densest community.

        ``(0, set())`` when the window holds no triangles.
        """
        result = self._maintainer.result()
        if result.max_kappa == 0:
            return 0, set()
        for level, vertices in dense_communities(
            self._maintainer.graph, result, min_kappa=result.max_kappa
        ):
            return level, vertices
        return 0, set()

    def alert_when(self, threshold: int) -> bool:
        """True when some structure at kappa >= threshold is live.

        The one-liner for monitoring loops: "tell me when an approximate
        ``threshold + 2``-clique forms within the window".
        """
        return self._maintainer.max_kappa >= threshold
