"""Robustness of dense structure under noise.

Real relationship data is noisy — the paper's own PPI case study hinges on
one missing edge demoting a 10-clique to a 9-plateau.  This module
quantifies that sensitivity: perturb the graph by deleting (or rewiring) a
random fraction of edges and measure how the kappa values and the densest
communities move.

Outputs are designed for decision-making: "at 5% edge loss the Lsm module
still surfaces, at 20% it dissolves" is the statement a biologist needs
before trusting a plateau.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..graph.edge import Vertex
from ..graph.undirected import Graph
from ..core.maxcore import max_triangle_kcore
from ..core.triangle_kcore import triangle_kcore_decomposition


@dataclass(frozen=True)
class PerturbationTrial:
    """One perturbed run.

    ``core_overlap`` compares the perturbed graph's *champion* core against
    the baseline champion — it can swing wildly when noise merely reorders
    two near-equal cores.  ``core_kappa_after`` is the stabler signal: the
    density the baseline core itself retains in the perturbed graph.
    """

    fraction: float
    seed: int
    max_kappa: int
    kappa_mean_drop: float
    core_overlap: float  # Jaccard of densest-core vertices vs baseline
    core_kappa_after: int  # max kappa among the baseline core's edges


@dataclass
class RobustnessReport:
    """Aggregated perturbation trials for one graph."""

    baseline_max_kappa: int
    baseline_core: frozenset
    trials: List[PerturbationTrial]

    def by_fraction(self) -> Dict[float, List[PerturbationTrial]]:
        grouped: Dict[float, List[PerturbationTrial]] = {}
        for trial in self.trials:
            grouped.setdefault(trial.fraction, []).append(trial)
        return dict(sorted(grouped.items()))

    def mean_core_overlap(self, fraction: float) -> float:
        trials = [t for t in self.trials if t.fraction == fraction]
        if not trials:
            raise ValueError(f"no trials at fraction {fraction}")
        return sum(t.core_overlap for t in trials) / len(trials)

    def mean_core_kappa_after(self, fraction: float) -> float:
        trials = [t for t in self.trials if t.fraction == fraction]
        if not trials:
            raise ValueError(f"no trials at fraction {fraction}")
        return sum(t.core_kappa_after for t in trials) / len(trials)

    def breakdown_fraction(self, *, retention_threshold: float = 0.5) -> float:
        """Smallest tested fraction where the baseline core retains less
        than ``retention_threshold`` of its original density;
        ``1.0`` if it survives every tested level."""
        if self.baseline_max_kappa == 0:
            return 1.0
        for fraction, trials in self.by_fraction().items():
            mean = sum(t.core_kappa_after for t in trials) / len(trials)
            if mean < retention_threshold * self.baseline_max_kappa:
                return fraction
        return 1.0


def _jaccard(a: frozenset, b: frozenset) -> float:
    union = len(a | b)
    return len(a & b) / union if union else 1.0


def perturb_edges(
    graph: Graph, fraction: float, *, seed: int = 0, mode: str = "delete"
) -> Graph:
    """Return a perturbed copy of ``graph``.

    ``mode="delete"`` removes a uniform ``fraction`` of edges;
    ``mode="rewire"`` removes them and inserts the same number of uniform
    random non-edges (degree-sequence-agnostic noise).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if mode not in ("delete", "rewire"):
        raise ValueError(f"mode must be 'delete' or 'rewire', got {mode!r}")
    rng = random.Random(seed)
    perturbed = graph.copy()
    edges = sorted(perturbed.edges(), key=repr)
    rng.shuffle(edges)
    victims = edges[: int(round(fraction * len(edges)))]
    for u, v in victims:
        perturbed.remove_edge(u, v)
    if mode == "rewire":
        vertices = sorted(perturbed.vertices(), key=repr)
        inserted = 0
        attempts = 0
        while inserted < len(victims) and attempts < len(victims) * 50:
            attempts += 1
            u, v = rng.sample(vertices, 2)
            if not perturbed.has_edge(u, v):
                perturbed.add_edge(u, v)
                inserted += 1
    return perturbed


def robustness_report(
    graph: Graph,
    *,
    fractions: Sequence[float] = (0.02, 0.05, 0.1, 0.2),
    trials_per_fraction: int = 3,
    mode: str = "delete",
    seed: int = 0,
) -> RobustnessReport:
    """Measure kappa/community stability under random edge perturbation."""
    baseline = triangle_kcore_decomposition(graph)
    baseline_k, baseline_core_graph = max_triangle_kcore(graph)
    baseline_core = frozenset(baseline_core_graph.vertices())
    baseline_mean = (
        sum(baseline.kappa.values()) / len(baseline.kappa)
        if baseline.kappa
        else 0.0
    )

    trials: List[PerturbationTrial] = []
    for fraction in fractions:
        for trial_index in range(trials_per_fraction):
            trial_seed = seed + 1000 * trial_index + hash(fraction) % 997
            perturbed = perturb_edges(
                graph, fraction, seed=trial_seed, mode=mode
            )
            result = triangle_kcore_decomposition(perturbed)
            k, core_graph = max_triangle_kcore(perturbed)
            mean = (
                sum(result.kappa.values()) / len(result.kappa)
                if result.kappa
                else 0.0
            )
            core_kappa_after = max(
                (
                    value
                    for (u, v), value in result.kappa.items()
                    if u in baseline_core and v in baseline_core
                ),
                default=0,
            )
            trials.append(
                PerturbationTrial(
                    fraction=fraction,
                    seed=trial_seed,
                    max_kappa=k,
                    kappa_mean_drop=baseline_mean - mean,
                    core_overlap=_jaccard(
                        baseline_core, frozenset(core_graph.vertices())
                    ),
                    core_kappa_after=core_kappa_after,
                )
            )
    return RobustnessReport(
        baseline_max_kappa=baseline_k,
        baseline_core=baseline_core,
        trials=trials,
    )
