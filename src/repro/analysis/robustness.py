"""Robustness of dense structure under noise.

Real relationship data is noisy — the paper's own PPI case study hinges on
one missing edge demoting a 10-clique to a 9-plateau.  This module
quantifies that sensitivity: perturb the graph by deleting (or rewiring) a
random fraction of edges and measure how the kappa values and the densest
communities move.

Outputs are designed for decision-making: "at 5% edge loss the Lsm module
still surfaces, at 20% it dissolves" is the statement a biologist needs
before trusting a plateau.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine import resolve_engine
from ..graph.edge import Edge, Vertex, canonical_edge
from ..graph.undirected import Graph


@dataclass(frozen=True)
class PerturbationTrial:
    """One perturbed run.

    ``core_overlap`` compares the perturbed graph's *champion* core against
    the baseline champion — it can swing wildly when noise merely reorders
    two near-equal cores.  ``core_kappa_after`` is the stabler signal: the
    density the baseline core itself retains in the perturbed graph.
    """

    fraction: float
    seed: int
    max_kappa: int
    kappa_mean_drop: float
    core_overlap: float  # Jaccard of densest-core vertices vs baseline
    core_kappa_after: int  # max kappa among the baseline core's edges


@dataclass
class RobustnessReport:
    """Aggregated perturbation trials for one graph."""

    baseline_max_kappa: int
    baseline_core: frozenset
    trials: List[PerturbationTrial]

    def by_fraction(self) -> Dict[float, List[PerturbationTrial]]:
        grouped: Dict[float, List[PerturbationTrial]] = {}
        for trial in self.trials:
            grouped.setdefault(trial.fraction, []).append(trial)
        return dict(sorted(grouped.items()))

    def mean_core_overlap(self, fraction: float) -> float:
        trials = [t for t in self.trials if t.fraction == fraction]
        if not trials:
            raise ValueError(f"no trials at fraction {fraction}")
        return sum(t.core_overlap for t in trials) / len(trials)

    def mean_core_kappa_after(self, fraction: float) -> float:
        trials = [t for t in self.trials if t.fraction == fraction]
        if not trials:
            raise ValueError(f"no trials at fraction {fraction}")
        return sum(t.core_kappa_after for t in trials) / len(trials)

    def breakdown_fraction(self, *, retention_threshold: float = 0.5) -> float:
        """Smallest tested fraction where the baseline core retains less
        than ``retention_threshold`` of its original density;
        ``1.0`` if it survives every tested level."""
        if self.baseline_max_kappa == 0:
            return 1.0
        for fraction, trials in self.by_fraction().items():
            mean = sum(t.core_kappa_after for t in trials) / len(trials)
            if mean < retention_threshold * self.baseline_max_kappa:
                return fraction
        return 1.0


def _jaccard(a: frozenset, b: frozenset) -> float:
    union = len(a | b)
    return len(a & b) / union if union else 1.0


def perturbation_diff(
    graph: Graph, fraction: float, *, seed: int = 0, mode: str = "delete"
) -> Tuple[List[Edge], List[Edge]]:
    """The ``(added, removed)`` edge diff of one perturbation, no copy.

    Draws exactly the same random choices as :func:`perturb_edges` (same
    seed, same RNG consumption order), so applying the diff to ``graph``
    reproduces that function's output bit for bit — but as a diff it can
    also feed :meth:`Engine.perturbed <repro.engine.Engine.perturbed>`,
    which applies it incrementally and reverts it instead of copying and
    re-decomposing the whole graph per trial.

    ``mode="delete"`` removes a uniform ``fraction`` of edges;
    ``mode="rewire"`` removes them and inserts the same number of uniform
    random non-edges (degree-sequence-agnostic noise).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if mode not in ("delete", "rewire"):
        raise ValueError(f"mode must be 'delete' or 'rewire', got {mode!r}")
    rng = random.Random(seed)
    edges = sorted(graph.edges(), key=repr)
    rng.shuffle(edges)
    victims = edges[: int(round(fraction * len(edges)))]
    removed = list(victims)
    added: List[Edge] = []
    if mode == "rewire":
        removed_set = set(victims)
        added_set: Set[Edge] = set()
        vertices = sorted(graph.vertices(), key=repr)
        inserted = 0
        attempts = 0
        while inserted < len(victims) and attempts < len(victims) * 50:
            attempts += 1
            u, v = rng.sample(vertices, 2)
            edge = canonical_edge(u, v)
            present = (
                edge in added_set
                or (graph.has_edge(u, v) and edge not in removed_set)
            )
            if not present:
                added_set.add(edge)
                added.append(edge)
                inserted += 1
    return added, removed


def perturb_edges(
    graph: Graph, fraction: float, *, seed: int = 0, mode: str = "delete"
) -> Graph:
    """Return a perturbed copy of ``graph`` (see :func:`perturbation_diff`)."""
    added, removed = perturbation_diff(graph, fraction, seed=seed, mode=mode)
    perturbed = graph.copy()
    for u, v in removed:
        perturbed.remove_edge(u, v)
    for u, v in added:
        perturbed.add_edge(u, v)
    return perturbed


def _champion(kappa: Dict[Edge, int]) -> Tuple[int, frozenset]:
    """``(max kappa, vertices of the level-max subgraph)`` from a kappa map.

    Equivalent to :func:`repro.core.maxcore.max_triangle_kcore` on the same
    graph (the level-``k_max`` subgraph is exactly the edges with
    ``kappa == k_max``), but computable from a kappa map alone — which the
    dynamic perturbation path holds without ever materializing the
    perturbed graph copy.
    """
    if not kappa:
        return 0, frozenset()
    k = max(kappa.values())
    vertices = set()
    for (u, v), value in kappa.items():
        if value == k:
            vertices.add(u)
            vertices.add(v)
    return k, frozenset(vertices)


def _trial_measurements(
    kappa: Dict[Edge, int], baseline_core: frozenset
) -> Tuple[int, frozenset, float, int]:
    """``(max_kappa, champion core, kappa mean, core_kappa_after)``."""
    k, core = _champion(kappa)
    mean = sum(kappa.values()) / len(kappa) if kappa else 0.0
    core_kappa_after = max(
        (
            value
            for (u, v), value in kappa.items()
            if u in baseline_core and v in baseline_core
        ),
        default=0,
    )
    return k, core, mean, core_kappa_after


def robustness_report(
    graph: Graph,
    *,
    fractions: Sequence[float] = (0.02, 0.05, 0.1, 0.2),
    trials_per_fraction: int = 3,
    mode: str = "delete",
    seed: int = 0,
    method: str = "dynamic",
    backend: Optional[str] = None,
    engine: Optional[object] = None,
) -> RobustnessReport:
    """Measure kappa/community stability under random edge perturbation.

    ``method="dynamic"`` (default) routes every trial through the engine's
    perturbation maintainer: the diff is applied incrementally
    (Algorithm 2), measured, and reverted — one warm-up decomposition total
    instead of one full copy + recompute per trial.  ``method="recompute"``
    is the literal original protocol (perturbed copy, fresh decomposition)
    kept as a cross-check fallback; both produce identical trials.
    """
    if method not in ("dynamic", "recompute"):
        raise ValueError(
            f"method must be 'dynamic' or 'recompute', got {method!r}"
        )
    eng = resolve_engine(engine)
    baseline = eng.decompose(graph, backend=backend)
    baseline_k, baseline_core = _champion(baseline.kappa)
    baseline_mean = (
        sum(baseline.kappa.values()) / len(baseline.kappa)
        if baseline.kappa
        else 0.0
    )

    trials: List[PerturbationTrial] = []
    for fraction in fractions:
        for trial_index in range(trials_per_fraction):
            trial_seed = seed + 1000 * trial_index + hash(fraction) % 997
            added, removed = perturbation_diff(
                graph, fraction, seed=trial_seed, mode=mode
            )
            if method == "dynamic":
                with eng.perturbed(
                    graph, added=tuple(added), removed=tuple(removed)
                ) as maintainer:
                    k, core, mean, core_kappa_after = _trial_measurements(
                        maintainer.kappa, baseline_core
                    )
            else:
                perturbed = graph.copy()
                for u, v in removed:
                    perturbed.remove_edge(u, v)
                for u, v in added:
                    perturbed.add_edge(u, v)
                result = eng.decompose(
                    perturbed, backend=backend, use_cache=False
                )
                k, core, mean, core_kappa_after = _trial_measurements(
                    result.kappa, baseline_core
                )
            trials.append(
                PerturbationTrial(
                    fraction=fraction,
                    seed=trial_seed,
                    max_kappa=k,
                    kappa_mean_drop=baseline_mean - mean,
                    core_overlap=_jaccard(baseline_core, core),
                    core_kappa_after=core_kappa_after,
                )
            )
    return RobustnessReport(
        baseline_max_kappa=baseline_k,
        baseline_core=baseline_core,
        trials=trials,
    )
