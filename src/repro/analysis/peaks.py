"""Plateau / peak detection on density plots.

The paper reads its plots by eye: "the flat peaks in the plot indicate
potential cliques" and the case studies circle the densest ones.  This
module automates that reading so case studies and benchmarks can assert the
structure programmatically: a *plateau* is a maximal run of consecutive
plot positions whose heights stay within a tolerance of a local maximum and
above a floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..graph.edge import Vertex
from ..viz.density_plot import DensityPlot


@dataclass(frozen=True)
class Plateau:
    """One detected plateau (a candidate clique-like structure)."""

    start: int
    end: int  # inclusive
    height: int
    vertices: Tuple[Vertex, ...]

    @property
    def width(self) -> int:
        return self.end - self.start + 1


def find_plateaus(
    plot: DensityPlot,
    *,
    min_height: int = 3,
    min_width: int = 3,
    tolerance: int = 1,
) -> List[Plateau]:
    """Detect plateaus, tallest first.

    Parameters
    ----------
    min_height:
        Ignore structure below this co-clique size (2 is just "an edge").
    min_width:
        Minimum run length; a clique of size ``s`` occupies about ``s``
        consecutive positions.
    tolerance:
        Heights within ``tolerance`` of the run's maximum stay in the run —
        absorbs the one-off dips quasi-cliques produce (the paper's Fig 7
        clique 3 sits one unit below its neighbors).
    """
    heights = plot.heights
    plateaus: List[Plateau] = []
    index = 0
    n = len(heights)
    while index < n:
        if heights[index] < min_height:
            index += 1
            continue
        run_start = index
        run_max = heights[index]
        index += 1
        while index < n and heights[index] >= min_height and (
            abs(heights[index] - run_max) <= tolerance
            or heights[index] > run_max
        ):
            run_max = max(run_max, heights[index])
            index += 1
        run_end = index - 1
        if run_end - run_start + 1 >= min_width:
            plateaus.append(
                Plateau(
                    start=run_start,
                    end=run_end,
                    height=run_max,
                    vertices=tuple(plot.order[run_start : run_end + 1]),
                )
            )
    plateaus.sort(key=lambda p: (-p.height, -p.width, p.start))
    return plateaus


def top_plateaus(plot: DensityPlot, count: int, **kwargs) -> List[Plateau]:
    """The ``count`` tallest plateaus (the paper's circled regions)."""
    return find_plateaus(plot, **kwargs)[:count]


def plateau_profile(plot: DensityPlot, **kwargs) -> List[Tuple[int, int]]:
    """``(height, width)`` pairs of all plateaus — a compact plot signature.

    Used by the Fig 6 benchmark to compare the CSV plot and the Triangle
    K-Core plot structurally instead of pixel-by-pixel.
    """
    return [(p.height, p.width) for p in find_plateaus(plot, **kwargs)]
