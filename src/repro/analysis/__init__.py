"""Analysis: plateau detection, clique reports, event detection, stats."""

from .cliques import (
    CliqueReport,
    approximation_quality,
    clique_report,
    largest_clique_in,
)
from .events import Event, densest_event, detect_events
from .peaks import Plateau, find_plateaus, plateau_profile, top_plateaus
from .robustness import (
    PerturbationTrial,
    RobustnessReport,
    perturb_edges,
    robustness_report,
)
from .stats import GraphStats, degree_histogram, graph_stats, kappa_summary
from .streaming import SlidingWindowDensity
from .timeline import (
    CommunityTimeline,
    TrackedCommunity,
    Transition,
    snapshot_communities,
    track_communities,
)

__all__ = [
    "CliqueReport",
    "CommunityTimeline",
    "Event",
    "GraphStats",
    "Plateau",
    "PerturbationTrial",
    "RobustnessReport",
    "SlidingWindowDensity",
    "TrackedCommunity",
    "Transition",
    "approximation_quality",
    "clique_report",
    "degree_histogram",
    "densest_event",
    "detect_events",
    "find_plateaus",
    "graph_stats",
    "kappa_summary",
    "largest_clique_in",
    "perturb_edges",
    "plateau_profile",
    "robustness_report",
    "snapshot_communities",
    "track_communities",
    "top_plateaus",
]
