"""Zero-copy shared-memory array store for CSR snapshots (kernel layer L1).

:class:`SharedCSR` publishes the five kernel arrays of a
:class:`~repro.fast.csr.CSRGraph` into one POSIX shared-memory segment
(``multiprocessing.shared_memory``) and hands out a tiny pickled
*descriptor* — segment name, sizes, field offsets — instead of the arrays
themselves.  A ``parallel`` worker attaches by name and rebuilds the
snapshot as ``memoryview`` slices cast to int64 directly over the mapped
segment: no unpickling, no copy, O(descriptor) bytes on the wire no
matter how large the graph is (the ``parallel.bytes_shipped`` stat
records exactly that).

Lifetime rules (enforced here, documented in DESIGN.md):

* **The parent owns the segment.**  ``publish`` creates it; the parent
  must call :meth:`close` + :meth:`unlink` when the pool is done — the
  pool driver does so in a ``finally`` block, so the segment is removed
  even when a worker crashes or the pool breaks.
* **Workers only ever attach.**  :meth:`attach` opens the existing
  segment and *deregisters* it from the worker's ``resource_tracker``
  (the tracker would otherwise unlink the parent's segment when the
  worker exits — and complain about a "leak" it does not own).  Because
  a worker never owns a segment, a SIGKILL'd worker cannot leak one:
  ``/dev/shm`` holds only parent-owned segments, and the parent's
  ``finally`` removes those.
* **Views pin the mapping.**  An attached snapshot's arrays are views
  into the segment; the worker keeps the :class:`SharedCSR` alive in a
  module global for the pool's lifetime and never closes it explicitly —
  process exit unmaps.  (Closing with exported views raises
  ``BufferError`` by design: it would invalidate live kernel arrays.)

Segment names carry the :data:`SEGMENT_PREFIX` so tests (and operators)
can audit ``/dev/shm`` for leaks attributable to this library.
"""

from __future__ import annotations

import secrets
from typing import Dict, Optional

from .csr import CSRGraph

try:  # gated: some platforms (or sandboxes) lack POSIX shared memory
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _shared_memory = None  # type: ignore[assignment]

__all__ = ["SEGMENT_PREFIX", "SharedCSR", "shared_memory_available"]

#: Prefix of every segment this module creates (audit handle for leak
#: checks: ``ls /dev/shm/repro-csr-*`` must be empty between runs).
SEGMENT_PREFIX = "repro-csr-"

#: Shared-memory descriptor: ``{"name", "num_vertices", "num_edges",
#: "fields": {field: [offset, nbytes]}}`` — the only thing that crosses
#: the process boundary.
Descriptor = Dict[str, object]


def shared_memory_available() -> bool:
    """True when the host can create POSIX shared-memory segments."""
    return _shared_memory is not None


def _untrack(segment: object) -> None:
    """Deregister ``segment`` from this process's resource tracker.

    ``SharedMemory(create=False)`` registers the segment for cleanup even
    though the attaching process does not own it (fixed only in 3.13's
    ``track=False``); without this, every worker exit would unlink the
    parent's live segment out from under its siblings.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by version
        pass


class SharedCSR:
    """One published (or attached) shared-memory CSR snapshot."""

    __slots__ = ("_shm", "_descriptor", "_owner")

    def __init__(
        self, shm: object, descriptor: Descriptor, *, owner: bool
    ) -> None:
        self._shm = shm
        self._descriptor = descriptor
        self._owner = owner

    # ------------------------------------------------------------------ #
    # parent side
    # ------------------------------------------------------------------ #

    @classmethod
    def publish(cls, csr: CSRGraph) -> "SharedCSR":
        """Copy ``csr``'s kernel arrays into a fresh named segment.

        One memcpy per field — the last copy those arrays ever undergo;
        every worker after this reads the same physical pages.  Raises
        ``OSError`` (or ``ImportError`` via the gate) when the host cannot
        provide shared memory; callers fall back to the pickle transport.
        """
        if _shared_memory is None:
            raise OSError("multiprocessing.shared_memory is unavailable")
        fields: Dict[str, object] = {}
        offset = 0
        blobs = []
        for field, store in csr.arrays().items():
            blob = bytes(memoryview(store))
            fields[field] = [offset, len(blob)]
            blobs.append(blob)
            offset += len(blob)
        name = SEGMENT_PREFIX + secrets.token_hex(8)
        shm = _shared_memory.SharedMemory(
            name=name, create=True, size=max(offset, 1)
        )
        buf = shm.buf
        for (field, (start, nbytes)), blob in zip(fields.items(), blobs):
            buf[start : start + nbytes] = blob
        descriptor: Descriptor = {
            "name": shm.name,
            "num_vertices": csr.num_vertices,
            "num_edges": csr.num_edges,
            "fields": fields,
        }
        return cls(shm, descriptor, owner=True)

    def close(self) -> None:
        """Unmap the segment from this process (owner side)."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Remove the segment from the system (owner only; idempotent)."""
        if not self._owner:
            return
        try:
            if self._shm is not None:
                self._shm.unlink()
            else:  # closed first: reopen by name to unlink
                seg = _shared_memory.SharedMemory(name=self.name)
                seg.close()
                seg.unlink()
        except FileNotFoundError:
            pass
        self._owner = False

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #

    @classmethod
    def attach(cls, descriptor: Descriptor) -> "SharedCSR":
        """Open the parent's segment by name (never creates, never owns)."""
        if _shared_memory is None:
            raise OSError("multiprocessing.shared_memory is unavailable")
        shm = _shared_memory.SharedMemory(
            name=str(descriptor["name"]), create=False
        )
        _untrack(shm)
        return cls(shm, descriptor, owner=False)

    def csr(self) -> CSRGraph:
        """Zero-copy :class:`CSRGraph` over the mapped segment.

        Every kernel array is a ``memoryview`` slice cast to int64 —
        valid for as long as this :class:`SharedCSR` stays open.
        """
        view = memoryview(self._shm.buf)
        fields: Dict[str, object] = self._descriptor["fields"]  # type: ignore[assignment]
        arrays = {
            field: view[start : start + nbytes].cast("q")
            for field, (start, nbytes) in fields.items()
        }
        return CSRGraph.from_arrays(
            int(self._descriptor["num_vertices"]),
            int(self._descriptor["num_edges"]),
            arrays,
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        return str(self._descriptor["name"])

    @property
    def descriptor(self) -> Descriptor:
        """The picklable attach token (O(1) in the graph size)."""
        return self._descriptor

    @property
    def nbytes(self) -> int:
        """Payload bytes held in the segment."""
        return sum(
            int(nbytes) for _, nbytes in self._descriptor["fields"].values()  # type: ignore[union-attr]
        )

    def __repr__(self) -> str:
        role = "owner" if self._owner else "view"
        return f"SharedCSR({self.name!r}, {self.nbytes} bytes, {role})"
