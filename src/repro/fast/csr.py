"""Immutable CSR (compressed sparse row) snapshot of a :class:`Graph`.

The dynamic adjacency-set :class:`~repro.graph.undirected.Graph` is the
right substrate for the incremental algorithms, but its hash-keyed layout
costs an order of magnitude in constant factors on the static hot paths
(triangle enumeration, Algorithm 1 peeling).  :class:`CSRGraph` freezes a
graph into flat integer arrays the kernels in :mod:`repro.fast.kernels`
can scan without any hashing or tuple allocation:

* vertices are relabeled to ``0..n-1`` in *degree order* (ties broken
  deterministically), so the forward-orientation rank used by the triangle
  enumeration algorithm is simply the integer id;
* ``indptr`` / ``indices`` is the usual CSR adjacency with each vertex's
  neighbor block sorted ascending, enabling merge intersection;
* every undirected edge gets a dense id ``0..m-1`` (lexicographic by
  relabeled endpoints); ``arc_eids`` maps each directed arc back to its
  undirected edge id so kernels can index per-edge arrays for free while
  merging;
* ``forward_start[u]`` marks where the neighbors with id greater than
  ``u`` begin inside ``u``'s block (they form a suffix because blocks are
  sorted).

Arrays are stored with the stdlib :mod:`array` module (typecode ``q``) so
the core package keeps zero runtime dependencies; when numpy is importable
the construction sort is delegated to it.  Both construction paths produce
bit-identical arrays — the test suite asserts it.

**Array store contract (kernel layer L1).**  The five kernel arrays
(:data:`CSRGraph.ARRAY_FIELDS`) are a *pluggable store*: any
buffer-protocol sequence of native int64 values works — stdlib
``array("q")`` (the default), ``bytes`` snapshots, or ``memoryview``
slices cast to ``"q"`` over a ``multiprocessing.shared_memory`` segment
(see :mod:`repro.fast.shm`).  The kernels only ever index, slice, bisect,
``tolist()`` or ``np.frombuffer`` these fields, all of which every store
supports, so :meth:`CSRGraph.from_arrays` can rehydrate a snapshot from
any of them — including zero-copy views into shared memory, which is how
``parallel`` workers attach to the parent's CSR without unpickling it.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, List, Sequence

from ..graph.edge import Edge, Vertex, canonical_edge
from ..graph.undirected import Graph

try:  # optional accelerator; the pure-array path is always available
    import numpy as np  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - exercised via monkeypatching in tests
    np = None  # type: ignore[assignment]


def _degree_order(graph: Graph) -> List[Vertex]:
    """Vertices sorted by ascending degree, ties in insertion order.

    The sort is stable and the graph's vertex iteration order is
    deterministic, so the relabeling (and with it every kernel output) is
    reproducible without comparing arbitrary labels.
    """
    labels = list(graph.vertices())
    labels.sort(key=graph.degree)
    return labels


class CSRGraph:
    """Flat-array snapshot of an undirected graph (see module docstring).

    Instances are immutable by convention: every attribute is written once
    in :meth:`from_graph` and only read afterwards.

    Attributes
    ----------
    num_vertices, num_edges:
        ``n`` and ``m`` of the snapshot.
    labels:
        ``labels[i]`` is the original vertex label of integer id ``i``.
    index:
        ``{original label: integer id}`` — inverse of ``labels``.
    indptr, indices:
        CSR adjacency; ``indices[indptr[u]:indptr[u+1]]`` are ``u``'s
        neighbor ids, sorted ascending.
    arc_eids:
        Parallel to ``indices``: the undirected edge id of each arc.
    forward_start:
        ``forward_start[u]`` is the offset (into ``indices``) of the first
        neighbor of ``u`` with id ``> u``.
    edge_endpoints:
        Flat pairs ``(lo, hi) = edge_endpoints[2*e], edge_endpoints[2*e+1]``
        with ``lo < hi`` for every edge id ``e``; edge ids are assigned in
        lexicographic ``(lo, hi)`` order.

    Examples
    --------
    >>> g = Graph(edges=[("b", "a"), ("b", "c"), ("a", "c")])
    >>> csr = CSRGraph.from_graph(g)
    >>> csr.num_vertices, csr.num_edges
    (3, 3)
    >>> [csr.edge_label(e) for e in range(csr.num_edges)]
    [('a', 'b'), ('a', 'c'), ('b', 'c')]
    """

    __slots__ = (
        "num_vertices",
        "num_edges",
        "labels",
        "index",
        "indptr",
        "indices",
        "arc_eids",
        "forward_start",
        "edge_endpoints",
    )

    #: The kernel arrays forming the pluggable store (module docstring);
    #: declaration order is the serialization order every transport uses.
    ARRAY_FIELDS = (
        "indptr",
        "indices",
        "arc_eids",
        "forward_start",
        "edge_endpoints",
    )

    def __init__(self) -> None:
        self.num_vertices = 0
        self.num_edges = 0
        self.labels: List[Vertex] = []
        self.index: Dict[Vertex, int] = {}
        self.indptr = array("q", [0])
        self.indices = array("q")
        self.arc_eids = array("q")
        self.forward_start = array("q")
        self.edge_endpoints = array("q")

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Freeze ``graph`` into a CSR snapshot (O(n + m log m))."""
        snap = cls()
        labels = _degree_order(graph)
        index = {label: i for i, label in enumerate(labels)}
        snap.labels = labels
        snap.index = index
        snap.num_vertices = len(labels)
        snap.num_edges = graph.num_edges
        if np is not None:
            snap._build_numpy(graph)
        else:
            snap._build_pure(graph)
        return snap

    @classmethod
    def from_arrays(
        cls,
        num_vertices: int,
        num_edges: int,
        arrays: Dict[str, object],
        *,
        labels: "List[Vertex] | None" = None,
    ) -> "CSRGraph":
        """Rehydrate a snapshot from a store mapping (zero-copy capable).

        ``arrays`` maps each :data:`ARRAY_FIELDS` name to an int64 store:
        ``bytes`` are copied into stdlib arrays, while ``array``/
        ``memoryview`` stores are adopted as-is — a ``memoryview`` over a
        shared-memory segment makes the snapshot a zero-copy view whose
        lifetime is the segment's (see :mod:`repro.fast.shm`).  ``labels``
        is optional: kernels never touch original labels, so transports
        omit them; label-decoding methods then require id-space use only.
        """
        snap = cls()
        snap.num_vertices = num_vertices
        snap.num_edges = num_edges
        if labels is not None:
            snap.labels = labels
            snap.index = {label: i for i, label in enumerate(labels)}
        for field in cls.ARRAY_FIELDS:
            store = arrays[field]
            if isinstance(store, (bytes, bytearray)):
                store = array("q", store)
            setattr(snap, field, store)
        return snap

    # ------------------------------------------------------------------ #
    # array store introspection (kernel layer L1)
    # ------------------------------------------------------------------ #

    def arrays(self) -> Dict[str, object]:
        """The kernel-array store, keyed by :data:`ARRAY_FIELDS` name."""
        return {field: getattr(self, field) for field in self.ARRAY_FIELDS}

    def payload_nbytes(self) -> int:
        """Total bytes of the kernel arrays — what a copying transport ships."""
        total = 0
        for field in self.ARRAY_FIELDS:
            store = getattr(self, field)
            if isinstance(store, memoryview):
                total += store.nbytes
            else:
                total += len(store) * store.itemsize
        return total

    def _build_pure(self, graph: Graph) -> None:
        index = self.index
        n = self.num_vertices
        adj: List[List[int]] = [[] for _ in range(n)]
        for label, u in index.items():
            neighbors = adj[u]
            for w in graph.neighbors(label):
                neighbors.append(index[w])
            neighbors.sort()

        indptr = array("q", [0])
        indices = array("q")
        forward_start = array("q")
        offset = 0
        for u in range(n):
            neighbors = adj[u]
            indices.extend(neighbors)
            forward_start.append(offset + bisect_left(neighbors, u + 1))
            offset += len(neighbors)
            indptr.append(offset)

        # Edge ids in lexicographic (lo, hi) order == scanning each vertex's
        # forward suffix in id order.  eid_base[u] = ids consumed before u.
        eid_base = array("q")
        total = 0
        for u in range(n):
            eid_base.append(total)
            total += indptr[u + 1] - forward_start[u]

        arc_eids = array("q", bytes(8 * len(indices)))
        edge_endpoints = array("q", bytes(16 * self.num_edges))
        for u in range(n):
            start, fstart, end = indptr[u], forward_start[u], indptr[u + 1]
            base = eid_base[u]
            for pos in range(fstart, end):
                eid = base + (pos - fstart)
                arc_eids[pos] = eid
                edge_endpoints[2 * eid] = u
                edge_endpoints[2 * eid + 1] = indices[pos]
            for pos in range(start, fstart):
                v = indices[pos]  # v < u: look u up in v's forward suffix
                vf, vend = forward_start[v], indptr[v + 1]
                arc_eids[pos] = eid_base[v] + (
                    bisect_left(indices, u, vf, vend) - vf
                )

        self.indptr = indptr
        self.indices = indices
        self.arc_eids = arc_eids
        self.forward_start = forward_start
        self.edge_endpoints = edge_endpoints

    def _build_numpy(self, graph: Graph) -> None:
        assert np is not None
        index = self.index
        n = self.num_vertices
        m = self.num_edges
        # Iterating labels in id order makes the src column pre-sorted.
        degree_list: List[int] = []
        dst_list: List[int] = []
        extend = dst_list.extend
        get = index.__getitem__
        for label in self.labels:
            neighbors = graph.neighbors(label)
            degree_list.append(len(neighbors))
            extend(map(get, neighbors))
        degrees = np.array(degree_list, dtype=np.int64)
        src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        dst = np.array(dst_list, dtype=np.int64) if dst_list else np.empty(
            0, dtype=np.int64
        )
        # Sorting the combined key src*n + dst orders arcs by (src, dst) in
        # ONE flat sort: each src block owns the disjoint key range
        # [src*n, src*n + n), so a global sort cannot interleave blocks —
        # much cheaper than a two-pass lexsort.
        keys = src * n + dst
        keys.sort()
        dst = keys - src * n

        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])

        # Arcs are (src, dst)-sorted, so the forward subsequence (src < dst)
        # is already in lexicographic (lo, hi) order: a forward arc's rank in
        # that subsequence IS its edge id, and backward arcs find theirs by
        # one searchsorted over the (sorted) forward keys.
        forward = src < dst
        backward = ~forward
        arc_eids = np.empty(2 * m, dtype=np.int64)
        arc_eids[forward] = np.arange(m, dtype=np.int64)
        arc_eids[backward] = np.searchsorted(
            keys[forward], dst[backward] * n + src[backward]
        )
        edge_endpoints = np.empty(2 * m, dtype=np.int64)
        edge_endpoints[0::2] = src[forward]
        edge_endpoints[1::2] = dst[forward]

        # First forward neighbor per vertex: blocks are sorted, so the
        # backward neighbors (id < u) form each block's prefix — count them.
        backward_counts = np.bincount(src[backward], minlength=n)
        forward_start = indptr[:-1] + backward_counts

        # array(typecode, bytes) routes through frombytes — a straight
        # memcpy, an order of magnitude cheaper than tolist() round trips.
        self.indptr = array("q", indptr.tobytes())
        self.indices = array("q", dst.tobytes())
        self.arc_eids = array("q", arc_eids.astype(np.int64).tobytes())
        self.forward_start = array("q", forward_start.tobytes())
        self.edge_endpoints = array("q", edge_endpoints.tobytes())

    # ------------------------------------------------------------------ #
    # queries / decoding
    # ------------------------------------------------------------------ #

    def degree(self, u: int) -> int:
        """Degree of the vertex with integer id ``u``."""
        return self.indptr[u + 1] - self.indptr[u]

    def neighbors(self, u: int) -> Sequence[int]:
        """Sorted neighbor ids of ``u`` (a fresh array slice)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def edge_id(self, u: int, v: int) -> int:
        """Edge id of ``{u, v}`` given integer ids (ValueError if absent)."""
        lo, hi = (u, v) if u < v else (v, u)
        start, end = self.forward_start[lo], self.indptr[lo + 1]
        pos = bisect_left(self.indices, hi, start, end)
        if pos == end or self.indices[pos] != hi:
            raise ValueError(f"no edge between ids {u} and {v}")
        return self.arc_eids[pos]

    def edge_label(self, eid: int) -> Edge:
        """Canonical original-label edge for edge id ``eid``."""
        lo = self.edge_endpoints[2 * eid]
        hi = self.edge_endpoints[2 * eid + 1]
        return canonical_edge(self.labels[lo], self.labels[hi])

    def edge_labels(self) -> List[Edge]:
        """Canonical original-label edges indexed by edge id (length m)."""
        labels = self.labels
        if (
            np is not None
            and self.num_edges
            and set(map(type, labels)) == {int}
        ):
            # Homogeneous int labels (every generator and dataset loader):
            # canonicalize all pairs with two vectorized min/max passes and
            # build the tuples with one C-level zip.
            try:
                label_arr = np.array(labels, dtype=np.int64)
            except OverflowError:  # pragma: no cover - astronomically big ids
                pass
            else:
                endpoints = np.frombuffer(self.edge_endpoints, dtype=np.int64)
                a = label_arr[endpoints[0::2]]
                b = label_arr[endpoints[1::2]]
                lo = np.minimum(a, b).tolist()
                hi = np.maximum(a, b).tolist()
                return list(zip(lo, hi))
        pairs = iter(self.edge_endpoints.tolist())
        edges: List[Edge] = []
        append = edges.append
        for lo, hi in zip(pairs, pairs):
            a = labels[lo]
            b = labels[hi]
            try:  # inlined canonical_edge fast path (hot on decode)
                append((a, b) if a <= b else (b, a))  # type: ignore[operator]
            except TypeError:
                append(canonical_edge(a, b))
        return edges

    def __repr__(self) -> str:
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
