"""Flat-array kernels: triangle enumeration and Algorithm 1 peeling.

These are the hot loops behind ``backend="csr"``.  They operate purely on
the integer arrays of a :class:`~repro.fast.csr.CSRGraph` — no tuples, no
hashing, no sets — which is where the speedup over the reference
implementation comes from:

* :func:`triangle_count` / :func:`triangle_supports` — the *forward*
  algorithm over the degree-ordered CSR: for every forward arc ``(u, v)``
  the common forward neighbors are found by merge-intersecting two sorted
  adjacency suffixes.  Because the merge walks arc positions, the parallel
  ``arc_eids`` array yields the edge ids of all three triangle edges with
  no lookups.
* :func:`peel` — Algorithm 1 (paper §IV-A) on edge-indexed int arrays,
  dispatched through the :mod:`repro.fast.peelers` executor seam (layer L3):
  the default ``"scalar"`` executor is the classic ``bucket_start`` /
  ``edge_pos`` / ``sorted_edges`` position-array bucket queue
  (Batagelj–Zaveršnik style, O(1) pop and decrement) with a flag-array
  "processed" set; ``"vector"`` peels level-synchronously with batched
  numpy decrement passes.

All kernels return plain Python ``list`` objects: at these sizes list
indexing beats ``array``/numpy scalar indexing inside interpreted loops,
and callers immediately decode into the public dict-based API anyway.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import csr as _csr_mod
from .csr import CSRGraph


def _forward_wedges(csr: CSRGraph, lo: int = 0, hi: Optional[int] = None):
    """Vectorized forward-wedge join (numpy path).

    Returns ``(e_uv, e_uw, e_vw)`` int64 arrays, one entry per triangle, in
    exactly the order the pure merge loop discovers them: ascending by the
    first arc's position, then by the second endpoint.  For every forward
    arc position ``p`` the candidate apexes are the *later* positions of
    the same (sorted) block; a candidate closes a triangle iff ``(v, w)``
    is an edge, which one searchsorted over the sorted edge keys answers —
    and the found rank IS the edge id, because ids are assigned in sorted
    key order.

    ``lo``/``hi`` restrict the *first* vertex of each wedge to the id range
    ``[lo, hi)`` — the sharding primitive behind the ``parallel`` backend.
    Because every triangle is discovered exactly once, from its
    lowest-ranked vertex, concatenating the outputs of disjoint covering
    ranges in ascending range order reproduces the full-graph output
    bit for bit.
    """
    np = _csr_mod.np
    n = csr.num_vertices
    m = csr.num_edges
    if hi is None:
        hi = n
    indptr = np.frombuffer(csr.indptr, dtype=np.int64)
    dst = np.frombuffer(csr.indices, dtype=np.int64)
    eids = np.frombuffer(csr.arc_eids, dtype=np.int64)
    fstart = np.frombuffer(csr.forward_start, dtype=np.int64)
    endpoints = np.frombuffer(csr.edge_endpoints, dtype=np.int64)
    edge_keys = endpoints[0::2] * n + endpoints[1::2]

    block_ends = indptr[lo + 1 : hi + 1]
    degrees = block_ends - indptr[lo:hi]
    positions = np.arange(indptr[lo], indptr[hi], dtype=np.int64)
    block_end = np.repeat(block_ends, degrees)
    is_forward = positions >= np.repeat(fstart[lo:hi], degrees)
    counts = np.where(is_forward, block_end - positions - 1, 0)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    first = np.repeat(positions, counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    second = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts) + first + 1

    key = dst[first] * n + dst[second]
    loc = np.searchsorted(edge_keys, key)
    np.minimum(loc, m - 1, out=loc)
    hit = edge_keys[loc] == key
    return eids[first][hit], eids[second][hit], loc[hit]


def triangle_count(csr: CSRGraph) -> int:
    """Total number of triangles in the snapshot.

    >>> from ..graph.undirected import complete_graph
    >>> triangle_count(CSRGraph.from_graph(complete_graph(6)))
    20
    """
    if _csr_mod.np is not None:
        return 0 if csr.num_edges == 0 else len(_forward_wedges(csr)[0])
    indptr = csr.indptr.tolist()
    indices = csr.indices.tolist()
    fstart = csr.forward_start.tolist()
    total = 0
    for u in range(csr.num_vertices):
        a_end = indptr[u + 1]
        for p in range(fstart[u], a_end):
            v = indices[p]
            i, j = p + 1, fstart[v]
            b_end = indptr[v + 1]
            while i < a_end and j < b_end:
                wi = indices[i]
                wj = indices[j]
                if wi < wj:
                    i += 1
                elif wi > wj:
                    j += 1
                else:
                    total += 1
                    i += 1
                    j += 1
    return total


def triangle_supports(csr: CSRGraph) -> List[int]:
    """Per-edge triangle supports, indexed by edge id (length ``m``)."""
    supports, _ = supports_and_triangles(csr, record_triangles=False)
    return supports


def supports_and_triangles(
    csr: CSRGraph,
    *,
    record_triangles: bool = True,
    lo: int = 0,
    hi: Optional[int] = None,
) -> Tuple[List[int], List[int]]:
    """One forward pass: supports plus (optionally) the flat triangle list.

    Returns ``(supports, tri_edges)`` where ``supports[e]`` is the triangle
    support of edge id ``e`` and ``tri_edges`` stores each triangle as three
    consecutive edge ids (empty when ``record_triangles`` is false).  The
    peeling kernel consumes both, so the triangles found while counting
    supports are never recomputed.

    ``lo``/``hi`` restrict the scan to triangles whose lowest-ranked vertex
    falls in the id range ``[lo, hi)`` (default: the whole graph).  The
    returned ``supports`` list always has length ``m``: a shard may touch
    edges owned by other shards, and summing the per-shard lists
    element-wise plus concatenating the per-shard ``tri_edges`` in ascending
    range order reproduces the full-graph call exactly — the contract the
    ``parallel`` backend's merge step relies on.

    Both implementations (vectorized numpy join, pure merge loop) emit the
    same triangles in the same order, so downstream results are identical
    with and without numpy — the test suite asserts it.
    """
    if hi is None:
        hi = csr.num_vertices
    np = _csr_mod.np
    if np is not None:
        if csr.num_edges == 0:
            return [], []
        e_uv, e_uw, e_vw = _forward_wedges(csr, lo, hi)
        supports = np.bincount(
            np.concatenate((e_uv, e_uw, e_vw)), minlength=csr.num_edges
        )
        tri_edges: List[int] = (
            np.stack((e_uv, e_uw, e_vw), axis=1).ravel().tolist()
            if record_triangles
            else []
        )
        return supports.tolist(), tri_edges

    indptr = csr.indptr.tolist()
    indices = csr.indices.tolist()
    eids = csr.arc_eids.tolist()
    fstart = csr.forward_start.tolist()
    supports = [0] * csr.num_edges
    tri_edges: List[int] = []
    append = tri_edges.append
    for u in range(lo, hi):
        a_end = indptr[u + 1]
        for p in range(fstart[u], a_end):
            v = indices[p]
            e_uv = eids[p]
            i, j = p + 1, fstart[v]
            b_end = indptr[v + 1]
            while i < a_end and j < b_end:
                wi = indices[i]
                wj = indices[j]
                if wi < wj:
                    i += 1
                elif wi > wj:
                    j += 1
                else:
                    e_uw = eids[i]
                    e_vw = eids[j]
                    supports[e_uv] += 1
                    supports[e_uw] += 1
                    supports[e_vw] += 1
                    if record_triangles:
                        append(e_uv)
                        append(e_uw)
                        append(e_vw)
                    i += 1
                    j += 1
    return supports, tri_edges


def peel(
    csr: CSRGraph,
    precomputed: Optional[Tuple[List[int], List[int]]] = None,
    *,
    executor: str = "scalar",
    stats: Optional[dict] = None,
) -> Tuple[List[int], List[int]]:
    """Algorithm 1 over flat arrays: ``(kappa, processing_order)`` by edge id.

    ``precomputed`` may carry ``(supports, tri_edges)`` from
    :func:`supports_and_triangles` to skip the enumeration pass.

    The peel itself lives behind the :mod:`repro.fast.peelers` executor seam
    (kernel layer L3): ``executor="scalar"`` (default) runs the sequential
    bucket-queue walk that mirrors the reference implementation exactly —
    pop a minimum-bound edge, freeze its bound as :math:`\\kappa`, and for
    every triangle none of whose edges is processed yet, decrement the
    bounds of the two other edges when they exceed the frozen value
    (Theorem 1) — while ``executor="vector"`` peels level-synchronously
    with batched decrements (identical kappa, canonical ordering).
    ``stats`` (when given) receives the executor's
    :data:`~repro.fast.peelers.PeelStats`.
    """
    from .peelers import run_peel

    supports, tri_edges = (
        precomputed
        if precomputed is not None
        else supports_and_triangles(csr, record_triangles=True)
    )
    return run_peel(
        csr.num_edges, supports, tri_edges, executor=executor, stats=stats
    )
