"""Out-of-core partitioned CSR: the ``external`` backend (kernel layer L1-L3).

Every other backend — including the shared-memory ``parallel`` family —
materializes the full adjacency *and* the full triangle list in RAM, which
caps the reproduction far below the "graphs that don't fit in memory"
regime.  This module keeps both on disk:

* **Spill format** (:data:`SPILL_FORMAT`): one binary int64 file per
  kernel column (:data:`~repro.fast.csr.CSRGraph.ARRAY_FIELDS`) under a
  spill directory, described by a ``manifest.json`` carrying the format
  version, per-column byte counts and CRC32s, and the partition table — a
  list of vertex ranges ``[lo, hi)`` cut on the arc-count prefix (the
  :func:`~repro.fast.parallel.shard_ranges` policy) with a CRC32 over each
  partition's slice of the ``indices`` column.  The manifest is written
  last via tmp+rename, so a crashed build can never leave a directory that
  passes :meth:`ExternalCSR.open` validation.
* **mmap'd store seam**: :meth:`ExternalCSR.open` maps each column and
  rehydrates a :class:`~repro.fast.csr.CSRGraph` through
  :meth:`~repro.fast.csr.CSRGraph.from_arrays` with ``memoryview`` stores
  over the maps — the same L1 pluggable-store contract the shared-memory
  transport uses, so the enumeration kernels run unchanged on disk-backed
  columns.
* **Partitioned enumeration**: each partition ``[lo, hi)`` is enumerated
  with the unchanged :func:`~repro.fast.kernels.supports_and_triangles`
  sharding contract (every triangle is discovered exactly once, from its
  lowest-ranked vertex), in arc-bounded chunks so numpy temporaries stay
  small; each partition's triangles are spilled to a scratch file instead
  of accumulating as an in-RAM list.  Only the O(n + m) support/bound
  arrays stay resident — the semi-external memory model of *Truss
  Decomposition in Massive Networks* (PAPERS.md).
* **Bound-based partition admission**: when a ``floor`` is requested,
  partitions are admitted through the degree/h-index kappa upper bound of
  *Bounds and algorithms for graph trusses* (PAPERS.md):
  :math:`\\kappa(e=\\{u,v\\}) \\le \\min(h(u), h(v)) - 1` where ``h(v)``
  is the h-index of ``v``'s neighbor-degree list.  Every triangle owned by
  partition ``[lo, hi)`` has two edges incident to its minimum vertex
  ``w in [lo, hi)``, so if ``max h(w) - 1 < floor`` the partition cannot
  contribute a triangle of the floor-core and is skipped before any disk
  I/O (``bound_prune_hits``).  Dropped triangles all contain an edge with
  ``kappa < floor``, so kappa values ``>= floor`` are exact (the classical
  core-containment argument); ``floor=0`` — the engine default — admits
  everything and is bit-identical to ``csr``.
* **Reconciliation peel**: a per-partition, level-synchronous peel.  Each
  sub-round scans every live partition's triangle spill for unconsumed
  triangles touching the current frontier, aggregates their support
  decrements globally with the Theorem 1 guard on the *pre-sub-round*
  bounds, then applies them with the clamp — iterating boundary demotions
  (an edge demoted by one partition's triangles re-enters the frontier
  seen by every other partition on the next scan) to a fixed point.  This
  replicates :class:`~repro.fast.peelers.VectorPeel` decision for
  decision — the set of triangles hit per sub-round and the aggregated
  per-edge decrement counts are identical, and application order within a
  sub-round is commutative — so kappa is bit-identical to ``csr`` (and
  the reference) and the processing order is bit-identical to the
  canonical ``csr-vec`` order (ascending level, sub-round, edge id) on
  every graph.  The conformance matrix asserts both.

Lifetime rules (mirroring :mod:`repro.fast.shm`): triangle spill files
live in a ``scratch-<pid>-<token>`` subdirectory removed in a ``finally``
on every exit path, and :func:`cleanup_stale` — run on every build and
open — removes scratch directories whose recorded pid is dead, so a
SIGKILL'd run cannot leak spill files past the next open.

All failure modes raise the typed :class:`~repro.exceptions.SpillError`
naming the offending path; see tests/test_external_backend.py for the
fault matrix.
"""

from __future__ import annotations

import json
import mmap
import os
import shutil
import tempfile
import zlib
from array import array
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import SpillError
from . import csr as _csr_mod
from .csr import CSRGraph
from .kernels import supports_and_triangles

__all__ = [
    "DEFAULT_PARTITIONS",
    "SPILL_FORMAT",
    "ExternalCSR",
    "ExternalInfo",
    "cleanup_stale",
    "decompose_spill",
    "external_decomposition",
    "inject_boundary_drop_bug",
    "kappa_upper_bounds",
    "spill_edges",
]

#: On-disk spill format version; bump on layout changes.  ``open`` refuses
#: manifests carrying any other value.
SPILL_FORMAT = "repro.spill-csr/1"

#: Manifest file name inside a spill directory.
MANIFEST_NAME = "manifest.json"

#: Partition count when neither ``partitions`` nor ``memory_budget`` pins
#: one — small enough to keep per-partition overhead negligible, large
#: enough that every multi-shard code path (boundary reconciliation,
#: partition retirement) is exercised by default.
DEFAULT_PARTITIONS = 4

#: Arc-count ceiling per enumeration chunk: bounds the size of the numpy
#: temporaries `_forward_wedges` allocates (a few int64 arrays of this
#: order), independent of partition size.
ENUM_CHUNK_ARCS = 1 << 18

#: Triangles per peel-scan chunk: bounds the transient row block read from
#: a partition's triangle spill per step.
PEEL_CHUNK_TRIS = 1 << 17

#: Per-run telemetry: ``{"partitions": int, "admitted": int, "passes": int,
#: "bytes_mapped": int, "bound_prune_hits": int}``.
ExternalInfo = Dict[str, int]

#: Test hook (see tests/test_external_backend.py): SIGKILL-style crash in
#: the middle of enumeration, after the scratch directory exists.
_CRASH_ENV = "_REPRO_EXTERNAL_CRASH_TEST"

_BOUNDARY_DROP_BUG = False


class inject_boundary_drop_bug:
    """Context manager: drop boundary demotions at the partition seams.

    While active, the reconciliation peel consumes frontier-hit triangles
    found in partitions other than the first *without* applying their
    support demotions — exactly the class of bug a missing seam
    reconciliation would produce: demotions discovered while scanning a
    later partition never propagate back, bounds stay too high, and some
    kappa comes out too large whenever triangles span a seam.  The fuzz
    smoke-check proves the differential harness detects and shrinks it;
    see docs/testing.md.
    """

    def __enter__(self) -> "inject_boundary_drop_bug":
        global _BOUNDARY_DROP_BUG
        _BOUNDARY_DROP_BUG = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _BOUNDARY_DROP_BUG
        _BOUNDARY_DROP_BUG = False


# ---------------------------------------------------------------------- #
# scratch-directory lifetime
# ---------------------------------------------------------------------- #


def _scratch_prefix() -> str:
    return "scratch-"


def cleanup_stale(spill_dir: str) -> List[str]:
    """Remove scratch directories whose recorded pid is dead.

    Every triangle-spill scratch directory is named
    ``scratch-<pid>-<token>``; a SIGKILL'd run leaves its directory
    behind, and the next :meth:`ExternalCSR.build`/:meth:`ExternalCSR.open`
    calls this to reap it.  Returns the removed paths (for tests/audits).
    """
    removed: List[str] = []
    try:
        entries = os.listdir(spill_dir)
    except OSError:
        return removed
    for name in entries:
        if not name.startswith(_scratch_prefix()):
            continue
        parts = name.split("-")
        try:
            pid = int(parts[1])
        except (IndexError, ValueError):
            continue
        if pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            path = os.path.join(spill_dir, name)
            shutil.rmtree(path, ignore_errors=True)
            removed.append(path)
        except OSError:
            continue  # pid alive but not ours (EPERM): leave it alone
    return removed


def _make_scratch(spill_dir: str) -> str:
    """Create this run's scratch directory (SpillError on a dead spill dir)."""
    token = os.urandom(4).hex()
    path = os.path.join(spill_dir, f"{_scratch_prefix()}{os.getpid()}-{token}")
    try:
        os.makedirs(path)
    except OSError as exc:
        raise SpillError(
            spill_dir, f"cannot create triangle scratch directory: {exc}"
        ) from exc
    return path


# ---------------------------------------------------------------------- #
# spill directory: build / open / validate
# ---------------------------------------------------------------------- #


def _column_files() -> Tuple[str, ...]:
    return tuple(f"{field}.bin" for field in CSRGraph.ARRAY_FIELDS)


def _write_column(path: str, store: object) -> Tuple[int, int]:
    """Write one int64 column file; returns ``(nbytes, crc32)``."""
    if isinstance(store, memoryview):
        data = store.cast("B").tobytes()
    elif isinstance(store, array):
        data = store.tobytes()
    else:  # numpy array or bytes-like
        data = bytes(store)  # pragma: no cover - stores are array/memoryview
    try:
        with open(path, "wb") as fh:
            fh.write(data)
    except OSError as exc:
        raise SpillError(path, f"cannot write column: {exc}") from exc
    return len(data), zlib.crc32(data)


def _partition_ranges(
    indptr: Sequence[int], num_vertices: int, parts: int
) -> List[Tuple[int, int]]:
    """Vertex-range partitions cut on the arc-count prefix.

    Same policy as :func:`repro.fast.parallel.shard_ranges` (balanced arc
    scans, deduplicated degenerate cuts, exact tiling of ``[0, n)``),
    reimplemented over a bare ``indptr`` sequence so the spill builder can
    run before any :class:`CSRGraph` exists.
    """
    n = num_vertices
    if n == 0 or parts <= 1:
        return [(0, n)] if n else []
    total_arcs = indptr[n]
    if total_arcs == 0:
        return [(0, n)]
    parts = min(parts, n)
    cuts = [0]
    for i in range(1, parts):
        target = (total_arcs * i) // parts
        cut = bisect_left(indptr, target)
        if cut > cuts[-1] and cut < n:
            cuts.append(cut)
    cuts.append(n)
    return list(zip(cuts[:-1], cuts[1:]))


def _partition_count(
    payload_nbytes: int, num_vertices: int, memory_budget: Optional[int]
) -> int:
    """How many partitions a spill should carry.

    With a budget, aim for each partition's column slice plus its share of
    triangle scan state at roughly a third of the budget; without one, the
    default keeps the reconciliation machinery exercised.
    """
    if memory_budget is None or memory_budget <= 0:
        return DEFAULT_PARTITIONS
    per_part = max(1, memory_budget // 3)
    want = -(-payload_nbytes // per_part)  # ceil
    return max(1, min(num_vertices or 1, max(DEFAULT_PARTITIONS, want)))


def _crc_of_file(path: str, start: int = 0, length: Optional[int] = None) -> int:
    """Streaming CRC32 of ``path[start:start+length]`` (4 MiB chunks)."""
    crc = 0
    try:
        with open(path, "rb") as fh:
            fh.seek(start)
            todo = length
            while True:
                want = 1 << 22 if todo is None else min(1 << 22, todo)
                if want == 0:
                    break
                chunk = fh.read(want)
                if not chunk:
                    break
                crc = zlib.crc32(chunk, crc)
                if todo is not None:
                    todo -= len(chunk)
    except OSError as exc:
        raise SpillError(path, f"cannot read column: {exc}") from exc
    return crc


def _jsonable_labels(labels: Sequence[object]) -> Optional[List[object]]:
    """Labels as a JSON list when round-trippable, else None."""
    if labels and all(
        isinstance(lab, (int, str)) and not isinstance(lab, bool)
        for lab in labels
    ):
        return list(labels)
    return None


class _MappedColumn:
    """One mmap'd column file exposed as an int64 ``memoryview`` store."""

    __slots__ = ("path", "_file", "_mmap", "view", "nbytes")

    def __init__(self, path: str, nbytes: int) -> None:
        self.path = path
        self.nbytes = nbytes
        try:
            self._file = open(path, "rb")
        except OSError as exc:
            raise SpillError(path, f"cannot open column: {exc}") from exc
        if nbytes:
            try:
                self._mmap = mmap.mmap(
                    self._file.fileno(), nbytes, access=mmap.ACCESS_READ
                )
            except (OSError, ValueError) as exc:
                self._file.close()
                raise SpillError(path, f"cannot map column: {exc}") from exc
            self.view = memoryview(self._mmap).cast("q")
        else:
            self._mmap = None
            self.view = memoryview(b"").cast("q")

    def release_pages(self) -> None:
        """Hint the kernel to drop this column's resident pages."""
        if self._mmap is not None and hasattr(self._mmap, "madvise"):
            try:
                self._mmap.madvise(mmap.MADV_DONTNEED)
            except (OSError, ValueError):  # pragma: no cover - advisory only
                pass

    def close(self) -> None:
        try:
            self.view.release()
        except BufferError:  # pragma: no cover - a kernel still holds a view
            pass
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:  # pragma: no cover - exported buffer lingers
                pass
        self._file.close()


class ExternalCSR:
    """A CSR snapshot whose kernel columns live in mmap'd spill files.

    ``csr`` is a regular :class:`CSRGraph` whose five stores are
    ``memoryview`` casts over the maps — any kernel that honors the L1
    store contract runs on it unchanged.  ``partitions`` is the manifest's
    partition table; :func:`decompose_spill` drives the out-of-core
    decomposition over it.
    """

    __slots__ = ("spill_dir", "csr", "partitions", "partition_crcs",
                 "_columns", "manifest")

    def __init__(
        self,
        spill_dir: str,
        csr: CSRGraph,
        partitions: List[Tuple[int, int]],
        partition_crcs: List[int],
        columns: Dict[str, _MappedColumn],
        manifest: Dict[str, object],
    ) -> None:
        self.spill_dir = spill_dir
        self.csr = csr
        self.partitions = partitions
        self.partition_crcs = partition_crcs
        self._columns = columns
        self.manifest = manifest

    # -------------------------------------------------------------- #
    # construction
    # -------------------------------------------------------------- #

    @classmethod
    def build(
        cls,
        graph: "object",
        spill_dir: str,
        *,
        partitions: Optional[int] = None,
        memory_budget: Optional[int] = None,
    ) -> "ExternalCSR":
        """Freeze ``graph`` into a spill directory and open it mmap'd.

        The in-RAM :class:`CSRGraph` build is reused (the graph is already
        resident when this path runs — the engine's entry point); columns
        are written, the manifest last via tmp+rename, then the arrays are
        dropped in favor of the maps.  For graphs too large to ever hold
        in RAM, build the spill with :func:`spill_edges` instead.
        """
        os.makedirs(spill_dir, exist_ok=True)
        cleanup_stale(spill_dir)
        snap = CSRGraph.from_graph(graph)
        parts = partitions if partitions is not None else _partition_count(
            snap.payload_nbytes(), snap.num_vertices, memory_budget
        )
        ranges = _partition_ranges(snap.indptr, snap.num_vertices, parts)
        columns_meta: Dict[str, Dict[str, object]] = {}
        for field in CSRGraph.ARRAY_FIELDS:
            fname = f"{field}.bin"
            nbytes, crc = _write_column(
                os.path.join(spill_dir, fname), getattr(snap, field)
            )
            columns_meta[field] = {"file": fname, "nbytes": nbytes,
                                   "crc32": crc}
        part_meta = []
        indices_path = os.path.join(spill_dir, "indices.bin")
        for lo, hi in ranges:
            start = 8 * snap.indptr[lo]
            length = 8 * (snap.indptr[hi] - snap.indptr[lo])
            part_meta.append({
                "lo": lo,
                "hi": hi,
                "crc32": _crc_of_file(indices_path, start, length),
            })
        manifest = {
            "format": SPILL_FORMAT,
            "num_vertices": snap.num_vertices,
            "num_edges": snap.num_edges,
            "columns": columns_meta,
            "partitions": part_meta,
            "labels": _jsonable_labels(snap.labels),
        }
        _write_manifest(spill_dir, manifest)
        ext = cls.open(spill_dir, verify=False)
        # The maps are fresh copies of arrays we just held — checksums are
        # tautologically valid, but the in-RAM labels may not have survived
        # the manifest (non-JSON labels): carry them over.
        ext.csr.labels = snap.labels
        ext.csr.index = snap.index
        return ext

    @classmethod
    def open(cls, spill_dir: str, *, verify: bool = True) -> "ExternalCSR":
        """Map an existing spill directory, validating the manifest.

        ``verify=True`` (default) additionally streams every column
        through CRC32 — one sequential O(m/B) I/O pass; partition
        checksums over ``indices`` are *always* re-checked lazily at
        admission time by :func:`decompose_spill`, so corruption appearing
        after open still surfaces as a typed error.
        """
        cleanup_stale(spill_dir)
        manifest_path = os.path.join(spill_dir, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise SpillError(manifest_path, "manifest missing")
        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except OSError as exc:
            raise SpillError(manifest_path, f"cannot read manifest: {exc}") \
                from exc
        except json.JSONDecodeError as exc:
            raise SpillError(manifest_path, f"invalid manifest JSON: {exc}") \
                from exc
        if not isinstance(manifest, dict):
            raise SpillError(manifest_path, "manifest is not a JSON object")
        fmt = manifest.get("format")
        if fmt != SPILL_FORMAT:
            raise SpillError(
                manifest_path,
                f"unsupported spill format {fmt!r}; expected "
                f"{SPILL_FORMAT!r}",
            )
        try:
            n = int(manifest["num_vertices"])
            m = int(manifest["num_edges"])
            columns_meta = manifest["columns"]
            part_meta = manifest["partitions"]
        except (KeyError, TypeError, ValueError) as exc:
            raise SpillError(manifest_path, f"malformed manifest: {exc}") \
                from exc
        columns: Dict[str, _MappedColumn] = {}
        try:
            for field in CSRGraph.ARRAY_FIELDS:
                meta = columns_meta.get(field) if isinstance(
                    columns_meta, dict) else None
                if not isinstance(meta, dict):
                    raise SpillError(
                        manifest_path, f"manifest lacks column {field!r}"
                    )
                path = os.path.join(spill_dir, str(meta.get("file")))
                nbytes = int(meta.get("nbytes", -1))
                try:
                    actual = os.path.getsize(path)
                except OSError as exc:
                    raise SpillError(path, f"column missing: {exc}") from exc
                if actual != nbytes:
                    raise SpillError(
                        path,
                        f"truncated column: expected {nbytes} bytes, "
                        f"found {actual}",
                    )
                if verify and _crc_of_file(path) != int(meta.get("crc32", -1)):
                    raise SpillError(path, "column checksum mismatch")
                columns[field] = _MappedColumn(path, nbytes)
        except Exception:
            for col in columns.values():
                col.close()
            raise
        labels = manifest.get("labels")
        if labels is None:
            labels = list(range(n))
        snap = CSRGraph.from_arrays(
            n, m,
            {field: columns[field].view for field in CSRGraph.ARRAY_FIELDS},
            labels=labels,
        )
        ranges: List[Tuple[int, int]] = []
        crcs: List[int] = []
        for entry in part_meta if isinstance(part_meta, list) else ():
            try:
                ranges.append((int(entry["lo"]), int(entry["hi"])))
                crcs.append(int(entry["crc32"]))
            except (KeyError, TypeError, ValueError) as exc:
                for col in columns.values():
                    col.close()
                raise SpillError(
                    manifest_path, f"malformed partition table: {exc}"
                ) from exc
        return cls(spill_dir, snap, ranges, crcs, columns, manifest)

    # -------------------------------------------------------------- #
    # introspection / lifetime
    # -------------------------------------------------------------- #

    def bytes_mapped(self) -> int:
        """Total bytes of column files currently mapped."""
        return sum(col.nbytes for col in self._columns.values())

    def verify_partition(self, index: int) -> None:
        """Re-check one partition's ``indices``-slice checksum (admission).

        Raises :class:`SpillError` naming the ``indices`` column on a
        mismatch — the lazy half of the validation story: corruption that
        appears *after* open (a flaky disk, an overwritten file) is caught
        before the partition's triangles reach the peel.
        """
        lo, hi = self.partitions[index]
        indptr = self.csr.indptr
        start, end = indptr[lo], indptr[hi]
        path = self._columns["indices"].path
        crc = _crc_of_file(path, 8 * start, 8 * (end - start))
        if crc != self.partition_crcs[index]:
            raise SpillError(
                path,
                f"partition {index} [{lo}, {hi}) checksum mismatch "
                f"(expected {self.partition_crcs[index]}, found {crc})",
            )

    def release_pages(self) -> None:
        """Drop resident pages of every column map (RSS control)."""
        for col in self._columns.values():
            col.release_pages()

    def close(self) -> None:
        """Unmap every column.  The snapshot must not be used afterwards."""
        for col in self._columns.values():
            col.close()

    def __enter__(self) -> "ExternalCSR":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ExternalCSR(|V|={self.csr.num_vertices}, "
            f"|E|={self.csr.num_edges}, partitions={len(self.partitions)}, "
            f"dir={self.spill_dir!r})"
        )


def _write_manifest(spill_dir: str, manifest: Dict[str, object]) -> None:
    """Write the manifest atomically (tmp + rename), always last."""
    path = os.path.join(spill_dir, MANIFEST_NAME)
    tmp = path + ".tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
        os.replace(tmp, path)
    except OSError as exc:
        raise SpillError(path, f"cannot write manifest: {exc}") from exc


# ---------------------------------------------------------------------- #
# bounded-memory build from an edge stream
# ---------------------------------------------------------------------- #


def _write_run(scratch: str, tag: str, seq: int, keys: "object") -> str:
    """Write one sorted run of int64 keys; returns its path."""
    path = os.path.join(scratch, f"run-{tag}-{seq}.bin")
    np = _csr_mod.np
    try:
        with open(path, "wb") as fh:
            if np is not None and not isinstance(keys, array):
                keys.tofile(fh)
            else:
                keys.tofile(fh)
    except OSError as exc:
        raise SpillError(path, f"cannot write sort run: {exc}") from exc
    return path


def _iter_run(path: str, chunk: int = 1 << 16):
    """Stream int64 keys back out of a run file."""
    with open(path, "rb") as fh:
        while True:
            buf = array("q")
            try:
                buf.fromfile(fh, chunk)
            except EOFError:
                pass
            if not buf:
                return
            yield from buf


def _merge_runs(paths: List[str], *, dedup: bool):
    """K-way merge of sorted runs (optionally dropping duplicate keys)."""
    import heapq

    merged = heapq.merge(*map(_iter_run, paths))
    if not dedup:
        yield from merged
        return
    prev = None
    for key in merged:
        if key != prev:
            prev = key
            yield key


def spill_edges(
    edges: "object",
    num_vertices: int,
    spill_dir: str,
    *,
    partitions: Optional[int] = None,
    memory_budget: Optional[int] = None,
    chunk_arcs: int = 1 << 20,
) -> ExternalCSR:
    """Build a spill directory from an edge *stream* in bounded memory.

    ``edges`` yields integer pairs ``(u, v)`` with ``0 <= u, v <
    num_vertices``; duplicates and self-loops are dropped.  Resident
    memory stays O(n + chunk): degrees and offsets are the only full-length
    arrays, and the arc set is ordered by chunked external sorting
    (sorted runs + heap merge) — never materialized whole.  The vertex
    relabeling is the CSR convention (stable ascending degree, ties by
    id), so for a :class:`~repro.graph.undirected.Graph` whose insertion
    order is id order the result is bit-identical to
    :meth:`ExternalCSR.build`.  This is the entry point for graphs that
    never fit in RAM — the scaling benchmark decomposes a stream ~10x the
    livejournal stand-in through it under a capped RSS budget.
    """
    np = _csr_mod.np
    os.makedirs(spill_dir, exist_ok=True)
    cleanup_stale(spill_dir)
    n = num_vertices
    scratch = _make_scratch(spill_dir)
    try:
        # Pass 1: external sort + dedup of canonical arc keys lo*n + hi.
        runs: List[str] = []
        buf = array("q")
        seq = 0
        for u, v in edges:
            if u == v:
                continue
            lo, hi = (u, v) if u < v else (v, u)
            if lo < 0 or hi >= n:
                raise ValueError(
                    f"edge ({u}, {v}) outside vertex range [0, {n})"
                )
            buf.append(lo * n + hi)
            if len(buf) >= chunk_arcs:
                runs.append(_write_run(scratch, "canon", seq, _sort(buf)))
                seq += 1
                buf = array("q")
        if buf:
            runs.append(_write_run(scratch, "canon", seq, _sort(buf)))

        # Merged+deduped canonical arcs -> degree counts and a clean file.
        degrees = array("q", bytes(8 * n)) if np is None else np.zeros(
            n, dtype=np.int64
        )
        canon_path = os.path.join(scratch, "canonical.bin")
        m = 0
        with open(canon_path, "wb") as fh:
            out = array("q")
            for key in _merge_runs(runs, dedup=True):
                lo, hi = divmod(key, n)
                degrees[lo] += 1
                degrees[hi] += 1
                out.append(key)
                m += 1
                if len(out) >= chunk_arcs:
                    out.tofile(fh)
                    out = array("q")
            if out:
                out.tofile(fh)
        for path in runs:
            os.remove(path)

        # Degree-order relabel: rank[v] = new id (stable by (degree, id)).
        if np is not None:
            order = np.argsort(degrees, kind="stable")
            rank = np.empty(n, dtype=np.int64)
            rank[order] = np.arange(n, dtype=np.int64)
            labels = order.tolist()
            rank_get = rank.__getitem__
        else:
            labels = sorted(range(n), key=degrees.__getitem__)
            rank_arr = array("q", bytes(8 * n))
            for new_id, old in enumerate(labels):
                rank_arr[old] = new_id
            rank_get = rank_arr.__getitem__

        # Pass 2: relabeled directed arc keys, externally sorted again.
        runs = []
        seq = 0
        buf = array("q")
        for key in _iter_run(canon_path):
            lo, hi = divmod(key, n)
            a, b = rank_get(lo), rank_get(hi)
            buf.append(a * n + b)
            buf.append(b * n + a)
            if len(buf) >= chunk_arcs:
                runs.append(_write_run(scratch, "arc", seq, _sort(buf)))
                seq += 1
                buf = array("q")
        if buf:
            runs.append(_write_run(scratch, "arc", seq, _sort(buf)))
        os.remove(canon_path)

        # Merge pass A: indices column + per-vertex arc/backward counts.
        counts = array("q", bytes(8 * n))
        backward = array("q", bytes(8 * n))
        indices_path = os.path.join(spill_dir, "indices.bin")
        indices_crc = 0
        with open(indices_path, "wb") as fh:
            out = array("q")
            for key in _merge_runs(runs, dedup=False):
                src, dst = divmod(key, n)
                counts[src] += 1
                if dst < src:
                    backward[src] += 1
                out.append(dst)
                if len(out) >= chunk_arcs:
                    data = out.tobytes()
                    fh.write(data)
                    indices_crc = zlib.crc32(data, indices_crc)
                    out = array("q")
            data = out.tobytes()
            fh.write(data)
            indices_crc = zlib.crc32(data, indices_crc)

        indptr = array("q", bytes(8 * (n + 1)))
        forward_start = array("q", bytes(8 * n))
        eid_base = array("q", bytes(8 * n))
        total = 0
        eids_before = 0
        for u in range(n):
            indptr[u] = total
            forward_start[u] = total + backward[u]
            eid_base[u] = eids_before
            eids_before += counts[u] - backward[u]
            total += counts[u]
        indptr[n] = total

        # Merge pass B: arc_eids (backward arcs bisect the on-disk forward
        # suffix of their smaller endpoint) + edge_endpoints.
        with open(indices_path, "rb") as ifh:
            if total:
                imm = mmap.mmap(ifh.fileno(), 8 * total,
                                access=mmap.ACCESS_READ)
                iview = memoryview(imm).cast("q")
            else:
                imm = None
                iview = memoryview(b"").cast("q")
            try:
                eids_path = os.path.join(spill_dir, "arc_eids.bin")
                ends_path = os.path.join(spill_dir, "edge_endpoints.bin")
                eids_crc = 0
                ends_crc = 0
                next_eid = 0
                with open(eids_path, "wb") as efh, open(ends_path,
                                                        "wb") as pfh:
                    ebuf = array("q")
                    pbuf = array("q")
                    for key in _merge_runs(runs, dedup=False):
                        src, dst = divmod(key, n)
                        if src < dst:
                            ebuf.append(next_eid)
                            pbuf.append(src)
                            pbuf.append(dst)
                            next_eid += 1
                        else:
                            vf, vend = forward_start[dst], indptr[dst + 1]
                            pos = bisect_left(iview, src, vf, vend)
                            ebuf.append(eid_base[dst] + (pos - vf))
                        if len(ebuf) >= chunk_arcs:
                            data = ebuf.tobytes()
                            efh.write(data)
                            eids_crc = zlib.crc32(data, eids_crc)
                            ebuf = array("q")
                        if len(pbuf) >= chunk_arcs:
                            data = pbuf.tobytes()
                            pfh.write(data)
                            ends_crc = zlib.crc32(data, ends_crc)
                            pbuf = array("q")
                    data = ebuf.tobytes()
                    efh.write(data)
                    eids_crc = zlib.crc32(data, eids_crc)
                    data = pbuf.tobytes()
                    pfh.write(data)
                    ends_crc = zlib.crc32(data, ends_crc)
            finally:
                try:
                    iview.release()
                finally:
                    if imm is not None:
                        imm.close()
        for path in runs:
            os.remove(path)
        assert m == next_eid, "arc merge lost forward arcs"

        indptr_nbytes, indptr_crc = _write_column(
            os.path.join(spill_dir, "indptr.bin"), indptr
        )
        fstart_nbytes, fstart_crc = _write_column(
            os.path.join(spill_dir, "forward_start.bin"), forward_start
        )
        parts = partitions if partitions is not None else _partition_count(
            8 * (n + 1 + n + total + total + 2 * m), n, memory_budget
        )
        ranges = _partition_ranges(indptr, n, parts)
        part_meta = []
        for lo, hi in ranges:
            part_meta.append({
                "lo": lo,
                "hi": hi,
                "crc32": _crc_of_file(
                    indices_path, 8 * indptr[lo],
                    8 * (indptr[hi] - indptr[lo])
                ),
            })
        manifest = {
            "format": SPILL_FORMAT,
            "num_vertices": n,
            "num_edges": m,
            "columns": {
                "indptr": {"file": "indptr.bin", "nbytes": indptr_nbytes,
                           "crc32": indptr_crc},
                "indices": {"file": "indices.bin", "nbytes": 8 * total,
                            "crc32": indices_crc},
                "arc_eids": {"file": "arc_eids.bin", "nbytes": 8 * total,
                             "crc32": eids_crc},
                "forward_start": {"file": "forward_start.bin",
                                  "nbytes": fstart_nbytes,
                                  "crc32": fstart_crc},
                "edge_endpoints": {"file": "edge_endpoints.bin",
                                   "nbytes": 16 * m, "crc32": ends_crc},
            },
            "partitions": part_meta,
            "labels": labels,
        }
        _write_manifest(spill_dir, manifest)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return ExternalCSR.open(spill_dir, verify=False)


def _sort(buf: array) -> "object":
    """Sort one run buffer (numpy when available, else list sort)."""
    np = _csr_mod.np
    if np is not None:
        arr = np.frombuffer(buf, dtype=np.int64).copy()
        arr.sort()
        return arr
    out = array("q", sorted(buf))
    return out


# ---------------------------------------------------------------------- #
# kappa upper bounds (partition admission)
# ---------------------------------------------------------------------- #


def kappa_upper_bounds(csr: CSRGraph) -> List[int]:
    """Per-vertex h-index bound: ``kappa(e={u,v}) <= min(h(u), h(v)) - 1``.

    ``h(v)`` is the h-index of ``v``'s neighbor-degree multiset (*Bounds
    and algorithms for graph trusses*): at most ``h`` neighbors of ``v``
    have degree ``>= h``.  Any triangle through ``e`` needs a common
    neighbor ``w`` adjacent to both endpoints, so the triangles of ``e``
    inside any subgraph where every edge keeps ``>= k`` triangles are
    capped by ``min(h(u), h(v)) - 1 >= k`` — the admission test
    :func:`decompose_spill` applies per partition when a ``floor`` is
    requested.
    """
    indptr = csr.indptr
    indices = csr.indices
    n = csr.num_vertices
    degrees = [indptr[v + 1] - indptr[v] for v in range(n)]
    bounds: List[int] = []
    for v in range(n):
        neigh = sorted(
            (degrees[w] for w in indices[indptr[v]:indptr[v + 1]]),
            reverse=True,
        )
        h = 0
        for i, d in enumerate(neigh):
            if d >= i + 1:
                h = i + 1
            else:
                break
        bounds.append(h)
    return bounds


# ---------------------------------------------------------------------- #
# partitioned enumeration (triangles spilled per partition)
# ---------------------------------------------------------------------- #


def _enum_chunks(
    csr: CSRGraph, lo: int, hi: int, max_arcs: int
) -> List[Tuple[int, int]]:
    """Split ``[lo, hi)`` on arc counts so each chunk scans ``<= max_arcs``
    (single-vertex chunks may exceed it — a hub's block is indivisible)."""
    indptr = csr.indptr
    chunks: List[Tuple[int, int]] = []
    start = lo
    while start < hi:
        target = indptr[start] + max_arcs
        end = bisect_left(indptr, target, start + 1, hi)
        if end <= start:
            end = start + 1
        chunks.append((start, end))
        start = end
    return chunks


def _enumerate_partition(
    csr: CSRGraph,
    lo: int,
    hi: int,
    out_path: str,
    supports: "object",
) -> int:
    """Enumerate triangles owned by ``[lo, hi)``, spilling them to disk.

    Accumulates into the full-length ``supports`` array and appends each
    triangle's three edge ids to ``out_path`` — in exactly the order
    :func:`supports_and_triangles` emits them, so concatenating partition
    files in ascending range order reproduces the in-RAM triangle list bit
    for bit.  Returns the triangle count.
    """
    np = _csr_mod.np
    count = 0
    try:
        with open(out_path, "wb") as fh:
            if np is not None:
                from .kernels import _forward_wedges

                for sub_lo, sub_hi in _enum_chunks(csr, lo, hi,
                                                   ENUM_CHUNK_ARCS):
                    e_uv, e_uw, e_vw = _forward_wedges(csr, sub_lo, sub_hi)
                    if e_uv.size == 0:
                        continue
                    tri = np.stack((e_uv, e_uw, e_vw), axis=1).ravel()
                    np.add.at(supports, tri, 1)
                    tri.tofile(fh)
                    count += int(e_uv.size)
            else:
                # Pure path: the kernels' merge loop, streamed to disk in
                # bounded buffers (enumeration order is identical to the
                # numpy join — the substrate contract).
                _, tri_edges = supports_and_triangles(csr, lo=lo, hi=hi)
                for e in tri_edges:
                    supports[e] += 1
                array("q", tri_edges).tofile(fh)
                count = len(tri_edges) // 3
    except OSError as exc:
        raise SpillError(out_path, f"cannot write triangle spill: {exc}") \
            from exc
    return count


# ---------------------------------------------------------------------- #
# reconciliation peel (level-synchronous over partition spill files)
# ---------------------------------------------------------------------- #


def _external_peel_numpy(
    m: int,
    supports: "object",
    tri_files: List[Tuple[str, int]],
    stats: Dict[str, object],
    info: ExternalInfo,
    memory_budget: Optional[int],
) -> Tuple[List[int], List[int]]:
    np = _csr_mod.np
    bounds = np.asarray(supports, dtype=np.int64).copy()
    processed = np.zeros(m, dtype=bool)
    in_frontier = np.zeros(m, dtype=bool)
    kappa = np.zeros(m, dtype=np.int64)
    order_chunks: List[object] = []
    maps: List[Optional[object]] = []
    consumed: List[Optional[object]] = []
    live: List[int] = []
    total_tri_bytes = 0
    for path, count in tri_files:
        if count:
            try:
                mmarr = np.memmap(path, dtype=np.int64, mode="r",
                                  shape=(count, 3))
            except (OSError, ValueError) as exc:
                raise SpillError(
                    path, f"cannot map triangle spill: {exc}"
                ) from exc
            maps.append(mmarr)
            consumed.append(np.zeros(count, dtype=bool))
            total_tri_bytes += 24 * count
        else:
            maps.append(None)
            consumed.append(None)
        live.append(count)
    release_each_pass = (
        memory_budget is not None and total_tri_bytes > memory_budget // 2
    )
    remaining = m
    sentinel = np.iinfo(np.int64).max
    levels = 0
    batched = 0
    skips = 0
    passes = 0
    while remaining:
        masked = np.where(processed, sentinel, bounds)
        level = int(masked.min())
        levels += 1
        frontier = np.flatnonzero(~processed & (bounds == level))
        while frontier.size:
            order_chunks.append(frontier)
            processed[frontier] = True
            remaining -= int(frontier.size)
            kappa[frontier] = level
            in_frontier[frontier] = True
            delta = np.zeros(m, dtype=np.int64)
            total_hits = 0
            for p, tri3 in enumerate(maps):
                if tri3 is None or live[p] == 0:
                    continue
                passes += 1
                cons = consumed[p]
                for start in range(0, live_len(tri3), PEEL_CHUNK_TRIS):
                    stop = min(start + PEEL_CHUNK_TRIS, live_len(tri3))
                    cslice = cons[start:stop]
                    if cslice.all():
                        continue
                    try:
                        rows = np.asarray(tri3[start:stop])
                    except (OSError, ValueError) as exc:
                        raise SpillError(
                            tri_files[p][0],
                            f"cannot read triangle spill: {exc}",
                        ) from exc
                    hit = ~cslice & (
                        in_frontier[rows[:, 0]]
                        | in_frontier[rows[:, 1]]
                        | in_frontier[rows[:, 2]]
                    )
                    nhits = int(hit.sum())
                    if nhits == 0:
                        continue
                    if _BOUNDARY_DROP_BUG and p > 0:
                        # Injected seam bug: consume hit triangles of
                        # non-first partitions without applying their
                        # demotions (see inject_boundary_drop_bug).
                        cslice |= hit
                        live[p] -= nhits
                        total_hits += nhits
                        continue
                    cslice |= hit
                    live[p] -= nhits
                    total_hits += nhits
                    partners = rows[hit].ravel()
                    alive = bounds[partners] > level
                    skips += int(partners.size - int(alive.sum()))
                    np.add.at(delta, partners[alive], 1)
                if release_each_pass:
                    _release_memmap(tri3)
            in_frontier[frontier] = False
            if total_hits == 0:
                break
            touched = np.flatnonzero(delta)
            batched += int(delta[touched].sum())
            bounds[touched] -= delta[touched]
            dropped = touched[bounds[touched] <= level]
            bounds[dropped] = level
            frontier = dropped
    order = (
        np.concatenate(order_chunks).tolist() if order_chunks else []
    )
    stats["executor"] = "external"
    stats["levels"] = levels
    stats["batched_decrements"] = batched
    stats["bound_skips"] = skips
    info["passes"] = info.get("passes", 0) + passes
    for tri3 in maps:
        if tri3 is not None:
            _release_memmap(tri3)
    return kappa.tolist(), order


def live_len(tri3: "object") -> int:
    return int(tri3.shape[0])


def _release_memmap(arr: "object") -> None:
    mm = getattr(arr, "_mmap", None)
    if mm is not None and hasattr(mm, "madvise"):
        try:
            mm.madvise(mmap.MADV_DONTNEED)
        except (OSError, ValueError):  # pragma: no cover - advisory only
            pass


def _external_peel_pure(
    m: int,
    supports: Sequence[int],
    tri_files: List[Tuple[str, int]],
    stats: Dict[str, object],
    info: ExternalInfo,
) -> Tuple[List[int], List[int]]:
    # Mirrors _external_peel_numpy decision for decision (which in turn
    # mirrors VectorPeel): same frontiers, same sub-rounds, same counters.
    bounds = list(supports)
    processed = bytearray(m)
    in_frontier = bytearray(m)
    kappa = [0] * m
    order: List[int] = []
    consumed = [bytearray(count) for _, count in tri_files]
    live = [count for _, count in tri_files]
    remaining = m
    levels = 0
    batched = 0
    skips = 0
    passes = 0
    handles = []
    try:
        for path, count in tri_files:
            try:
                handles.append(open(path, "rb") if count else None)
            except OSError as exc:
                raise SpillError(
                    path, f"cannot read triangle spill: {exc}"
                ) from exc
        while remaining:
            level = min(bounds[e] for e in range(m) if not processed[e])
            levels += 1
            frontier = [
                e for e in range(m)
                if not processed[e] and bounds[e] == level
            ]
            while frontier:
                order.extend(frontier)
                remaining -= len(frontier)
                for e in frontier:
                    processed[e] = 1
                    kappa[e] = level
                    in_frontier[e] = 1
                decrements: Dict[int, int] = {}
                total_hits = 0
                for p, fh in enumerate(handles):
                    if fh is None or live[p] == 0:
                        continue
                    passes += 1
                    fh.seek(0)
                    cons = consumed[p]
                    tidx = 0
                    while True:
                        buf = array("q")
                        try:
                            buf.fromfile(fh, 3 * PEEL_CHUNK_TRIS)
                        except EOFError:
                            pass
                        except OSError as exc:
                            raise SpillError(
                                tri_files[p][0],
                                f"cannot read triangle spill: {exc}",
                            ) from exc
                        if not buf:
                            break
                        for base in range(0, len(buf), 3):
                            if not cons[tidx]:
                                e0 = buf[base]
                                e1 = buf[base + 1]
                                e2 = buf[base + 2]
                                if (in_frontier[e0] or in_frontier[e1]
                                        or in_frontier[e2]):
                                    cons[tidx] = 1
                                    live[p] -= 1
                                    total_hits += 1
                                    if _BOUNDARY_DROP_BUG and p > 0:
                                        pass  # injected seam bug: demotions
                                        # from non-first partitions dropped
                                    else:
                                        for ex in (e0, e1, e2):
                                            if bounds[ex] > level:
                                                decrements[ex] = (
                                                    decrements.get(ex, 0) + 1
                                                )
                                            else:
                                                skips += 1
                            tidx += 1
                for e in frontier:
                    in_frontier[e] = 0
                if total_hits == 0:
                    break
                next_frontier: List[int] = []
                for e2, count in decrements.items():
                    batched += count
                    lowered = bounds[e2] - count
                    if lowered <= level:
                        bounds[e2] = level
                        next_frontier.append(e2)
                    else:
                        bounds[e2] = lowered
                next_frontier.sort()
                frontier = next_frontier
    finally:
        for fh in handles:
            if fh is not None:
                fh.close()
    stats["executor"] = "external"
    stats["levels"] = levels
    stats["batched_decrements"] = batched
    stats["bound_skips"] = skips
    info["passes"] = info.get("passes", 0) + passes
    return kappa, order


# ---------------------------------------------------------------------- #
# decomposition drivers
# ---------------------------------------------------------------------- #


def decompose_spill(
    ext: ExternalCSR,
    *,
    memory_budget: Optional[int] = None,
    floor: int = 0,
    counters: Optional[Dict[str, int]] = None,
    peel_stats: Optional[Dict[str, object]] = None,
    info: Optional[ExternalInfo] = None,
    decode: bool = True,
):
    """Out-of-core Algorithm 1 over an opened spill directory.

    With ``floor=0`` (default) the result is bit-identical to ``csr``:
    same kappa map, and the canonical ``csr-vec`` processing order.  With
    ``floor > 0`` the h-index admission bound prunes partitions that
    provably cannot reach the floor; kappa values ``>= floor`` remain
    exact (values below it may be underestimates — see the module
    docstring), which is the filtered-query contract.

    ``decode=False`` skips the label decode and returns the raw
    ``(kappa_by_eid, order_by_eid)`` sequences — decoding builds O(m)
    Python tuples, which dwarfs the out-of-core working set on the graphs
    this backend exists for (the RSS-capped benchmark uses this).
    """
    if floor < 0:
        raise ValueError(f"floor must be >= 0, got {floor}")
    csr = ext.csr
    np = _csr_mod.np
    m = csr.num_edges
    run_info: ExternalInfo = {
        "partitions": len(ext.partitions),
        "admitted": 0,
        "passes": 0,
        "bytes_mapped": ext.bytes_mapped(),
        "bound_prune_hits": 0,
    }
    stats: Dict[str, object] = {}
    supports = (
        np.zeros(m, dtype=np.int64) if np is not None else [0] * m
    )
    admitted: List[int] = []
    if floor > 0 and ext.partitions:
        vertex_bounds = kappa_upper_bounds(csr)
        for idx, (lo, hi) in enumerate(ext.partitions):
            best = max(vertex_bounds[lo:hi], default=0)
            if best - 1 < floor:
                run_info["bound_prune_hits"] += 1
            else:
                admitted.append(idx)
    else:
        admitted = list(range(len(ext.partitions)))
    run_info["admitted"] = len(admitted)

    scratch = _make_scratch(ext.spill_dir)
    try:
        tri_files: List[Tuple[str, int]] = []
        for idx in admitted:
            ext.verify_partition(idx)
            lo, hi = ext.partitions[idx]
            path = os.path.join(scratch, f"tri-{idx}.bin")
            count = _enumerate_partition(csr, lo, hi, path, supports)
            tri_files.append((path, count))
            if os.environ.get(_CRASH_ENV):
                os._exit(13)
            if memory_budget is not None:
                ext.release_pages()
        run_info["bytes_mapped"] += sum(24 * c for _, c in tri_files)

        if m == 0:
            kappa_by_eid: List[int] = []
            order_by_eid: List[int] = []
            stats["executor"] = "external"
            stats["levels"] = 0
            stats["batched_decrements"] = 0
            stats["bound_skips"] = 0
        elif np is not None:
            kappa_by_eid, order_by_eid = _external_peel_numpy(
                m, supports, tri_files, stats, run_info, memory_budget
            )
        else:
            kappa_by_eid, order_by_eid = _external_peel_pure(
                m, supports, tri_files, stats, run_info
            )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    if peel_stats is not None:
        peel_stats.update(stats)
    if info is not None:
        info.update(run_info)
    if counters is not None:
        support_sum = int(
            supports.sum() if np is not None else sum(supports)
        )
        counters["triangles_enumerated"] = support_sum // 3
        counters["support_sum"] = support_sum
        counters["edges_peeled"] = m
        counters["bucket_decrements"] = support_sum - int(sum(kappa_by_eid))
    if not decode:
        return kappa_by_eid, order_by_eid
    from ..core.triangle_kcore import TriangleKCoreResult

    edges = csr.edge_labels()
    kappa = dict(zip(edges, kappa_by_eid))
    processing_order = list(map(edges.__getitem__, order_by_eid))
    return TriangleKCoreResult(kappa=kappa, processing_order=processing_order)


def external_decomposition(
    graph: "object",
    *,
    spill_dir: Optional[str] = None,
    memory_budget: Optional[int] = None,
    partitions: Optional[int] = None,
    floor: int = 0,
    counters: Optional[Dict[str, int]] = None,
    peel_stats: Optional[Dict[str, object]] = None,
    info: Optional[ExternalInfo] = None,
) -> "object":
    """Algorithm 1 via the out-of-core backend, decoded to the result type.

    Spills ``graph`` into ``spill_dir`` (a private temporary directory
    when None, removed afterwards) and decomposes it partition by
    partition — bit-identical to ``csr`` (kappa) and ``csr-vec``
    (canonical order) at the default ``floor=0``.  ``memory_budget``
    (bytes) sizes the partition table and turns on page-release between
    partition passes; ``partitions`` pins the partition count explicitly
    (tests use it to force seams on small graphs).
    """
    tmp: Optional[str] = None
    if spill_dir is None:
        tmp = tempfile.mkdtemp(prefix="repro-spill-")
        spill_dir = tmp
    try:
        ext = ExternalCSR.build(
            graph, spill_dir, partitions=partitions,
            memory_budget=memory_budget,
        )
        try:
            return decompose_spill(
                ext,
                memory_budget=memory_budget,
                floor=floor,
                counters=counters,
                peel_stats=peel_stats,
                info=info,
            )
        finally:
            ext.close()
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)
