"""Peel executors (kernel layer L3): Algorithm 1 behind a swappable seam.

The peel — turn ``(supports, tri_edges)`` into ``(kappa, processing_order)``
— is isolated here behind the :class:`PeelExecutor` interface so the engine
can compose it independently of the substrate (L1) and enumeration (L2)
layers.  Two executors ship:

``"scalar"``
    The classic Batagelj–Zaveršnik bucket-queue walk (moved verbatim from
    ``kernels.peel``): pop a minimum-bound edge, freeze its bound as
    :math:`\\kappa`, decrement the partners of its unprocessed triangles
    one at a time via O(1) bucket swaps.  Pure stdlib, always available,
    and the bit-for-bit behavioral baseline — ``backend="csr"`` and
    ``backend="parallel"`` run it, so their outputs are unchanged.
``"vector"``
    A level-synchronous executor following the batch processing in
    *Streaming and Batch Algorithms for Truss Decomposition* (PAPERS.md):
    instead of decrementing one partner at a time, the whole frontier of
    minimum-bound edges is peeled per sub-round and **all** of its support
    decrements are applied in one batched array pass
    (``np.subtract.at``).  Edges whose bound already sits at or below the
    current level are provably stable this level (Theorem 1's guard:
    :math:`\\tilde\\kappa` never drops below the frozen level) and are
    skipped without touching them — the ``bound_skips`` counter.  With
    numpy the inner loop is O(sub-rounds) array passes instead of O(3T)
    interpreted steps; a mirrored pure-python path produces bit-identical
    output (and identical stats) so the executor exists on every host.

Equivalence.  Batched decrements with the guard evaluated on the
*pre-sub-round* bounds equal the scalar guarded sequential decrements:
for an edge with bound ``b > k`` hit by ``c`` unprocessed triangles of the
frontier, both produce ``max(k, b - c)`` (the vector path clamps dropped
edges back to the level ``k``), and edges with ``b <= k`` are untouched by
both.  Kappa is therefore identical to the scalar executor — and to the
reference implementation — on every graph; the conformance matrix and the
fuzz profiles assert it.  The *processing order* differs in tie-breaking:
the vector executor emits a canonical order — ascending level, then
sub-round, then ascending edge id — which is deterministic and
non-decreasing in kappa (any such order is valid per the paper), and
identical between the numpy and pure paths.

Stats.  When a ``stats`` dict is passed, the executor records
``executor`` (name), ``levels`` (distinct kappa values processed),
``batched_decrements`` (support decrements applied in array passes; 0 for
scalar, which decrements via bucket swaps counted separately) and
``bound_skips`` (partner slots proven stable and skipped; 0 for scalar).
These feed the ``peel`` section of ``repro.engine.stats/6``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import csr as _csr_mod

__all__ = [
    "PEEL_EXECUTORS",
    "PeelExecutor",
    "PeelStats",
    "ScalarPeel",
    "VectorPeel",
    "resolve_peel_executor",
    "run_peel",
]

#: Per-run executor telemetry: ``{"executor": str, "levels": int,
#: "batched_decrements": int, "bound_skips": int}``.
PeelStats = Dict[str, object]


def _edge_triangle_incidence(
    supports: List[int], tri_edges: List[int]
) -> Tuple[List[int], List[int]]:
    """CSR-style edge → triangle-index incidence via counting sort.

    ``supports[e]`` is exactly the number of triangles incident to ``e``,
    so the offsets are its prefix sums; no second enumeration pass needed.
    """
    m = len(supports)
    tri_start = [0] * (m + 1)
    total = 0
    for e in range(m):
        tri_start[e] = total
        total += supports[e]
    tri_start[m] = total
    cursor = tri_start[:m]
    incidence = [0] * total
    for t in range(0, len(tri_edges), 3):
        tri = t // 3
        for e in (tri_edges[t], tri_edges[t + 1], tri_edges[t + 2]):
            incidence[cursor[e]] = tri
            cursor[e] += 1
    return tri_start, incidence


class PeelExecutor:
    """Interface of kernel layer L3: ``(supports, tri_edges) -> (kappa, order)``.

    Implementations must be pure functions of their inputs (no hidden
    state) and must produce a kappa array identical to Algorithm 1's and a
    processing order that is non-decreasing in kappa.  ``run`` may assume
    the inputs are consistent — :func:`run_peel` validates once on entry.
    """

    name: str = "abstract"

    def run(
        self,
        m: int,
        supports: List[int],
        tri_edges: List[int],
        stats: Optional[PeelStats] = None,
    ) -> Tuple[List[int], List[int]]:
        raise NotImplementedError


class ScalarPeel(PeelExecutor):
    """The sequential bucket-queue walk — the behavioral baseline."""

    name = "scalar"

    def run(
        self,
        m: int,
        supports: List[int],
        tri_edges: List[int],
        stats: Optional[PeelStats] = None,
    ) -> Tuple[List[int], List[int]]:
        np = _csr_mod.np
        bounds = list(supports)  # mutated in place: the tilde-kappa array
        if np is not None:
            # Same layouts as the pure counting sorts below, built
            # vectorized: stable argsort groups by value with ids ascending
            # inside a group, exactly the order the ascending fill produces.
            sup = np.array(supports, dtype=np.int64)
            order = np.argsort(sup, kind="stable")
            sorted_edges = order.tolist()
            pos = np.empty(m, dtype=np.int64)
            pos[order] = np.arange(m, dtype=np.int64)
            edge_pos = pos.tolist()
            bucket_start = np.concatenate(
                ([0], np.cumsum(np.bincount(sup)))
            ).tolist()
            tri_np = np.array(tri_edges, dtype=np.int64)
            incidence = (np.argsort(tri_np, kind="stable") // 3).tolist()
            tri_start = np.concatenate(
                ([0], np.cumsum(np.bincount(tri_np, minlength=m)))
            ).tolist()
        else:
            tri_start, incidence = _edge_triangle_incidence(supports, tri_edges)

            # Bucket sort by support: sorted_edges holds edge ids grouped by
            # bound, edge_pos[e] is e's slot, bucket_start[s] the live start
            # of bucket s.
            max_bound = max(bounds)
            counts = [0] * (max_bound + 1)
            for s in bounds:
                counts[s] += 1
            bucket_start = [0] * (max_bound + 2)
            total = 0
            for s in range(max_bound + 1):
                bucket_start[s] = total
                total += counts[s]
            bucket_start[max_bound + 1] = total
            cursor = bucket_start[: max_bound + 1]
            sorted_edges = [0] * m
            edge_pos = [0] * m
            for e in range(m):
                slot = cursor[bounds[e]]
                sorted_edges[slot] = e
                edge_pos[e] = slot
                cursor[bounds[e]] = slot + 1

        processed = bytearray(m)
        # Iterating the mutating list is safe: swaps only ever touch
        # positions strictly after the current one (their buckets start past
        # it).  Once an edge is popped its bound is frozen — decrements skip
        # triangles with a processed edge — so after the loop ``bounds`` IS
        # the kappa array.
        for e in sorted_edges:
            bound = bounds[e]
            start_t = tri_start[e]
            end_t = tri_start[e + 1]
            if start_t != end_t:
                for tpos in range(start_t, end_t):
                    base = 3 * incidence[tpos]
                    e0 = tri_edges[base]
                    e1 = tri_edges[base + 1]
                    e2 = tri_edges[base + 2]
                    if e0 == e:
                        a, b = e1, e2
                    elif e1 == e:
                        a, b = e0, e2
                    else:
                        a, b = e0, e1
                    # A triangle is processed once any edge is; skip those.
                    if processed[a] or processed[b]:
                        continue
                    if bounds[a] > bound:
                        s = bounds[a]
                        pos = edge_pos[a]
                        start = bucket_start[s]
                        if pos != start:
                            first = sorted_edges[start]
                            sorted_edges[start] = a
                            sorted_edges[pos] = first
                            edge_pos[a] = start
                            edge_pos[first] = pos
                        bucket_start[s] = start + 1
                        bounds[a] = s - 1
                    if bounds[b] > bound:
                        s = bounds[b]
                        pos = edge_pos[b]
                        start = bucket_start[s]
                        if pos != start:
                            first = sorted_edges[start]
                            sorted_edges[start] = b
                            sorted_edges[pos] = first
                            edge_pos[b] = start
                            edge_pos[first] = pos
                        bucket_start[s] = start + 1
                        bounds[b] = s - 1
            processed[e] = 1
        if stats is not None:
            stats["executor"] = self.name
            stats["levels"] = len(set(bounds)) if m else 0
            stats["batched_decrements"] = 0
            stats["bound_skips"] = 0
        return bounds, sorted_edges


class VectorPeel(PeelExecutor):
    """Level-synchronous batched peel (numpy path + bit-identical pure path)."""

    name = "vector"

    def run(
        self,
        m: int,
        supports: List[int],
        tri_edges: List[int],
        stats: Optional[PeelStats] = None,
    ) -> Tuple[List[int], List[int]]:
        if _csr_mod.np is not None:
            return self._run_numpy(m, supports, tri_edges, stats)
        return self._run_pure(m, supports, tri_edges, stats)

    def _run_numpy(
        self,
        m: int,
        supports: List[int],
        tri_edges: List[int],
        stats: Optional[PeelStats],
    ) -> Tuple[List[int], List[int]]:
        np = _csr_mod.np
        bounds = np.array(supports, dtype=np.int64)
        tri = np.array(tri_edges, dtype=np.int64)
        num_tris = tri.size // 3
        tri3 = tri.reshape(num_tris, 3)
        # Edge → triangle incidence as a CSR over edge ids: a stable argsort
        # of the flat triangle list groups positions by edge id, and
        # position // 3 recovers the triangle index.
        incidence = np.argsort(tri, kind="stable") // 3
        tri_start = np.concatenate(
            ([0], np.cumsum(np.bincount(tri, minlength=m)))
        )
        processed = np.zeros(m, dtype=bool)
        consumed = np.zeros(num_tris, dtype=bool)
        kappa = np.zeros(m, dtype=np.int64)
        order_chunks: List[object] = []
        remaining = m
        sentinel = np.iinfo(np.int64).max
        levels = 0
        batched = 0
        skips = 0
        while remaining:
            masked = np.where(processed, sentinel, bounds)
            level = int(masked.min())
            levels += 1
            frontier = np.flatnonzero(~processed & (bounds == level))
            while frontier.size:
                order_chunks.append(frontier)
                processed[frontier] = True
                remaining -= int(frontier.size)
                kappa[frontier] = level
                # Gather the triangle lists of every frontier edge in one
                # repeat/cumsum pass (no per-edge python loop).
                counts = tri_start[frontier + 1] - tri_start[frontier]
                total = int(counts.sum())
                if total == 0:
                    break  # no triangles => no decrements => no new frontier
                starts = tri_start[frontier]
                offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
                flat = np.repeat(starts - offsets, counts) + np.arange(
                    total, dtype=np.int64
                )
                tris = incidence[flat]
                tris = tris[~consumed[tris]]
                tris = np.unique(tris)  # a triangle with 2+ frontier edges
                consumed[tris] = True
                partners = tri3[tris].ravel()
                # Theorem 1 guard on the PRE-sub-round bounds: an edge at or
                # below the level is provably stable — skip it untouched.
                live = bounds[partners] > level
                skips += int(partners.size - live.sum())
                decremented = partners[live]
                batched += int(decremented.size)
                np.subtract.at(bounds, decremented, 1)
                touched = np.unique(decremented)
                dropped = touched[bounds[touched] <= level]
                bounds[dropped] = level  # clamp: kappa never undershoots
                frontier = dropped
        if order_chunks:
            order = np.concatenate(order_chunks).tolist()
        else:
            order = []
        if stats is not None:
            stats["executor"] = self.name
            stats["levels"] = levels
            stats["batched_decrements"] = batched
            stats["bound_skips"] = skips
        return kappa.tolist(), order

    def _run_pure(
        self,
        m: int,
        supports: List[int],
        tri_edges: List[int],
        stats: Optional[PeelStats],
    ) -> Tuple[List[int], List[int]]:
        # Mirrors _run_numpy decision for decision: same frontiers, same
        # sub-rounds, same ascending-id ordering, same counters — the test
        # suite asserts bit-identical output AND stats between the paths.
        bounds = list(supports)
        tri_start, incidence = _edge_triangle_incidence(supports, tri_edges)
        num_tris = len(tri_edges) // 3
        processed = bytearray(m)
        consumed = bytearray(num_tris)
        kappa = [0] * m
        order: List[int] = []
        remaining = m
        levels = 0
        batched = 0
        skips = 0
        while remaining:
            level = min(
                bounds[e] for e in range(m) if not processed[e]
            )
            levels += 1
            frontier = [
                e for e in range(m) if not processed[e] and bounds[e] == level
            ]
            while frontier:
                order.extend(frontier)
                remaining -= len(frontier)
                for e in frontier:
                    processed[e] = 1
                    kappa[e] = level
                hit: List[int] = []
                for e in frontier:
                    for pos in range(tri_start[e], tri_start[e + 1]):
                        t = incidence[pos]
                        if not consumed[t]:
                            consumed[t] = 1
                            hit.append(t)
                if not hit:
                    break
                # Aggregate decrements per edge first, then apply: the guard
                # must see the pre-sub-round bounds (decrement order within a
                # sub-round is commutative, so aggregation loses nothing).
                decrements: Dict[int, int] = {}
                for t in hit:
                    base = 3 * t
                    for e2 in (
                        tri_edges[base],
                        tri_edges[base + 1],
                        tri_edges[base + 2],
                    ):
                        if bounds[e2] > level:
                            decrements[e2] = decrements.get(e2, 0) + 1
                        else:
                            skips += 1
                next_frontier: List[int] = []
                for e2, count in decrements.items():
                    batched += count
                    lowered = bounds[e2] - count
                    if lowered <= level:
                        bounds[e2] = level
                        next_frontier.append(e2)
                    else:
                        bounds[e2] = lowered
                next_frontier.sort()
                frontier = next_frontier
        if stats is not None:
            stats["executor"] = self.name
            stats["levels"] = levels
            stats["batched_decrements"] = batched
            stats["bound_skips"] = skips
        return kappa, order


_EXECUTORS: Dict[str, PeelExecutor] = {
    ScalarPeel.name: ScalarPeel(),
    VectorPeel.name: VectorPeel(),
}

#: Peel executor names, in registry order.
PEEL_EXECUTORS: Tuple[str, ...] = tuple(_EXECUTORS)


def resolve_peel_executor(name: str) -> PeelExecutor:
    """Look up an executor by name (ValueError on unknown names)."""
    try:
        return _EXECUTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown peel executor {name!r}; expected one of {PEEL_EXECUTORS}"
        ) from None


def run_peel(
    m: int,
    supports: List[int],
    tri_edges: List[int],
    *,
    executor: str = "scalar",
    stats: Optional[PeelStats] = None,
) -> Tuple[List[int], List[int]]:
    """Validated entry point: peel ``(supports, tri_edges)`` with ``executor``.

    Returns ``(kappa, processing_order)`` indexed by edge id.  Raises
    ``ValueError`` when the inputs are mutually inconsistent (each triangle
    contributes exactly 3 to the support sum) or the executor is unknown.
    """
    impl = resolve_peel_executor(executor)
    if m == 0:
        if stats is not None:
            stats["executor"] = impl.name
            stats["levels"] = 0
            stats["batched_decrements"] = 0
            stats["bound_skips"] = 0
        return [], []
    if sum(supports) != len(tri_edges):
        raise ValueError(
            "precomputed supports/triangles disagree; pass the output of "
            "supports_and_triangles(csr, record_triangles=True)"
        )
    return impl.run(m, supports, tri_edges, stats)
