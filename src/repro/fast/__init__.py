"""``repro.fast`` — flat-array (CSR) kernel backend for the static hot paths.

The reference implementations in :mod:`repro.core` and
:mod:`repro.graph.triangles` run on hash-keyed dicts of canonical edge
tuples: ideal for dynamic updates and as a cross-validation oracle, but an
order of magnitude slower than necessary for one-shot static work.  This
package provides the fast path behind ``backend="csr"``:

* :class:`~repro.fast.csr.CSRGraph` — immutable integer-relabeled CSR
  snapshot of a :class:`~repro.graph.undirected.Graph`;
* :mod:`repro.fast.kernels` — triangle counting/supports and the
  Algorithm 1 peeling kernel over flat int arrays;
* this module — decoding kernel output back into the public dict-based
  API (:class:`~repro.core.triangle_kcore.TriangleKCoreResult` et al.)
  and the ``backend`` dispatch policy shared by every entry point.

Backends
--------

``"reference"``
    The original pure-dict implementations.  Always available; required
    for ``store_membership=True``.
``"csr"``
    Snapshot + kernels from this package.  Produces identical kappa maps
    (the test suite asserts it property-based against both the reference
    and networkx), but its processing order may break ties differently —
    any non-decreasing-kappa order is valid.
``"auto"``
    ``"csr"`` for static calls on graphs with at least
    :data:`AUTO_MIN_EDGES` edges, ``"reference"`` otherwise (snapshot
    construction overhead dominates below that) and whenever membership
    bookkeeping is requested.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..graph.edge import Edge
from ..graph.undirected import Graph
from .csr import CSRGraph
from .kernels import peel, supports_and_triangles, triangle_count, triangle_supports

__all__ = [
    "AUTO_MIN_EDGES",
    "BACKENDS",
    "CSRGraph",
    "csr_count_triangles",
    "csr_decomposition",
    "csr_triangle_supports",
    "peel",
    "resolve_backend",
    "supports_and_triangles",
    "triangle_count",
    "triangle_supports",
]

BACKENDS = ("auto", "reference", "csr")

#: "auto" switches to the CSR kernels at this edge count; below it the
#: snapshot build costs more than the dict overhead it saves (measured in
#: benchmarks/bench_backend_kernels.py — the crossover sits near 10^3 edges).
AUTO_MIN_EDGES = 1024


def resolve_backend(
    backend: str, graph: Graph, *, needs_reference: bool = False
) -> str:
    """Resolve ``backend`` to ``"reference"`` or ``"csr"`` for ``graph``.

    ``needs_reference`` marks calls the kernels cannot serve (currently:
    membership bookkeeping); ``"auto"`` then degrades silently while an
    explicit ``"csr"`` raises, so callers never get an answer computed
    differently from what they asked for.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if backend == "reference":
        return "reference"
    if needs_reference:
        if backend == "csr":
            raise ValueError(
                "backend='csr' does not support membership bookkeeping; "
                "use backend='reference' (or 'auto')"
            )
        return "reference"
    if backend == "csr":
        return "csr"
    return "csr" if graph.num_edges >= AUTO_MIN_EDGES else "reference"


def csr_count_triangles(graph: Graph) -> int:
    """Total triangle count via the CSR kernel."""
    return triangle_count(CSRGraph.from_graph(graph))


def csr_triangle_supports(graph: Graph) -> Dict[Edge, int]:
    """``{canonical edge: triangle support}`` via the CSR kernel."""
    csr = CSRGraph.from_graph(graph)
    return dict(zip(csr.edge_labels(), triangle_supports(csr)))


def csr_decomposition(
    graph: Graph, *, counters: Optional[Dict[str, int]] = None
) -> "TriangleKCoreResult":  # noqa: F821
    """Algorithm 1 via the CSR kernels, decoded to the public result type.

    ``counters`` mirrors the instrumentation hook of
    :func:`repro.core.triangle_kcore.triangle_kcore_decomposition`: the
    same keys, derived from arrays the kernels build anyway.
    """
    # Imported lazily: repro.core.triangle_kcore dispatches into this module.
    from ..core.triangle_kcore import TriangleKCoreResult

    csr = CSRGraph.from_graph(graph)
    precomputed = supports_and_triangles(csr)
    kappa_by_eid, order_by_eid = peel(csr, precomputed)
    edges = csr.edge_labels()
    kappa: Dict[Edge, int] = dict(zip(edges, kappa_by_eid))
    processing_order: List[Edge] = list(map(edges.__getitem__, order_by_eid))
    if counters is not None:
        support_sum = int(sum(precomputed[0]))
        counters["triangles_enumerated"] = support_sum // 3
        counters["support_sum"] = support_sum
        counters["edges_peeled"] = len(kappa)
        counters["bucket_decrements"] = support_sum - int(sum(kappa_by_eid))
    return TriangleKCoreResult(kappa=kappa, processing_order=processing_order)
