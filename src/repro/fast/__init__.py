"""``repro.fast`` — the layered flat-array (CSR) kernel substrate.

The reference implementations in :mod:`repro.core` and
:mod:`repro.graph.triangles` run on hash-keyed dicts of canonical edge
tuples: ideal for dynamic updates and as a cross-validation oracle, but an
order of magnitude slower than necessary for one-shot static work.  This
package provides the fast paths behind ``backend="csr"``, ``"csr-vec"``,
``"parallel"`` and ``"parallel-vec"``, organized as four explicit layers
(DESIGN.md "Kernel layering" has the full composition table):

* **L1 — substrate**: :class:`~repro.fast.csr.CSRGraph`, an immutable
  integer-relabeled CSR snapshot whose five kernel arrays form a
  pluggable store — stdlib ``array``, or zero-copy ``memoryview`` slices
  over a ``multiprocessing.shared_memory`` segment
  (:class:`~repro.fast.shm.SharedCSR`);
* **L2 — enumeration**: :mod:`~repro.fast.kernels` — forward-algorithm
  triangle counting/supports over any substrate, shardable by vertex
  range (:mod:`~repro.fast.parallel` fans shards over a process pool,
  shipping only the shared-memory attach descriptor to each worker);
* **L3 — peel executor**: :mod:`~repro.fast.peelers` — Algorithm 1
  behind the :class:`~repro.fast.peelers.PeelExecutor` seam: the scalar
  bucket-queue walk or the vectorized level-synchronous executor;
* **L4 — dispatch**: this module — decoding kernel output back into the
  public dict-based API and the ``backend`` policy composing
  substrate × enumeration × executor for every entry point.

Backends
--------

``"reference"``
    The original pure-dict implementations.  Always available; required
    for ``store_membership=True``.
``"csr"``
    Snapshot + kernels + **scalar** peel.  Produces identical kappa maps
    (property-tested against both the reference and networkx), but its
    processing order may break ties differently — any
    non-decreasing-kappa order is valid.
``"csr-vec"``
    ``"csr"`` with the **vector** (level-synchronous, batched-decrement)
    peel executor.  Identical kappa; canonical processing order
    (ascending level, sub-round, edge id).  The single-core win on large
    graphs when numpy is present (``make bench-peel``); without numpy a
    bit-identical pure path keeps it available everywhere.
``"parallel"``
    ``"csr"`` with the triangle enumeration fanned out over a
    ``multiprocessing`` pool, the CSR handed to workers zero-copy via
    shared memory (:mod:`repro.fast.parallel`).  Bit-identical to
    ``"csr"`` — same kappa map *and* processing order — for any worker
    count.
``"parallel-vec"``
    Sharded enumeration + vector peel: the full composition.
    Bit-identical to ``"csr-vec"`` for any worker count.
``"external"``
    Out-of-core: the CSR columns live in mmap'd spill files under a
    spill directory, triangles are enumerated partition by partition to
    disk, and a reconciliation peel iterates boundary demotions across
    partitions to a fixed point (:mod:`repro.fast.external`).  Resident
    memory stays O(n + m) words plus one byte per triangle regardless of
    graph size.  Bit-identical to ``"csr"`` (kappa) *and* ``"csr-vec"``
    (canonical processing order) for any partition count.
``"auto"``
    By measured tiering: ``"external"`` when a ``memory_budget`` is
    configured and the estimated CSR payload exceeds it (or the graph
    has at least :data:`AUTO_EXTERNAL_MIN_EDGES` edges); else
    ``"parallel-vec"`` (or ``"parallel"`` without numpy) for static
    calls on graphs with at least :data:`AUTO_PARALLEL_MIN_EDGES` edges
    when more than one CPU is available; else ``"csr-vec"`` at or above
    :data:`AUTO_VECTOR_MIN_EDGES` edges when numpy is present; else
    ``"csr"`` at or above :data:`AUTO_MIN_EDGES` (snapshot construction
    overhead dominates below that); else ``"reference"`` — and always
    ``"reference"`` whenever membership bookkeeping is requested.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..graph.edge import Edge
from ..graph.undirected import Graph
from .csr import CSRGraph
from .external import (
    ExternalCSR,
    SpillError,
    cleanup_stale,
    decompose_spill,
    external_decomposition,
    inject_boundary_drop_bug,
    spill_edges,
)
from .kernels import peel, supports_and_triangles, triangle_count, triangle_supports
from .parallel import (
    BackendError,
    effective_workers,
    inject_shard_merge_bug,
    parallel_count_triangles,
    parallel_decomposition,
    parallel_supports_and_triangles,
    shard_ranges,
)
from .peelers import PEEL_EXECUTORS, run_peel

__all__ = [
    "AUTO_EXTERNAL_MIN_EDGES",
    "AUTO_MIN_EDGES",
    "AUTO_PARALLEL_MIN_EDGES",
    "AUTO_VECTOR_MIN_EDGES",
    "BACKENDS",
    "BackendError",
    "CSRGraph",
    "ExternalCSR",
    "PEEL_EXECUTORS",
    "SpillError",
    "backend_executor",
    "cleanup_stale",
    "csr_count_triangles",
    "csr_decomposition",
    "csr_triangle_supports",
    "decompose_spill",
    "effective_workers",
    "estimated_payload_nbytes",
    "external_decomposition",
    "inject_boundary_drop_bug",
    "inject_shard_merge_bug",
    "parallel_count_triangles",
    "parallel_decomposition",
    "parallel_supports_and_triangles",
    "parallel_triangle_supports",
    "peel",
    "resolve_backend",
    "run_peel",
    "shard_ranges",
    "spill_edges",
    "supports_and_triangles",
    "triangle_count",
    "triangle_supports",
]

#: Backends this package can resolve (the engine registry adds more, e.g.
#: ``"dynamic"`` — see :func:`_known_backends`).
BACKENDS = (
    "auto",
    "reference",
    "csr",
    "csr-vec",
    "parallel",
    "parallel-vec",
    "external",
)

#: "auto" switches to the CSR kernels at this edge count; below it the
#: snapshot build costs more than the dict overhead it saves (measured in
#: benchmarks/bench_backend_kernels.py — the crossover sits near 10^3 edges).
AUTO_MIN_EDGES = 1024

#: "auto" escalates the peel from "scalar" to "vector" at this edge count
#: when numpy is importable (measured in benchmarks/bench_peel.py: the
#: level-synchronous executor loses below ~2·10^4 edges — too few edges
#: per frontier to amortize the array passes — and wins 2-3x above it).
AUTO_VECTOR_MIN_EDGES = 32768

#: "auto" escalates to the sharded enumeration at this edge count, provided
#: more than one CPU is available (measured in
#: benchmarks/bench_parallel_backend.py — below it the pool spawn costs
#: more than the sharded enumeration saves).
AUTO_PARALLEL_MIN_EDGES = 65536

#: "auto" escalates to the out-of-core backend at this edge count even
#: without an explicit memory budget — the point where the in-RAM
#: triangle list (24 bytes/triangle plus the O(3T) incidence the peel
#: executors build) starts to dominate typical container budgets.  With a
#: budget configured the payload-vs-budget comparison takes precedence.
AUTO_EXTERNAL_MIN_EDGES = 1 << 21


def backend_executor(backend: str) -> str:
    """The peel-executor name a resolved kernel backend composes (L3)."""
    return "vector" if backend.endswith("-vec") else "scalar"


def _known_backends() -> Tuple[str, ...]:
    """Every backend name the system knows, for error messages.

    Derived from the engine registry when importable (so engine-level
    backends such as ``"dynamic"`` — and anything added via
    ``Engine.register_backend`` defaults — are listed automatically),
    falling back to this package's own tuple during partial imports.
    """
    try:
        from ..engine.engine import _BUILTIN_BACKENDS

        return ("auto",) + tuple(_BUILTIN_BACKENDS)
    except ImportError:  # pragma: no cover - only during bootstrap
        return BACKENDS


def resolve_backend(
    backend: str,
    graph: Graph,
    *,
    needs_reference: bool = False,
    workers: Optional[int] = None,
    memory_budget: Optional[int] = None,
) -> str:
    """Resolve ``backend`` to a concrete kernel composition.

    Returns one of ``"reference"``, ``"csr"``, ``"csr-vec"``,
    ``"parallel"``, ``"parallel-vec"`` or ``"external"``.
    ``needs_reference`` marks calls the kernels cannot serve (currently:
    membership bookkeeping); ``"auto"`` then degrades silently while an
    explicit kernel backend raises, so callers never get an answer
    computed differently from what they asked for.  ``workers`` feeds the
    ``"auto"`` policy's parallel escalation (``None`` = one per CPU);
    ``memory_budget`` (bytes) feeds its out-of-core escalation — when the
    estimated CSR payload would exceed the budget, ``"auto"`` spills.
    """
    if backend not in BACKENDS:
        known = _known_backends()
        if backend in known:
            raise ValueError(
                f"backend {backend!r} is only available through "
                f"repro.engine.Engine (known backends: {known})"
            )
        raise ValueError(f"unknown backend {backend!r}; expected one of {known}")
    if backend == "reference":
        return "reference"
    if needs_reference:
        if backend != "auto":
            raise ValueError(
                f"backend={backend!r} does not support membership "
                "bookkeeping; use backend='reference' (or 'auto')"
            )
        return "reference"
    if backend != "auto":
        return backend
    from . import csr as _csr_mod

    has_numpy = _csr_mod.np is not None
    if graph.num_edges >= AUTO_EXTERNAL_MIN_EDGES or (
        memory_budget is not None
        and estimated_payload_nbytes(graph) > memory_budget
    ):
        return "external"
    if (
        graph.num_edges >= AUTO_PARALLEL_MIN_EDGES
        and effective_workers(workers) > 1
    ):
        return "parallel-vec" if has_numpy else "parallel"
    if has_numpy and graph.num_edges >= AUTO_VECTOR_MIN_EDGES:
        return "csr-vec"
    return "csr" if graph.num_edges >= AUTO_MIN_EDGES else "reference"


def estimated_payload_nbytes(graph: Graph) -> int:
    """Estimated in-RAM CSR payload for ``graph``, without building it.

    The five kernel columns cost ``8 * (n + 1) + 8 * 2m + 8 * 2m + 8 * n
    + 16m`` bytes = ``48m + 16n + 8`` — the quantity ``"auto"`` compares
    against a configured memory budget to decide when to spill.
    """
    return 48 * graph.num_edges + 16 * graph.num_vertices + 8


def csr_count_triangles(graph: Graph) -> int:
    """Total triangle count via the CSR kernel."""
    return triangle_count(CSRGraph.from_graph(graph))


def csr_triangle_supports(graph: Graph) -> Dict[Edge, int]:
    """``{canonical edge: triangle support}`` via the CSR kernel."""
    csr = CSRGraph.from_graph(graph)
    return dict(zip(csr.edge_labels(), triangle_supports(csr)))


def parallel_triangle_supports(
    graph: Graph, *, workers: Optional[int] = None
) -> Dict[Edge, int]:
    """``{canonical edge: triangle support}`` via the sharded enumeration."""
    csr = CSRGraph.from_graph(graph)
    supports, _ = parallel_supports_and_triangles(csr, workers=workers)
    return dict(zip(csr.edge_labels(), supports))


def _decode_decomposition(
    csr: CSRGraph,
    precomputed: Tuple[List[int], List[int]],
    counters: Optional[Dict[str, int]] = None,
    *,
    executor: str = "scalar",
    peel_stats: Optional[Dict[str, object]] = None,
) -> "TriangleKCoreResult":  # noqa: F821
    """Peel ``precomputed`` and decode into the public result type.

    Shared tail of every kernel backend: given the ``(supports,
    tri_edges)`` pair — however it was computed — run the selected
    Algorithm 1 peel executor and translate edge ids back to canonical
    label tuples.  ``counters`` mirrors the instrumentation hook of
    :func:`repro.core.triangle_kcore.triangle_kcore_decomposition`;
    ``peel_stats`` receives the executor telemetry
    (:data:`~repro.fast.peelers.PeelStats`).
    """
    # Imported lazily: repro.core.triangle_kcore dispatches into this module.
    from ..core.triangle_kcore import TriangleKCoreResult

    kappa_by_eid, order_by_eid = peel(
        csr, precomputed, executor=executor, stats=peel_stats
    )
    edges = csr.edge_labels()
    kappa: Dict[Edge, int] = dict(zip(edges, kappa_by_eid))
    processing_order: List[Edge] = list(map(edges.__getitem__, order_by_eid))
    if counters is not None:
        support_sum = int(sum(precomputed[0]))
        counters["triangles_enumerated"] = support_sum // 3
        counters["support_sum"] = support_sum
        counters["edges_peeled"] = len(kappa)
        counters["bucket_decrements"] = support_sum - int(sum(kappa_by_eid))
    return TriangleKCoreResult(kappa=kappa, processing_order=processing_order)


def csr_decomposition(
    graph: Graph,
    *,
    counters: Optional[Dict[str, int]] = None,
    executor: str = "scalar",
    peel_stats: Optional[Dict[str, object]] = None,
) -> "TriangleKCoreResult":  # noqa: F821
    """Algorithm 1 via the CSR kernels, decoded to the public result type.

    ``executor`` selects the peel executor (L3): ``"scalar"`` is
    ``backend="csr"``, ``"vector"`` is ``backend="csr-vec"``.
    ``counters`` mirrors the instrumentation hook of
    :func:`repro.core.triangle_kcore.triangle_kcore_decomposition`: the
    same keys, derived from arrays the kernels build anyway;
    ``peel_stats`` receives the executor telemetry.
    """
    csr = CSRGraph.from_graph(graph)
    precomputed = supports_and_triangles(csr)
    return _decode_decomposition(
        csr, precomputed, counters, executor=executor, peel_stats=peel_stats
    )
