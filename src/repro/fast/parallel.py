"""Process-parallel triangle enumeration: the ``parallel`` backends.

Table II shows Algorithm 1's cost is dominated by triangle enumeration /
support counting, and that stage shards cleanly: every triangle is
discovered exactly once, from its lowest-ranked vertex, so partitioning
the CSR vertex range ``[0, n)`` into contiguous shards partitions the
triangle set.  This module fans that stage out over a process pool:

1. the parent freezes the graph into a :class:`~repro.fast.csr.CSRGraph`
   and **publishes** the flat arrays once into a
   ``multiprocessing.shared_memory`` segment
   (:class:`~repro.fast.shm.SharedCSR`); each worker receives only the
   tiny attach descriptor through the pool initializer and maps the
   segment zero-copy (``info["bytes_shipped"]`` records the pickled
   descriptor size — O(1) in the graph).  Hosts without shared memory
   fall back transparently to the legacy pickled-payload transport;
2. each worker runs :func:`~repro.fast.kernels.supports_and_triangles`
   over its vertex range ``[lo, hi)`` and returns a full-length support
   array plus its shard's triangle list (packed as raw int64 bytes —
   cheap to pickle, cheap to merge);
3. the parent validates that the shard ranges tile ``[0, n)`` exactly
   (raising :class:`BackendError` on overlap or gap instead of silently
   double-counting), sums the support arrays element-wise and
   concatenates the triangle lists in shard order — bit-identical to the
   sequential enumeration, because shard outputs preserve the global
   discovery order — then runs the selected peel executor
   (:mod:`repro.fast.peelers`): the scalar walk for ``parallel``, the
   level-synchronous vectorized one for ``parallel-vec``.

Because the merged ``(supports, tri_edges)`` equals the single-process
kernel output exactly, ``parallel`` produces the same kappa map *and*
processing order as ``csr`` (and ``parallel-vec`` the same as
``csr-vec``) for any worker count, and all of them the same kappa map as
``reference`` (the conformance suite asserts all of it).

Shards are balanced by arc count, not vertex count: the CSR relabels
vertices in ascending degree order, so equal vertex ranges would put all
hubs in the last shard.

Shared-memory lifetime: the parent owns the segment and removes it in a
``finally`` block around the pool — a crashed (even SIGKILL'd) worker
cannot leak a segment because workers only ever *attach* (see
:mod:`repro.fast.shm` for the full rules).

Failure contract: a worker that dies (OOM kill, segfault, ``os._exit``)
surfaces as :class:`~repro.exceptions.BackendError` in the parent — never
a hang — because :class:`concurrent.futures.ProcessPoolExecutor` detects
broken pools.  ``workers=1`` (and any graph that yields a single shard)
short-circuits to the in-process CSR path: no pool, no segment.
"""

from __future__ import annotations

import os
import pickle
import time
from array import array
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import BackendError
from ..graph.undirected import Graph
from . import csr as _csr_mod
from .csr import CSRGraph
from .kernels import supports_and_triangles

__all__ = [
    "BackendError",
    "ParallelInfo",
    "TRANSPORTS",
    "effective_workers",
    "parallel_count_triangles",
    "parallel_decomposition",
    "parallel_supports_and_triangles",
    "shard_ranges",
]

#: Structured record of one parallel run, for engine instrumentation:
#: ``{"workers": int, "shards": int, "shard_seconds": [float, ...],
#: "transport": str, "bytes_shipped": int}``.
ParallelInfo = Dict[str, object]

#: CSR handoff mechanisms: ``"auto"`` publishes via shared memory and
#: falls back to pickling when the host cannot map segments; the explicit
#: names force one path (tests use them; ``"shm"`` raises BackendError
#: when unavailable rather than degrade silently).
TRANSPORTS = ("auto", "shm", "pickle")

#: Environment knob tests use to make every pool worker die on startup,
#: proving the crash path raises BackendError instead of hanging (and, for
#: the shm transport, that the parent still removes the segment).
_CRASH_ENV = "_REPRO_PARALLEL_CRASH_TEST"

#: When True (via :func:`inject_shard_merge_bug`), the merge step drops the
#: last triangle of the final shard — the deliberate off-by-one the
#: mutation smoke-check must catch and shrink.
_SHARD_MERGE_BUG = False


def effective_workers(workers: Optional[int]) -> int:
    """Resolve a ``workers`` request to a concrete count (``>= 1``).

    ``None`` means "one per CPU" (``os.cpu_count()``); explicit values are
    validated but not capped — oversubscription is the caller's choice.
    """
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def shard_ranges(csr: CSRGraph, shards: int) -> List[Tuple[int, int]]:
    """Split ``[0, n)`` into at most ``shards`` contiguous vertex ranges.

    Cut points are chosen on the arc-count prefix (``indptr``) so every
    shard scans roughly the same number of adjacency entries regardless of
    the degree distribution.  Degenerate cuts are deduplicated, so sparse
    or tiny graphs may yield fewer ranges than requested (possibly a
    single one); an empty graph yields no ranges.  The returned ranges
    always tile ``[0, n)`` exactly — contiguous, disjoint, covering — a
    property the merge guard re-checks and the hypothesis suite hammers
    with adversarial degree distributions.
    """
    n = csr.num_vertices
    if n == 0 or shards <= 1:
        return [(0, n)] if n else []
    total_arcs = csr.indptr[n]
    if total_arcs == 0:
        return [(0, n)]
    shards = min(shards, n)
    cuts = [0]
    for i in range(1, shards):
        target = (total_arcs * i) // shards
        cut = bisect_left(csr.indptr, target)
        if cut > cuts[-1] and cut < n:
            cuts.append(cut)
    cuts.append(n)
    return list(zip(cuts[:-1], cuts[1:]))


def _validate_shard_tiling(n: int, shards: Sequence[Tuple[int, int]]) -> None:
    """Raise BackendError unless ``shards`` tile ``[0, n)`` exactly.

    Overlapping ranges would double-count triangles straddling the overlap
    (silently wrong supports); gaps would drop them.  Either way the merge
    must refuse rather than produce a plausible-looking wrong kappa map.
    """
    expected = 0
    for lo, hi in shards:
        if lo != expected or hi <= lo:
            raise BackendError(
                f"parallel backend: shard ranges {list(shards)} do not tile "
                f"[0, {n}) — overlap or gap at vertex {expected}; refusing "
                f"to merge (supports would be silently mis-counted)"
            )
        expected = hi
    if expected != n:
        raise BackendError(
            f"parallel backend: shard ranges {list(shards)} do not cover "
            f"[0, {n}) — missing tail from vertex {expected}; refusing to "
            f"merge (supports would be silently mis-counted)"
        )


# ---------------------------------------------------------------------- #
# worker-side machinery
# ---------------------------------------------------------------------- #

#: Worker-process CSR snapshot, installed once by :func:`_init_worker`.
_WORKER_CSR: Optional[CSRGraph] = None
#: The worker's attached SharedCSR (kept referenced so the views stay
#: valid for the pool's lifetime; unmapped implicitly at process exit).
_WORKER_SHARED = None


def _csr_payload(csr: CSRGraph) -> tuple:
    """Pickle-friendly flat-array snapshot (labels omitted: kernels never
    touch original labels, and they can be arbitrary unpicklable objects)."""
    return (
        csr.num_vertices,
        csr.num_edges,
        bytes(memoryview(csr.indptr)),
        bytes(memoryview(csr.indices)),
        bytes(memoryview(csr.arc_eids)),
        bytes(memoryview(csr.forward_start)),
        bytes(memoryview(csr.edge_endpoints)),
    )


def _csr_from_payload(payload: tuple) -> CSRGraph:
    num_vertices, num_edges, *blobs = payload
    return CSRGraph.from_arrays(
        num_vertices,
        num_edges,
        dict(zip(CSRGraph.ARRAY_FIELDS, blobs)),
    )


def _init_worker(transport: str, data: object) -> None:
    """Pool initializer: receive the CSR once, keep it in a module global.

    ``transport="shm"`` attaches to the parent's shared segment by name
    (zero-copy); ``"pickle"`` rehydrates the legacy array payload.
    """
    if os.environ.get(_CRASH_ENV):
        os._exit(13)
    global _WORKER_CSR, _WORKER_SHARED
    if transport == "shm":
        from .shm import SharedCSR

        _WORKER_SHARED = SharedCSR.attach(data)  # type: ignore[arg-type]
        _WORKER_CSR = _WORKER_SHARED.csr()
    else:
        _WORKER_CSR = _csr_from_payload(data)  # type: ignore[arg-type]


def _pack_shard(
    supports: List[int], tri_edges: List[int], seconds: float
) -> Tuple[bytes, bytes, float]:
    """Pack one shard's output as raw int64 bytes (cheap IPC, cheap merge)."""
    return (
        array("q", supports).tobytes(),
        array("q", tri_edges).tobytes(),
        seconds,
    )


def _supports_shard(bounds: Tuple[int, int]) -> Tuple[bytes, bytes, float]:
    """One worker task: supports + triangles for the vertex range."""
    lo, hi = bounds
    start = time.perf_counter()
    supports, tri_edges = supports_and_triangles(_WORKER_CSR, lo=lo, hi=hi)
    return _pack_shard(supports, tri_edges, time.perf_counter() - start)


# ---------------------------------------------------------------------- #
# parent-side merge
# ---------------------------------------------------------------------- #


def _merge_shards(
    csr: CSRGraph,
    shards: Sequence[Tuple[int, int]],
    shard_outputs: Sequence[Tuple[bytes, bytes, float]],
) -> Tuple[Tuple[List[int], List[int]], List[float]]:
    """Sum per-shard supports, concatenate triangle lists in shard order.

    Validates first that ``shards`` tile the vertex range exactly —
    overlapping or gapped shard output raises :class:`BackendError`
    instead of silently double-counting supports.
    """
    _validate_shard_tiling(csr.num_vertices, shards)
    np = _csr_mod.np
    m = csr.num_edges
    if np is not None:
        total = np.zeros(m, dtype=np.int64)
        for supports_blob, _, _ in shard_outputs:
            total += np.frombuffer(supports_blob, dtype=np.int64)
        supports = total.tolist()
    else:
        supports = [0] * m
        for supports_blob, _, _ in shard_outputs:
            for e, count in enumerate(array("q", supports_blob)):
                if count:
                    supports[e] += count
    tri_blob = b"".join(blob for _, blob, _ in shard_outputs)
    tri_edges: List[int] = array("q", tri_blob).tolist()
    if _SHARD_MERGE_BUG and tri_edges:
        # Deliberate fault injection (see inject_shard_merge_bug): lose the
        # final shard's last triangle, keeping supports/tri_edges mutually
        # consistent so the error shows up as a wrong kappa, not a crash.
        for e in tri_edges[-3:]:
            supports[e] -= 1
        del tri_edges[-3:]
    seconds = [elapsed for _, _, elapsed in shard_outputs]
    return (supports, tri_edges), seconds


def parallel_supports_and_triangles(
    csr: CSRGraph,
    *,
    workers: Optional[int] = None,
    inprocess: bool = False,
    info: Optional[ParallelInfo] = None,
    transport: str = "auto",
) -> Tuple[List[int], List[int]]:
    """Sharded ``(supports, tri_edges)``, identical to the sequential call.

    ``inprocess=True`` computes the shards serially in this process but
    still routes them through the same split/merge code — the cheap way
    for tests (and the fuzz oracle) to exercise the shard arithmetic
    without paying a pool spawn per call.  ``info`` (when given) receives
    the worker count, shard count, per-shard wall times, the transport
    used, and the bytes shipped per worker.  ``transport`` selects the
    CSR handoff (:data:`TRANSPORTS`).
    """
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )
    count = effective_workers(workers)
    shards = shard_ranges(csr, count)
    if info is not None:
        info["workers"] = count
        info["shards"] = len(shards)
        info["shard_seconds"] = []
        info["transport"] = "inprocess"
        info["bytes_shipped"] = 0
    if len(shards) <= 1 and not _SHARD_MERGE_BUG:
        return supports_and_triangles(csr)
    if inprocess or (len(shards) <= 1 and _SHARD_MERGE_BUG):
        outputs = [_shard_inprocess(csr, bounds) for bounds in shards]
    else:
        outputs = _run_pool(csr, shards, count, transport, info)
    precomputed, seconds = _merge_shards(csr, shards, outputs)
    if info is not None:
        info["shard_seconds"] = [round(s, 6) for s in seconds]
    return precomputed


def _shard_inprocess(
    csr: CSRGraph, bounds: Tuple[int, int]
) -> Tuple[bytes, bytes, float]:
    lo, hi = bounds
    start = time.perf_counter()
    supports, tri_edges = supports_and_triangles(csr, lo=lo, hi=hi)
    return _pack_shard(supports, tri_edges, time.perf_counter() - start)


def _prepare_transport(
    csr: CSRGraph, transport: str
) -> Tuple[str, object, object]:
    """Resolve the CSR handoff: ``(mode, init_data, owned_segment_or_None)``.

    ``"auto"`` tries shared memory first and falls back to the pickled
    payload; explicit modes force their path (``"shm"`` raises
    BackendError when the host cannot map segments).
    """
    if transport in ("auto", "shm"):
        try:
            from .shm import SharedCSR

            shared = SharedCSR.publish(csr)
            return "shm", shared.descriptor, shared
        except (OSError, ImportError) as error:
            if transport == "shm":
                raise BackendError(
                    f"parallel backend: shared-memory transport requested "
                    f"but unavailable ({error}); use transport='auto' to "
                    f"fall back to pickling"
                ) from error
    return "pickle", _csr_payload(csr), None


def _run_pool(
    csr: CSRGraph,
    shards: List[Tuple[int, int]],
    workers: int,
    transport: str,
    info: Optional[ParallelInfo] = None,
) -> List[Tuple[bytes, bytes, float]]:
    """Fan the shards out over a fresh process pool; fail loud, never hang.

    The parent owns the shared segment (when the shm transport is active)
    and removes it in the ``finally`` — on success, on a broken pool, and
    on a crashed worker alike, so ``/dev/shm`` never accumulates segments.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    pool_size = min(workers, len(shards))
    mode, init_data, shared = _prepare_transport(csr, transport)
    if info is not None:
        info["transport"] = mode
        # What actually crosses the process boundary per worker: the tiny
        # attach descriptor under shm, the whole array payload under pickle.
        info["bytes_shipped"] = len(pickle.dumps(init_data))
    try:
        with ProcessPoolExecutor(
            max_workers=pool_size,
            initializer=_init_worker,
            initargs=(mode, init_data),
        ) as pool:
            return list(pool.map(_supports_shard, shards))
    except BrokenProcessPool as error:
        raise BackendError(
            f"parallel backend: a worker process died while enumerating "
            f"triangles ({pool_size} workers, {len(shards)} shards); the "
            f"graph is untouched — retry with backend='csr' or workers=1"
        ) from error
    except (OSError, ValueError) as error:
        raise BackendError(
            f"parallel backend: could not run the {pool_size}-worker "
            f"process pool ({error}); retry with backend='csr' or workers=1"
        ) from error
    finally:
        if shared is not None:
            shared.close()
            shared.unlink()


# ---------------------------------------------------------------------- #
# public backend entry points
# ---------------------------------------------------------------------- #


def parallel_count_triangles(
    graph: Graph, *, workers: Optional[int] = None, inprocess: bool = False
) -> int:
    """Total triangle count via the sharded enumeration."""
    csr = CSRGraph.from_graph(graph)
    supports, _ = parallel_supports_and_triangles(
        csr, workers=workers, inprocess=inprocess
    )
    return sum(supports) // 3


def parallel_decomposition(
    graph: Graph,
    *,
    workers: Optional[int] = None,
    inprocess: bool = False,
    counters: Optional[Dict[str, int]] = None,
    info: Optional[ParallelInfo] = None,
    executor: str = "scalar",
    peel_stats: Optional[Dict[str, object]] = None,
    transport: str = "auto",
) -> "TriangleKCoreResult":  # noqa: F821
    """Algorithm 1 with process-parallel triangle enumeration.

    Enumeration/support counting fans out over ``workers`` processes (see
    module docstring); the peel runs in the parent through the selected
    :mod:`~repro.fast.peelers` executor — ``"scalar"`` (default, the
    ``parallel`` backend: bit-identical to ``backend="csr"``, same kappa
    map and processing order, for every worker count) or ``"vector"``
    (the ``parallel-vec`` backend: bit-identical to ``csr-vec``).

    ``workers=None`` uses one worker per CPU; ``workers=1`` (or any graph
    too small to split) short-circuits to the in-process CSR kernels.
    ``counters`` mirrors the instrumentation hook of the other backends;
    ``info`` additionally receives ``workers``/``shards``/
    ``shard_seconds``/``transport``/``bytes_shipped``; ``peel_stats``
    receives the peel executor's telemetry.
    """
    from . import _decode_decomposition

    count = effective_workers(workers)
    if count <= 1 and not _SHARD_MERGE_BUG:
        if info is not None:
            info["workers"] = 1
            info["shards"] = 1
            info["shard_seconds"] = []
            info["transport"] = "inprocess"
            info["bytes_shipped"] = 0
        from . import csr_decomposition

        return csr_decomposition(
            graph, counters=counters, executor=executor, peel_stats=peel_stats
        )
    csr = CSRGraph.from_graph(graph)
    precomputed = parallel_supports_and_triangles(
        csr, workers=count, inprocess=inprocess, info=info, transport=transport
    )
    return _decode_decomposition(
        csr, precomputed, counters, executor=executor, peel_stats=peel_stats
    )


# ---------------------------------------------------------------------- #
# fault injection (mutation smoke-check)
# ---------------------------------------------------------------------- #


class inject_shard_merge_bug:
    """Context manager: make the shard merge lose its last triangle.

    While active, :func:`parallel_supports_and_triangles` silently drops
    the final triangle from the merged list (supports adjusted to stay
    consistent, so the peel's sanity check passes) — exactly the class of
    off-by-one a buggy shard-sum would produce.  The mutation smoke-check
    proves the differential harness detects and shrinks it; see
    ``tests/test_parallel_backend.py`` and docs/testing.md.
    """

    def __enter__(self) -> "inject_shard_merge_bug":
        global _SHARD_MERGE_BUG
        _SHARD_MERGE_BUG = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _SHARD_MERGE_BUG
        _SHARD_MERGE_BUG = False
