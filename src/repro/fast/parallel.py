"""Process-parallel triangle enumeration: the ``parallel`` backend.

Table II shows Algorithm 1's cost is dominated by triangle enumeration /
support counting, and that stage shards cleanly: every triangle is
discovered exactly once, from its lowest-ranked vertex, so partitioning
the CSR vertex range ``[0, n)`` into contiguous shards partitions the
triangle set.  This module fans that stage out over a process pool:

1. the parent freezes the graph into a :class:`~repro.fast.csr.CSRGraph`
   and ships the flat arrays to each worker **once**, through the pool
   initializer (workers hold them in a module global for the pool's
   lifetime);
2. each worker runs :func:`~repro.fast.kernels.supports_and_triangles`
   over its vertex range ``[lo, hi)`` and returns a full-length support
   array plus its shard's triangle list;
3. the parent sums the support arrays element-wise and concatenates the
   triangle lists in shard order — bit-identical to the sequential
   enumeration, because shard outputs preserve the global discovery
   order — then runs the existing **sequential** peel.

Because the merged ``(supports, tri_edges)`` equals the single-process
kernel output exactly, the ``parallel`` backend produces the same kappa
map *and* processing order as ``csr`` for any worker count, and the same
kappa map as ``reference`` (the conformance suite asserts both).

Shards are balanced by arc count, not vertex count: the CSR relabels
vertices in ascending degree order, so equal vertex ranges would put all
hubs in the last shard.

Failure contract: a worker that dies (OOM kill, segfault, ``os._exit``)
surfaces as :class:`~repro.exceptions.BackendError` in the parent — never
a hang — because :class:`concurrent.futures.ProcessPoolExecutor` detects
broken pools.  ``workers=1`` (and any graph that yields a single shard)
short-circuits to the in-process CSR path: no pool, no pickling.
"""

from __future__ import annotations

import os
import time
from array import array
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import BackendError
from ..graph.undirected import Graph
from . import csr as _csr_mod
from .csr import CSRGraph
from .kernels import supports_and_triangles

__all__ = [
    "BackendError",
    "ParallelInfo",
    "effective_workers",
    "parallel_count_triangles",
    "parallel_decomposition",
    "parallel_supports_and_triangles",
    "shard_ranges",
]

#: Structured record of one parallel run, for engine instrumentation:
#: ``{"workers": int, "shards": int, "shard_seconds": [float, ...]}``.
ParallelInfo = Dict[str, object]

#: Environment knob tests use to make every pool worker die on startup,
#: proving the crash path raises BackendError instead of hanging.
_CRASH_ENV = "_REPRO_PARALLEL_CRASH_TEST"

#: When True (via :func:`inject_shard_merge_bug`), the merge step drops the
#: last triangle of the final shard — the deliberate off-by-one the
#: mutation smoke-check must catch and shrink.
_SHARD_MERGE_BUG = False


def effective_workers(workers: Optional[int]) -> int:
    """Resolve a ``workers`` request to a concrete count (``>= 1``).

    ``None`` means "one per CPU" (``os.cpu_count()``); explicit values are
    validated but not capped — oversubscription is the caller's choice.
    """
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def shard_ranges(csr: CSRGraph, shards: int) -> List[Tuple[int, int]]:
    """Split ``[0, n)`` into at most ``shards`` contiguous vertex ranges.

    Cut points are chosen on the arc-count prefix (``indptr``) so every
    shard scans roughly the same number of adjacency entries regardless of
    the degree distribution.  Degenerate cuts are deduplicated, so sparse
    or tiny graphs may yield fewer ranges than requested (possibly a
    single one); an empty graph yields no ranges.
    """
    n = csr.num_vertices
    if n == 0 or shards <= 1:
        return [(0, n)] if n else []
    total_arcs = csr.indptr[n]
    if total_arcs == 0:
        return [(0, n)]
    shards = min(shards, n)
    cuts = [0]
    for i in range(1, shards):
        target = (total_arcs * i) // shards
        cut = bisect_left(csr.indptr, target)
        if cut > cuts[-1] and cut < n:
            cuts.append(cut)
    cuts.append(n)
    return list(zip(cuts[:-1], cuts[1:]))


# ---------------------------------------------------------------------- #
# worker-side machinery
# ---------------------------------------------------------------------- #

#: Worker-process CSR snapshot, installed once by :func:`_init_worker`.
_WORKER_CSR: Optional[CSRGraph] = None


def _csr_payload(csr: CSRGraph) -> tuple:
    """Pickle-friendly flat-array snapshot (labels omitted: kernels never
    touch original labels, and they can be arbitrary unpicklable objects)."""
    return (
        csr.num_vertices,
        csr.num_edges,
        csr.indptr.tobytes(),
        csr.indices.tobytes(),
        csr.arc_eids.tobytes(),
        csr.forward_start.tobytes(),
        csr.edge_endpoints.tobytes(),
    )


def _csr_from_payload(payload: tuple) -> CSRGraph:
    csr = CSRGraph()
    (
        csr.num_vertices,
        csr.num_edges,
        indptr,
        indices,
        arc_eids,
        forward_start,
        edge_endpoints,
    ) = payload
    csr.indptr = array("q", indptr)
    csr.indices = array("q", indices)
    csr.arc_eids = array("q", arc_eids)
    csr.forward_start = array("q", forward_start)
    csr.edge_endpoints = array("q", edge_endpoints)
    return csr


def _init_worker(payload: tuple) -> None:
    """Pool initializer: receive the CSR arrays once, keep them global."""
    if os.environ.get(_CRASH_ENV):
        os._exit(13)
    global _WORKER_CSR
    _WORKER_CSR = _csr_from_payload(payload)


def _supports_shard(bounds: Tuple[int, int]) -> Tuple[List[int], List[int], float]:
    """One worker task: supports + triangles for the vertex range."""
    lo, hi = bounds
    start = time.perf_counter()
    supports, tri_edges = supports_and_triangles(_WORKER_CSR, lo=lo, hi=hi)
    return supports, tri_edges, time.perf_counter() - start


# ---------------------------------------------------------------------- #
# parent-side merge
# ---------------------------------------------------------------------- #


def _merge_shards(
    csr: CSRGraph,
    shard_outputs: Sequence[Tuple[List[int], List[int], float]],
) -> Tuple[Tuple[List[int], List[int]], List[float]]:
    """Sum per-shard supports, concatenate triangle lists in shard order."""
    np = _csr_mod.np
    m = csr.num_edges
    if np is not None:
        total = np.zeros(m, dtype=np.int64)
        for supports, _, _ in shard_outputs:
            total += np.asarray(supports, dtype=np.int64)
        supports = total.tolist()
    else:
        supports = [0] * m
        for shard_supports, _, _ in shard_outputs:
            for e, count in enumerate(shard_supports):
                if count:
                    supports[e] += count
    tri_edges: List[int] = []
    for _, shard_tris, _ in shard_outputs:
        tri_edges.extend(shard_tris)
    if _SHARD_MERGE_BUG and tri_edges:
        # Deliberate fault injection (see inject_shard_merge_bug): lose the
        # final shard's last triangle, keeping supports/tri_edges mutually
        # consistent so the error shows up as a wrong kappa, not a crash.
        for e in tri_edges[-3:]:
            supports[e] -= 1
        del tri_edges[-3:]
    seconds = [elapsed for _, _, elapsed in shard_outputs]
    return (supports, tri_edges), seconds


def parallel_supports_and_triangles(
    csr: CSRGraph,
    *,
    workers: Optional[int] = None,
    inprocess: bool = False,
    info: Optional[ParallelInfo] = None,
) -> Tuple[List[int], List[int]]:
    """Sharded ``(supports, tri_edges)``, identical to the sequential call.

    ``inprocess=True`` computes the shards serially in this process but
    still routes them through the same split/merge code — the cheap way
    for tests (and the fuzz oracle) to exercise the shard arithmetic
    without paying a pool spawn per call.  ``info`` (when given) receives
    the worker count, shard count, and per-shard wall times.
    """
    count = effective_workers(workers)
    shards = shard_ranges(csr, count)
    if info is not None:
        info["workers"] = count
        info["shards"] = len(shards)
        info["shard_seconds"] = []
    if len(shards) <= 1 and not _SHARD_MERGE_BUG:
        return supports_and_triangles(csr)
    if inprocess or (len(shards) <= 1 and _SHARD_MERGE_BUG):
        payload_csr = csr
        outputs = [_shard_inprocess(payload_csr, bounds) for bounds in shards]
    else:
        outputs = _run_pool(csr, shards, count)
    precomputed, seconds = _merge_shards(csr, outputs)
    if info is not None:
        info["shard_seconds"] = [round(s, 6) for s in seconds]
    return precomputed


def _shard_inprocess(
    csr: CSRGraph, bounds: Tuple[int, int]
) -> Tuple[List[int], List[int], float]:
    lo, hi = bounds
    start = time.perf_counter()
    supports, tri_edges = supports_and_triangles(csr, lo=lo, hi=hi)
    return supports, tri_edges, time.perf_counter() - start


def _run_pool(
    csr: CSRGraph, shards: List[Tuple[int, int]], workers: int
) -> List[Tuple[List[int], List[int], float]]:
    """Fan the shards out over a fresh process pool; fail loud, never hang."""
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    pool_size = min(workers, len(shards))
    try:
        with ProcessPoolExecutor(
            max_workers=pool_size,
            initializer=_init_worker,
            initargs=(_csr_payload(csr),),
        ) as pool:
            return list(pool.map(_supports_shard, shards))
    except BrokenProcessPool as error:
        raise BackendError(
            f"parallel backend: a worker process died while enumerating "
            f"triangles ({pool_size} workers, {len(shards)} shards); the "
            f"graph is untouched — retry with backend='csr' or workers=1"
        ) from error
    except (OSError, ValueError) as error:
        raise BackendError(
            f"parallel backend: could not run the {pool_size}-worker "
            f"process pool ({error}); retry with backend='csr' or workers=1"
        ) from error


# ---------------------------------------------------------------------- #
# public backend entry points
# ---------------------------------------------------------------------- #


def parallel_count_triangles(
    graph: Graph, *, workers: Optional[int] = None, inprocess: bool = False
) -> int:
    """Total triangle count via the sharded enumeration."""
    csr = CSRGraph.from_graph(graph)
    supports, _ = parallel_supports_and_triangles(
        csr, workers=workers, inprocess=inprocess
    )
    return sum(supports) // 3


def parallel_decomposition(
    graph: Graph,
    *,
    workers: Optional[int] = None,
    inprocess: bool = False,
    counters: Optional[Dict[str, int]] = None,
    info: Optional[ParallelInfo] = None,
) -> "TriangleKCoreResult":  # noqa: F821
    """Algorithm 1 with process-parallel triangle enumeration.

    Enumeration/support counting fans out over ``workers`` processes (see
    module docstring); the peel itself stays sequential, as in the paper.
    Output is bit-identical to ``backend="csr"`` — same kappa map, same
    processing order — for every worker count.

    ``workers=None`` uses one worker per CPU; ``workers=1`` (or any graph
    too small to split) short-circuits to the in-process CSR kernels.
    ``counters`` mirrors the instrumentation hook of the other backends;
    ``info`` additionally receives ``workers``/``shards``/``shard_seconds``.
    """
    from . import _decode_decomposition

    count = effective_workers(workers)
    if count <= 1 and not _SHARD_MERGE_BUG:
        if info is not None:
            info["workers"] = 1
            info["shards"] = 1
            info["shard_seconds"] = []
        from . import csr_decomposition

        return csr_decomposition(graph, counters=counters)
    csr = CSRGraph.from_graph(graph)
    precomputed = parallel_supports_and_triangles(
        csr, workers=count, inprocess=inprocess, info=info
    )
    return _decode_decomposition(csr, precomputed, counters)


# ---------------------------------------------------------------------- #
# fault injection (mutation smoke-check)
# ---------------------------------------------------------------------- #


class inject_shard_merge_bug:
    """Context manager: make the shard merge lose its last triangle.

    While active, :func:`parallel_supports_and_triangles` silently drops
    the final triangle from the merged list (supports adjusted to stay
    consistent, so the peel's sanity check passes) — exactly the class of
    off-by-one a buggy shard-sum would produce.  The mutation smoke-check
    proves the differential harness detects and shrinks it; see
    ``tests/test_parallel_backend.py`` and docs/testing.md.
    """

    def __enter__(self) -> "inject_shard_merge_bug":
        global _SHARD_MERGE_BUG
        _SHARD_MERGE_BUG = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _SHARD_MERGE_BUG
        _SHARD_MERGE_BUG = False
