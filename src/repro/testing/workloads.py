"""Deterministic, seed-driven workload generators for the fuzzing harness.

Each profile is a function ``(seed, n_ops) -> EditScript`` producing the
same script for the same arguments on every platform and Python version
(only :class:`random.Random` with an explicit seed, no iteration-order
dependence).  The profiles target the distinct failure surfaces of the
dynamic maintenance algorithms:

``uniform``
    Unbiased insert/delete mix over a mid-sized vertex pool — the baseline
    "anything goes" workload.
``churn``
    Toggling on a *tiny* fixed vertex set, so the graph repeatedly sweeps
    through dense states and every update lands in the middle of existing
    triangle structure (maximum promote/demote cascade pressure per op).
``triangle_bursts``
    Explicitly closes triangles in bursts: pick an existing edge, attach an
    apex to both endpoints.  Drives the level-climb loop of Algorithm 5 and
    the coupled promotion of fresh triangles whose edges must rise together.
``grow_shrink``
    Build-up phase of mostly insertions (with clique-biased pair choice),
    then a teardown phase of deletions and whole-vertex removals — exercises
    deep demotion cascades, including the Algorithm 7 seeding rule.
``adversarial``
    Valid ops interleaved with deliberately invalid ones — self loops,
    duplicate insertions, deletions of absent edges, removals of absent
    vertices — checking that error paths reject cleanly *without* corrupting
    maintained state.
``heavy_tail``
    Builds an erased-configuration-model backbone with a power-law-ish
    degree sequence, then churns with hub-biased endpoint choice — most
    updates land on a few high-degree vertices whose triangle
    neighborhoods are large (the regime BA/R-MAT graphs put the
    maintainers in, which the flat-pool profiles above never reach).
``self_similar``
    Builds a stochastic-Kronecker backbone (recursive community
    structure at every scale), then toggles edges inside sampled
    communities so cascades repeatedly cross the self-similar block
    boundaries.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from ..graph.edge import Vertex
from ..graph.undirected import Graph
from .editscript import EditOp, EditScript


def _toggle(state: Graph, ops: List[EditOp], u: Vertex, v: Vertex) -> None:
    """Emit the op that flips edge ``{u, v}`` in the shadow ``state``."""
    if state.has_edge(u, v):
        ops.append(EditOp("remove", u, v))
        state.remove_edge(u, v)
    else:
        ops.append(EditOp("add", u, v))
        state.add_edge(u, v)


def uniform_mix(seed: int, n_ops: int, *, n_vertices: int = 32) -> EditScript:
    """Random insert/delete mix, biased ~60/40 toward insertion."""
    rng = random.Random(f"uniform:{seed}")
    pool = list(range(n_vertices))
    state = Graph(vertices=pool)
    ops: List[EditOp] = []
    edges: List[Tuple[Vertex, Vertex]] = []
    while len(ops) < n_ops:
        if edges and rng.random() < 0.4:
            index = rng.randrange(len(edges))
            u, v = edges[index]
            if state.has_edge(u, v):
                ops.append(EditOp("remove", u, v))
                state.remove_edge(u, v)
                edges[index] = edges[-1]
                edges.pop()
                continue
            edges[index] = edges[-1]
            edges.pop()
        u, v = rng.sample(pool, 2)
        if not state.has_edge(u, v):
            ops.append(EditOp("add", u, v))
            state.add_edge(u, v)
            edges.append((u, v))
    return EditScript(ops=ops[:n_ops], name=f"uniform/seed={seed}")


def churn(seed: int, n_ops: int, *, n_vertices: int = 8) -> EditScript:
    """Pure toggling on a fixed tiny vertex set (dense-state pressure)."""
    rng = random.Random(f"churn:{seed}")
    pool = list(range(n_vertices))
    state = Graph(vertices=pool)
    ops: List[EditOp] = []
    for _ in range(n_ops):
        u, v = rng.sample(pool, 2)
        _toggle(state, ops, u, v)
    return EditScript(ops=ops, name=f"churn/seed={seed}")


def triangle_bursts(seed: int, n_ops: int, *, n_vertices: int = 24) -> EditScript:
    """Triangle-closing bursts around existing edges, with sparse removals."""
    rng = random.Random(f"triangle_bursts:{seed}")
    pool = list(range(n_vertices))
    state = Graph(vertices=pool)
    ops: List[EditOp] = []
    while len(ops) < n_ops:
        roll = rng.random()
        existing = [edge for edge in state.edges()]
        if roll < 0.15 and existing:
            u, v = rng.choice(existing)
            ops.append(EditOp("remove", u, v))
            state.remove_edge(u, v)
        elif roll < 0.75 and existing:
            # Burst: close one or more triangles over a random base edge.
            u, v = rng.choice(existing)
            for _ in range(rng.randint(1, 3)):
                w = rng.choice(pool)
                if w == u or w == v:
                    continue
                if not state.has_edge(u, w):
                    ops.append(EditOp("add", u, w))
                    state.add_edge(u, w)
                if not state.has_edge(v, w):
                    ops.append(EditOp("add", v, w))
                    state.add_edge(v, w)
        else:
            u, v = rng.sample(pool, 2)
            if not state.has_edge(u, v):
                ops.append(EditOp("add", u, v))
                state.add_edge(u, v)
    return EditScript(ops=ops[:n_ops], name=f"triangle_bursts/seed={seed}")


def grow_shrink(seed: int, n_ops: int, *, n_vertices: int = 28) -> EditScript:
    """Mostly-insert growth phase, then a teardown of deletions + vertices."""
    rng = random.Random(f"grow_shrink:{seed}")
    pool = list(range(n_vertices))
    state = Graph(vertices=pool)
    ops: List[EditOp] = []
    grow_budget = max(1, (2 * n_ops) // 3)
    # Growth: clique-biased — prefer pairs inside a small "hot" subset so the
    # teardown has real multi-level structure to demolish.
    hot = pool[: max(5, n_vertices // 3)]
    while len(ops) < grow_budget:
        src = hot if rng.random() < 0.6 else pool
        u, v = rng.sample(src, 2)
        if not state.has_edge(u, v):
            ops.append(EditOp("add", u, v))
            state.add_edge(u, v)
        elif rng.random() < 0.1:
            ops.append(EditOp("remove", u, v))
            state.remove_edge(u, v)
    # Teardown: random edge deletions plus occasional vertex removals
    # (restored as isolated vertices so later growth rounds can reuse them).
    while len(ops) < n_ops:
        existing = [edge for edge in state.edges()]
        if not existing:
            u, v = rng.sample(pool, 2)
            ops.append(EditOp("add", u, v))
            state.add_edge(u, v)
            continue
        if rng.random() < 0.08:
            vertex = rng.choice(pool)
            if state.has_vertex(vertex):
                ops.append(EditOp("remove_vertex", vertex))
                state.remove_vertex(vertex)
                ops.append(EditOp("add_vertex", vertex))
                state.add_vertex(vertex)
                continue
        u, v = rng.choice(existing)
        ops.append(EditOp("remove", u, v))
        state.remove_edge(u, v)
    return EditScript(ops=ops[:n_ops], name=f"grow_shrink/seed={seed}")


def adversarial(seed: int, n_ops: int, *, n_vertices: int = 16) -> EditScript:
    """Valid churn laced with deliberately invalid ops (~30%)."""
    rng = random.Random(f"adversarial:{seed}")
    pool = list(range(n_vertices))
    state = Graph(vertices=pool)
    ops: List[EditOp] = []
    ghost = n_vertices + 100  # a vertex that is never added
    for _ in range(n_ops):
        roll = rng.random()
        existing = [edge for edge in state.edges()]
        if roll < 0.08:
            ops.append(EditOp("add", rng.choice(pool), rng.choice(pool)))
        elif roll < 0.16 and existing:
            ops.append(EditOp("add", *rng.choice(existing)))  # duplicate
        elif roll < 0.24:
            u, v = rng.sample(pool, 2)
            if not state.has_edge(u, v):
                ops.append(EditOp("remove", u, v))  # missing edge
            else:
                _toggle(state, ops, u, v)
        elif roll < 0.30:
            ops.append(EditOp("remove_vertex", ghost))  # missing vertex
        else:
            u, v = rng.sample(pool, 2)
            _toggle(state, ops, u, v)
    # The 8% self-loop branch above may emit add(u, u) with u == u only by
    # chance; force a few in deterministically so the path is always covered.
    for index in range(0, len(ops), max(1, n_ops // 4)):
        vertex = rng.choice(pool)
        ops.insert(index, EditOp("add", vertex, vertex))
    return EditScript(ops=ops[:n_ops], name=f"adversarial/seed={seed}")


def _backbone_then_churn(
    base: Graph,
    rng: random.Random,
    n_ops: int,
    pick_pair: Callable[[random.Random, Graph], Tuple[Vertex, Vertex]],
    name: str,
) -> EditScript:
    """Shared shape of the generator-backed profiles.

    Phase 1 inserts the backbone graph's edges (canonical order, capped
    at two thirds of the op budget so there is always a churn phase);
    phase 2 toggles pairs chosen by ``pick_pair`` against the live
    shadow state until the budget is spent.
    """
    pool = sorted(base.vertices(), key=repr)
    state = Graph(vertices=pool)
    ops: List[EditOp] = []
    build_budget = max(1, (2 * n_ops) // 3)
    for u, v in sorted(base.edges(), key=repr):
        if len(ops) >= build_budget:
            break
        ops.append(EditOp("add", u, v))
        state.add_edge(u, v)
    while len(ops) < n_ops:
        u, v = pick_pair(rng, state)
        if u == v:
            continue
        _toggle(state, ops, u, v)
    return EditScript(ops=ops[:n_ops], name=name)


def heavy_tail(seed: int, n_ops: int, *, n_vertices: int = 30) -> EditScript:
    """Hub-biased churn over an erased-configuration-model backbone."""
    from ..graph.generators import configuration_model

    rng = random.Random(f"heavy_tail:{seed}")
    # Zipf-ish decreasing degree sequence: a few hubs, a long tail of
    # degree-2 vertices; padded by one stub if the sum comes out odd.
    degrees = [
        max(2, int(round(n_vertices / (rank + 1) ** 0.8)))
        for rank in range(n_vertices)
    ]
    if sum(degrees) % 2 != 0:
        degrees[-1] += 1
    base = configuration_model(degrees, seed=seed)
    pool = sorted(base.vertices(), key=repr)

    def pick_pair(r: random.Random, state: Graph) -> Tuple[Vertex, Vertex]:
        # Hub bias: one endpoint by degree-weighted choice over the
        # *target* sequence (stable across the run), the other uniform.
        u = r.choices(pool, weights=degrees)[0]
        v = r.choice(pool)
        return u, v

    return _backbone_then_churn(
        base, rng, n_ops, pick_pair, f"heavy_tail/seed={seed}"
    )


def self_similar(seed: int, n_ops: int, *, iterations: int = 5) -> EditScript:
    """Community-local churn over a stochastic-Kronecker backbone."""
    from ..graph.generators import kronecker

    rng = random.Random(f"self_similar:{seed}")
    initiator = [[0.95, 0.4], [0.4, 0.65]]
    base = kronecker(initiator, iterations, seed=seed)
    n = base.num_vertices

    def pick_pair(r: random.Random, state: Graph) -> Tuple[Vertex, Vertex]:
        # Pick a self-similar block (a base-2 prefix) and toggle inside
        # it, so edits concentrate in one community at a random scale.
        level = r.randint(1, iterations - 1)
        block = n >> level
        start = r.randrange(0, n - block + 1, block)
        u = start + r.randrange(block)
        v = start + r.randrange(block)
        return u, v

    return _backbone_then_churn(
        base, rng, n_ops, pick_pair, f"self_similar/seed={seed}"
    )


#: Profile registry: name -> generator callable.
PROFILES: Dict[str, Callable[[int, int], EditScript]] = {
    "uniform": uniform_mix,
    "churn": churn,
    "triangle_bursts": triangle_bursts,
    "grow_shrink": grow_shrink,
    "adversarial": adversarial,
    "heavy_tail": heavy_tail,
    "self_similar": self_similar,
}


def generate(profile: str, seed: int, n_ops: int) -> EditScript:
    """Generate the ``profile`` workload for ``(seed, n_ops)``."""
    try:
        generator = PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown workload profile {profile!r}; "
            f"expected one of {sorted(PROFILES)}"
        ) from None
    return generator(seed, n_ops)
