"""``repro.testing`` — differential oracle harness for dynamic maintenance.

The incremental kappa-maintenance algorithms (paper Algorithms 2/5/6/7) are
the subtlest code in this library and the easiest to silently break while
optimizing.  This package turns "four independent ways to compute kappa"
into an automated adversary:

* :mod:`~repro.testing.editscript` — serializable, total edit scripts (the
  shared language of generators, runner, bundles and shrinker);
* :mod:`~repro.testing.workloads` — deterministic seed-driven workload
  generators (``uniform``, ``churn``, ``triangle_bursts``, ``grow_shrink``,
  ``adversarial``);
* :mod:`~repro.testing.oracles` — the checkpoint oracle matrix
  (RecomputeBaseline, CSR kernels, networkx ``k_truss``, and the opt-in
  sharded ``parallel`` backend) and fault injection for the mutation
  smoke-check;
* :mod:`~repro.testing.runner` — drives a script through
  :class:`~repro.core.dynamic.DynamicTriangleKCore` with per-op Rule 0 /
  error-contract invariants and per-checkpoint oracle comparison;
* :mod:`~repro.testing.bundle` — JSON repro bundles (replayable
  byte-for-byte, used for the committed regression corpus);
* :mod:`~repro.testing.shrink` — verified delta-debugging of failing
  scripts to a locally minimal repro;
* :mod:`~repro.testing.fuzz` — the orchestration used by ``repro fuzz``
  and ``tests/test_differential_fuzz.py``.

See ``docs/testing.md`` for the operator's guide.
"""

from __future__ import annotations

from .bundle import FORMAT, ReproBundle, regression_bundle, replay
from .editscript import (
    OP_KINDS,
    CoalescedScript,
    EditOp,
    EditScript,
    apply_coalesced,
    apply_op,
    coalesce,
    expected_outcome,
    kappa_from_json,
    kappa_to_json,
)
from .fuzz import FuzzResult, ProfileOutcome, fuzz
from .oracles import (
    DEFAULT_ORACLES,
    ORACLE_NAMES,
    BatchBoundaryBugMaintainer,
    CheckpointOracles,
    OffByOneMaintainer,
    batch_boundary_bug_sut,
    default_sut,
    networkx_available,
    perturbed_sut_factory,
    stored_sut,
)
from .runner import Divergence, RunReport, run_script
from .shrink import ShrinkResult, shrink_script
from .workloads import PROFILES, generate

__all__ = [
    "BatchBoundaryBugMaintainer",
    "CheckpointOracles",
    "CoalescedScript",
    "DEFAULT_ORACLES",
    "Divergence",
    "EditOp",
    "EditScript",
    "FORMAT",
    "FuzzResult",
    "OP_KINDS",
    "ORACLE_NAMES",
    "OffByOneMaintainer",
    "PROFILES",
    "ProfileOutcome",
    "ReproBundle",
    "RunReport",
    "ShrinkResult",
    "apply_coalesced",
    "apply_op",
    "batch_boundary_bug_sut",
    "coalesce",
    "default_sut",
    "expected_outcome",
    "fuzz",
    "generate",
    "kappa_from_json",
    "kappa_to_json",
    "networkx_available",
    "perturbed_sut_factory",
    "regression_bundle",
    "replay",
    "run_script",
    "shrink_script",
    "stored_sut",
]
