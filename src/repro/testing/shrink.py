"""Automatic shrinking: delta-debugging edit scripts to a local minimum.

Given a failing script and a ``fails(script) -> bool`` predicate (normally
"the oracle runner reports a divergence"), :func:`shrink_script` searches
for a smaller script that still fails, using three reduction passes run to
a fixed point:

1. **Chunk deletion** (ddmin-style): try removing contiguous chunks at
   geometrically shrinking granularity, down to single ops.
2. **Pair cancellation**: an ``add(u, v)`` whose edge is later removed by a
   ``remove(u, v)`` with no other op touching that edge in between is a
   structural no-op pair; try dropping both at once.  Chunk deletion alone
   cannot find these (dropping either op alone changes the final graph).
3. **Dense relabeling**: rename vertices to ``0..n-1`` in first-appearance
   order, normalizing the script so shrunk corpus bundles are canonical and
   diffable.

Every candidate reduction is *verified* by re-running ``fails`` before it
is accepted, so the result is guaranteed to still fail — the shrinker can
be slow, but it cannot lie.  Because edit scripts are total (invalid ops
are well-defined adversarial ops, see :mod:`repro.testing.editscript`),
every subset of a script is itself a valid script and the search space has
no holes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from .editscript import EditOp, EditScript, canonical_edge

FailsPredicate = Callable[[EditScript], bool]


@dataclass
class ShrinkResult:
    """The minimized script plus search statistics."""

    script: EditScript
    original_ops: int
    evaluations: int  #: number of ``fails`` invocations spent
    rounds: int       #: full fixed-point iterations

    @property
    def shrunk_ops(self) -> int:
        return len(self.script)


def _try(ops: List[EditOp], fails: FailsPredicate, counter: List[int]) -> bool:
    counter[0] += 1
    return fails(EditScript(ops=ops))


def _chunk_pass(
    ops: List[EditOp], fails: FailsPredicate, counter: List[int]
) -> List[EditOp]:
    """Remove contiguous chunks, halving chunk size down to one op."""
    size = max(len(ops) // 2, 1)
    while size >= 1:
        start = 0
        while start < len(ops):
            candidate = ops[:start] + ops[start + size:]
            if len(candidate) < len(ops) and _try(candidate, fails, counter):
                ops = candidate
                # Do not advance: the next chunk slid into this position.
            else:
                start += size
        if size == 1:
            break
        size //= 2
    return ops


def _pair_pass(
    ops: List[EditOp], fails: FailsPredicate, counter: List[int]
) -> List[EditOp]:
    """Cancel add/remove pairs on the same edge with no op in between."""
    index = 0
    while index < len(ops):
        op = ops[index]
        if op.kind != "add" or op.u == op.v:
            index += 1
            continue
        edge = canonical_edge(op.u, op.v)
        partner = -1
        for later in range(index + 1, len(ops)):
            other = ops[later]
            if other.v is None:
                if other.u in edge:
                    break  # vertex op touching an endpoint: unsafe to cancel
                continue
            if canonical_edge(other.u, other.v) == edge:
                if other.kind == "remove":
                    partner = later
                break
        if partner >= 0:
            candidate = [
                op2
                for position, op2 in enumerate(ops)
                if position not in (index, partner)
            ]
            if _try(candidate, fails, counter):
                ops = candidate
                continue
        index += 1
    return ops


def _relabel_pass(
    ops: List[EditOp], fails: FailsPredicate, counter: List[int]
) -> List[EditOp]:
    """Rename vertices densely to 0..n-1 in first-appearance order."""
    script = EditScript(ops=ops)
    mapping = {vertex: index for index, vertex in enumerate(script.vertices())}
    if all(old == new for old, new in mapping.items()):
        return ops
    candidate = script.relabeled(mapping).ops
    if _try(candidate, fails, counter):
        return candidate
    return ops


def shrink_script(
    script: EditScript,
    fails: FailsPredicate,
    *,
    max_rounds: int = 10,
) -> ShrinkResult:
    """Minimize ``script`` while ``fails`` keeps returning True.

    Raises ``ValueError`` if the input script does not fail to begin with
    (shrinking a passing script would silently return garbage).
    """
    counter = [0]
    if not _try(list(script.ops), fails, counter):
        raise ValueError("cannot shrink: the input script does not fail")
    ops = list(script.ops)
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        before = list(ops)
        ops = _chunk_pass(ops, fails, counter)
        ops = _pair_pass(ops, fails, counter)
        ops = _relabel_pass(ops, fails, counter)
        if ops == before:
            break
    result = EditScript(ops=ops, name=script.name and f"{script.name}/shrunk")
    assert _try(list(result.ops), fails, counter), (
        "shrinker invariant broken: accepted script no longer fails"
    )
    return ShrinkResult(
        script=result,
        original_ops=len(script),
        evaluations=counter[0],
        rounds=rounds,
    )
