"""Serializable edit scripts: the common language of the fuzzing harness.

An :class:`EditScript` is a flat list of :class:`EditOp` records describing a
deterministic sequence of graph mutations.  Scripts are the unit everything
else in :mod:`repro.testing` operates on: workload generators emit them, the
oracle runner drives them through the maintainer, repro bundles embed them,
and the shrinker minimizes them.

Scripts are *total*: every op is applicable to every graph state.  An op
that is structurally invalid at apply time (duplicate insertion, self loop,
deletion of an absent edge, removal of an absent vertex) is not an error in
the script — it is an *adversarial* op whose expected outcome is a specific
library exception and an unchanged graph.  :func:`expected_outcome` encodes
that contract in one place so the generator, the runner and the shrinker
can never disagree about what a script means.  Total semantics is also what
makes delta-debugging sound: dropping any subset of ops always yields
another valid script.

Vertices are restricted to JSON-native scalars (int or str) so scripts
round-trip through JSON byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..graph.edge import Vertex, canonical_edge
from ..graph.undirected import Graph

#: Op kinds, in the order the runner documents them.
OP_KINDS = ("add", "remove", "add_vertex", "remove_vertex")

#: Outcome tags returned by :func:`expected_outcome`.
OUTCOME_OK = "ok"
OUTCOME_NOOP = "noop"  # structurally idempotent (add_vertex of existing)
OUTCOME_SELF_LOOP = "self_loop"
OUTCOME_DUPLICATE = "duplicate"
OUTCOME_MISSING_EDGE = "missing_edge"
OUTCOME_MISSING_VERTEX = "missing_vertex"


@dataclass(frozen=True)
class EditOp:
    """One graph mutation: ``kind`` plus one or two vertex operands."""

    kind: str
    u: Vertex
    v: Optional[Vertex] = None

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}; expected {OP_KINDS}")
        needs_v = self.kind in ("add", "remove")
        if needs_v and self.v is None:
            raise ValueError(f"op {self.kind!r} requires two vertices")
        if not needs_v and self.v is not None:
            raise ValueError(f"op {self.kind!r} takes a single vertex")
        for vertex in (self.u, self.v):
            if vertex is not None and not isinstance(vertex, (int, str)):
                raise ValueError(
                    "edit-script vertices must be JSON-native ints or strs, "
                    f"got {vertex!r}"
                )

    def to_json_obj(self) -> list:
        if self.v is None:
            return [self.kind, self.u]
        return [self.kind, self.u, self.v]

    @classmethod
    def from_json_obj(cls, obj: Sequence) -> "EditOp":
        if not isinstance(obj, (list, tuple)) or not 2 <= len(obj) <= 3:
            raise ValueError(f"malformed op record: {obj!r}")
        return cls(obj[0], obj[1], obj[2] if len(obj) == 3 else None)

    def __str__(self) -> str:
        if self.v is None:
            return f"{self.kind}({self.u!r})"
        return f"{self.kind}({self.u!r}, {self.v!r})"


def expected_outcome(graph: Graph, op: EditOp) -> str:
    """Classify ``op`` against the current ``graph`` state.

    Returns one of the ``OUTCOME_*`` tags.  The classification mirrors the
    precedence of the library's own error checks (self-loop before
    duplicate, matching :meth:`Graph.add_edge`), so the runner can predict
    exactly which exception an adversarial op must raise.
    """
    if op.kind == "add":
        if op.u == op.v:
            return OUTCOME_SELF_LOOP
        if graph.has_edge(op.u, op.v):
            return OUTCOME_DUPLICATE
        return OUTCOME_OK
    if op.kind == "remove":
        if not graph.has_edge(op.u, op.v):
            return OUTCOME_MISSING_EDGE
        return OUTCOME_OK
    if op.kind == "add_vertex":
        return OUTCOME_NOOP if graph.has_vertex(op.u) else OUTCOME_OK
    # remove_vertex
    if not graph.has_vertex(op.u):
        return OUTCOME_MISSING_VERTEX
    return OUTCOME_OK


def apply_op(graph: Graph, op: EditOp) -> str:
    """Apply ``op`` structurally to ``graph``; return its outcome tag.

    Adversarial ops leave the graph untouched.  This is the *shadow*
    semantics the oracle runner compares the maintainer against.
    """
    outcome = expected_outcome(graph, op)
    if outcome == OUTCOME_OK:
        if op.kind == "add":
            graph.add_edge(op.u, op.v)
        elif op.kind == "remove":
            graph.remove_edge(op.u, op.v)
        elif op.kind == "add_vertex":
            graph.add_vertex(op.u)
        else:
            graph.remove_vertex(op.u)
    elif outcome == OUTCOME_NOOP:
        pass
    return outcome


@dataclass
class EditScript:
    """An ordered sequence of :class:`EditOp` with JSON round-tripping."""

    ops: List[EditOp] = field(default_factory=list)
    name: str = ""

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[EditOp]:
        return iter(self.ops)

    def __getitem__(self, index: int) -> EditOp:
        return self.ops[index]

    # -------------------------------------------------------------- #
    # derived views
    # -------------------------------------------------------------- #

    def vertices(self) -> List[Vertex]:
        """Every vertex the script mentions, in first-appearance order."""
        seen: Dict[Vertex, None] = {}
        for op in self.ops:
            seen.setdefault(op.u)
            if op.v is not None:
                seen.setdefault(op.v)
        return list(seen)

    def final_graph(self) -> Graph:
        """The graph the script produces from empty, under shadow semantics."""
        graph = Graph()
        for op in self.ops:
            apply_op(graph, op)
        return graph

    def effective_ops(self) -> int:
        """Number of ops that actually mutate state when run from empty."""
        graph = Graph()
        return sum(1 for op in self.ops if apply_op(graph, op) == OUTCOME_OK)

    def relabeled(self, mapping: Dict[Vertex, Vertex]) -> "EditScript":
        """A copy with every vertex renamed through ``mapping``."""
        ops = [
            EditOp(
                op.kind,
                mapping.get(op.u, op.u),
                None if op.v is None else mapping.get(op.v, op.v),
            )
            for op in self.ops
        ]
        return EditScript(ops=ops, name=self.name)

    # -------------------------------------------------------------- #
    # serialization
    # -------------------------------------------------------------- #

    def to_json_obj(self) -> dict:
        obj: dict = {"ops": [op.to_json_obj() for op in self.ops]}
        if self.name:
            obj["name"] = self.name
        return obj

    @classmethod
    def from_json_obj(cls, obj: dict) -> "EditScript":
        if not isinstance(obj, dict) or "ops" not in obj:
            raise ValueError("malformed edit script: expected {'ops': [...]}")
        return cls(
            ops=[EditOp.from_json_obj(record) for record in obj["ops"]],
            name=obj.get("name", ""),
        )

    def dumps(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_json_obj(), indent=indent, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "EditScript":
        return cls.from_json_obj(json.loads(text))

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"EditScript({len(self.ops)} ops{label})"


@dataclass
class CoalescedScript:
    """The net structural effect of an :class:`EditScript` on a graph.

    Produced by :func:`coalesce`: the ops collapse to one batch of net
    edge removals and insertions (plus isolated-vertex adds/removals),
    exactly what :meth:`DynamicTriangleKCore.diff_apply
    <repro.core.dynamic.DynamicTriangleKCore.diff_apply>` consumes for
    ``strategy="batch"``.  ``remove_vertex`` ops are expanded into their
    incident edge removals; add-then-remove (or remove-then-re-add) of
    the same edge cancels out.  Because kappa is a pure function of the
    graph, applying the net batch yields bit-identical kappa to applying
    the ops one at a time.
    """

    added: List[Tuple[Vertex, Vertex]] = field(default_factory=list)
    removed: List[Tuple[Vertex, Vertex]] = field(default_factory=list)
    #: Vertices absent before that must exist after (isolated adds).
    added_vertices: List[Vertex] = field(default_factory=list)
    #: Vertices present before that must be gone after (edge removals
    #: above already cover their incident edges).
    removed_vertices: List[Vertex] = field(default_factory=list)
    #: Outcome tag -> count over the script's ops (total semantics).
    outcomes: Dict[str, int] = field(default_factory=dict)

    @property
    def applied(self) -> int:
        """Ops that mutate state (``ok``) or are idempotent (``noop``)."""
        return self.outcomes.get(OUTCOME_OK, 0) + self.outcomes.get(
            OUTCOME_NOOP, 0
        )

    @property
    def rejected(self) -> Dict[str, int]:
        """Adversarial-outcome counts (everything but ok/noop)."""
        return {
            tag: count
            for tag, count in self.outcomes.items()
            if tag not in (OUTCOME_OK, OUTCOME_NOOP)
        }


def coalesce(graph: Graph, script: EditScript) -> CoalescedScript:
    """Collapse ``script`` to its net effect on ``graph`` without copying it.

    The graph is *not* mutated: the simulation runs on a lazy adjacency
    overlay, touching only the vertices the script names — O(ops +
    touched degree), independent of the graph size.  Net lists come out
    in first-effective-touch order, so replay is deterministic.
    """
    # Overlay state: vertex presence deltas plus copied adjacency sets
    # for touched vertices; everything else reads through to the graph.
    vert_delta: Dict[Vertex, bool] = {}
    adj: Dict[Vertex, set] = {}

    def has_vertex(u: Vertex) -> bool:
        present = vert_delta.get(u)
        if present is not None:
            return present
        return graph.has_vertex(u)

    def neighbors(u: Vertex) -> set:
        over = adj.get(u)
        if over is not None:
            return over
        if graph.has_vertex(u) and vert_delta.get(u, True):
            return set(graph.neighbors(u))
        return set()

    def touch(u: Vertex) -> set:
        over = adj.get(u)
        if over is None:
            over = neighbors(u)
            adj[u] = over
        return over

    def has_edge(u: Vertex, v: Vertex) -> bool:
        if u in adj:
            return v in adj[u]
        if v in adj:
            return u in adj[v]
        return graph.has_edge(u, v)

    # Net bookkeeping, keyed by canonical edge, insertion-ordered.
    net_added: Dict[Tuple[Vertex, Vertex], Tuple[Vertex, Vertex]] = {}
    net_removed: Dict[Tuple[Vertex, Vertex], Tuple[Vertex, Vertex]] = {}
    outcomes: Dict[str, int] = {}

    def note_add(u: Vertex, v: Vertex) -> None:
        edge = canonical_edge(u, v)
        touch(u).add(v)
        touch(v).add(u)
        vert_delta[u] = True
        vert_delta[v] = True
        if edge in net_removed:
            del net_removed[edge]  # originally present: cancel out
        else:
            net_added[edge] = (u, v)

    def note_remove(u: Vertex, v: Vertex) -> None:
        edge = canonical_edge(u, v)
        touch(u).discard(v)
        touch(v).discard(u)
        if edge in net_added:
            del net_added[edge]  # added by this script: cancel out
        else:
            net_removed[edge] = (u, v)

    for op in script:
        # Classify against the overlay with the same precedence as
        # expected_outcome (self loop before duplicate, like Graph).
        if op.kind == "add":
            if op.u == op.v:
                outcome = OUTCOME_SELF_LOOP
            elif has_edge(op.u, op.v):
                outcome = OUTCOME_DUPLICATE
            else:
                outcome = OUTCOME_OK
                note_add(op.u, op.v)
        elif op.kind == "remove":
            if not has_edge(op.u, op.v):
                outcome = OUTCOME_MISSING_EDGE
            else:
                outcome = OUTCOME_OK
                note_remove(op.u, op.v)
        elif op.kind == "add_vertex":
            if has_vertex(op.u):
                outcome = OUTCOME_NOOP
            else:
                outcome = OUTCOME_OK
                vert_delta[op.u] = True
                adj.setdefault(op.u, set())
        else:  # remove_vertex
            if not has_vertex(op.u):
                outcome = OUTCOME_MISSING_VERTEX
            else:
                outcome = OUTCOME_OK
                for neighbor in sorted(neighbors(op.u), key=repr):
                    note_remove(op.u, neighbor)
                vert_delta[op.u] = False
                adj[op.u] = set()
        outcomes[outcome] = outcomes.get(outcome, 0) + 1

    added_vertices = [
        vertex
        for vertex, present in vert_delta.items()
        if present and not graph.has_vertex(vertex)
    ]
    removed_vertices = [
        vertex
        for vertex, present in vert_delta.items()
        if not present and graph.has_vertex(vertex)
    ]
    return CoalescedScript(
        added=list(net_added.values()),
        removed=list(net_removed.values()),
        added_vertices=added_vertices,
        removed_vertices=removed_vertices,
        outcomes=outcomes,
    )


def apply_coalesced(maintainer, co: CoalescedScript, *, strategy: str = "batch"):
    """Apply a :class:`CoalescedScript` through a dynamic maintainer.

    Isolated-vertex adds go first (edge insertions auto-create their own
    endpoints), then the net edge batch through
    ``maintainer.diff_apply(strategy=...)``, then now-isolated vertex
    removals.  Returns the batch's
    :class:`~repro.core.dynamic.KappaDelta`.
    """
    for vertex in co.added_vertices:
        maintainer.add_vertex(vertex)
    delta = maintainer.diff_apply(
        added=co.added, removed=co.removed, strategy=strategy
    )
    for vertex in co.removed_vertices:
        maintainer.remove_vertex(vertex)
    return delta


def kappa_to_json(kappa: Dict[Tuple[Vertex, Vertex], int]) -> List[list]:
    """``{edge: kappa}`` as a sorted, JSON-native ``[[u, v, k], ...]`` list."""
    return sorted(
        ([u, v, k] for (u, v), k in kappa.items()),
        key=lambda row: (repr(row[0]), repr(row[1])),
    )


def kappa_from_json(rows: Sequence[Sequence]) -> Dict[Tuple[Vertex, Vertex], int]:
    """Inverse of :func:`kappa_to_json` (edges re-canonicalized)."""
    return {canonical_edge(u, v): k for u, v, k in rows}
