"""Repro bundles: self-contained JSON records of a fuzzing failure.

A bundle captures everything needed to re-run a divergence byte-for-byte:
the generator coordinates (profile, seed, requested ops), the exact edit
script, the runner configuration (checkpoint cadence, oracle selection),
the divergence that was observed, and — for corpus regression bundles —
the expected final kappa map recorded from the reference oracle at the
time the bundle was minted.

Bundles serve two roles:

* **failure hand-off** — ``repro fuzz --out bundle.json`` writes one on
  divergence; ``repro fuzz --replay bundle.json`` re-runs it;
* **regression corpus** — shrunk bundles under ``tests/corpus/`` are
  replayed against the full oracle matrix by ``tests/test_corpus_replay.py``
  on every CI run, so every bug ever found stays found.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .editscript import EditScript, kappa_from_json, kappa_to_json
from .oracles import DEFAULT_ORACLES, SutFactory, default_sut
from .runner import Divergence, RunReport, run_script

#: Bundle schema identifier; bump on incompatible changes.
FORMAT = "triangle-kcore-fuzz/1"


@dataclass
class ReproBundle:
    """One serializable fuzzing scenario (failing or regression)."""

    script: EditScript
    profile: str = ""
    seed: Optional[int] = None
    ops_requested: Optional[int] = None
    checkpoint_every: int = 100
    oracles: Tuple[str, ...] = DEFAULT_ORACLES
    divergence: Optional[Divergence] = None
    expected_kappa: Optional[List[list]] = None  #: [[u, v, kappa], ...]
    description: str = ""
    shrunk: bool = False
    #: Runner apply mode the divergence was found under ("per_op" or
    #: "batch"); batch-mode bundles must replay in batch mode or a
    #: batch-only bug silently replays clean.
    apply_mode: str = "per_op"
    batch_ops: int = 50
    batch_strategy: str = "batch"
    format_version: str = FORMAT

    # -------------------------------------------------------------- #
    # serialization
    # -------------------------------------------------------------- #

    def to_json_obj(self) -> dict:
        obj: dict = {
            "format": self.format_version,
            "profile": self.profile,
            "seed": self.seed,
            "ops_requested": self.ops_requested,
            "checkpoint_every": self.checkpoint_every,
            "oracles": list(self.oracles),
            "shrunk": self.shrunk,
            "description": self.description,
            "script": self.script.to_json_obj(),
        }
        if self.apply_mode != "per_op":
            # Additive, omitted for per-op bundles: old readers of the
            # /1 format never see the new keys.
            obj["apply_mode"] = self.apply_mode
            obj["batch_ops"] = self.batch_ops
            obj["batch_strategy"] = self.batch_strategy
        if self.divergence is not None:
            obj["divergence"] = self.divergence.to_json_obj()
        if self.expected_kappa is not None:
            obj["expected_kappa"] = self.expected_kappa
        return obj

    @classmethod
    def from_json_obj(cls, obj: dict) -> "ReproBundle":
        version = obj.get("format", "")
        if version != FORMAT:
            raise ValueError(
                f"unsupported repro bundle format {version!r}; "
                f"this build reads {FORMAT!r}"
            )
        return cls(
            script=EditScript.from_json_obj(obj["script"]),
            profile=obj.get("profile", ""),
            seed=obj.get("seed"),
            ops_requested=obj.get("ops_requested"),
            checkpoint_every=obj.get("checkpoint_every", 100),
            oracles=tuple(obj.get("oracles", DEFAULT_ORACLES)),
            divergence=(
                Divergence.from_json_obj(obj["divergence"])
                if "divergence" in obj
                else None
            ),
            expected_kappa=obj.get("expected_kappa"),
            description=obj.get("description", ""),
            shrunk=obj.get("shrunk", False),
            apply_mode=obj.get("apply_mode", "per_op"),
            batch_ops=obj.get("batch_ops", 50),
            batch_strategy=obj.get("batch_strategy", "batch"),
            format_version=version,
        )

    def dumps(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_json_obj(), indent=indent, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "ReproBundle":
        return cls.from_json_obj(json.loads(text))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())
            handle.write("\n")

    @classmethod
    def load(cls, path) -> "ReproBundle":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.loads(handle.read())

    def __repr__(self) -> str:
        status = "diverging" if self.divergence is not None else "regression"
        return (
            f"ReproBundle({status}, {len(self.script)} ops, "
            f"profile={self.profile!r}, seed={self.seed})"
        )


def replay(
    bundle: ReproBundle,
    *,
    sut_factory: SutFactory = default_sut,
    oracles: Optional[Tuple[str, ...]] = None,
    checkpoint_every: Optional[int] = None,
) -> RunReport:
    """Re-run a bundle's script with its recorded runner configuration.

    When the bundle carries ``expected_kappa`` (regression bundles do), a
    clean run whose final kappa map differs from the recorded one is turned
    into a ``"state"`` divergence — the replay is byte-for-byte, not merely
    crash-free.
    """
    report = run_script(
        bundle.script,
        checkpoint_every=checkpoint_every or bundle.checkpoint_every,
        oracles=oracles if oracles is not None else bundle.oracles,
        sut_factory=sut_factory,
        apply_mode=bundle.apply_mode,
        batch_ops=bundle.batch_ops,
        batch_strategy=bundle.batch_strategy,
    )
    if (
        report.ok
        and bundle.expected_kappa is not None
        and report.final_kappa is not None
    ):
        expected = kappa_from_json(bundle.expected_kappa)
        if expected != report.final_kappa:
            from .runner import _kappa_diff

            report.divergence = Divergence(
                step=max(len(bundle.script) - 1, 0),
                kind="state",
                message=(
                    "final kappa map differs from the bundle's recorded "
                    "expected_kappa"
                ),
                diff=_kappa_diff(expected, report.final_kappa),
            )
    return report


def regression_bundle(
    script: EditScript,
    *,
    description: str,
    profile: str = "",
    seed: Optional[int] = None,
    checkpoint_every: int = 25,
    oracles: Tuple[str, ...] = DEFAULT_ORACLES,
    shrunk: bool = True,
) -> ReproBundle:
    """Mint a corpus regression bundle, recording the reference final kappa.

    Raises ``ValueError`` if the script does not replay cleanly — a corpus
    entry must be green at mint time (it pins behavior, it does not track an
    open bug).
    """
    report = run_script(
        script, checkpoint_every=checkpoint_every, oracles=oracles
    )
    if not report.ok:
        raise ValueError(
            f"cannot mint regression bundle: script diverges "
            f"({report.divergence.kind}: {report.divergence.message})"
        )
    return ReproBundle(
        script=script,
        profile=profile,
        seed=seed,
        checkpoint_every=checkpoint_every,
        oracles=oracles,
        expected_kappa=kappa_to_json(report.final_kappa or {}),
        description=description,
        shrunk=shrunk,
    )
