"""Top-level fuzzing orchestration shared by the CLI and the test suite.

:func:`fuzz` generates one workload per requested profile, runs each
through the oracle runner, and — on divergence — optionally shrinks the
failing script and packages everything as a :class:`ReproBundle`.  The
pytest entry points (``tests/test_differential_fuzz.py``) and the ``repro
fuzz`` CLI subcommand are both thin wrappers over this function, so a CI
failure and a local ``pytest`` failure point at the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .bundle import ReproBundle
from .editscript import EditScript
from .oracles import DEFAULT_ORACLES, SutFactory, default_sut
from .runner import RunReport, run_script
from .shrink import ShrinkResult, shrink_script
from .workloads import PROFILES, generate


@dataclass
class ProfileOutcome:
    """Result of fuzzing one (profile, seed) cell."""

    profile: str
    seed: int
    report: RunReport
    bundle: Optional[ReproBundle] = None   #: present when the cell diverged
    shrink: Optional[ShrinkResult] = None  #: present when shrinking ran

    @property
    def ok(self) -> bool:
        return self.report.ok


@dataclass
class FuzzResult:
    """Aggregate over every fuzzed cell."""

    outcomes: List[ProfileOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def first_failure(self) -> Optional[ProfileOutcome]:
        for outcome in self.outcomes:
            if not outcome.ok:
                return outcome
        return None

    def total_steps(self) -> int:
        return sum(outcome.report.steps for outcome in self.outcomes)


def _script_fails(
    checkpoint_every: int,
    oracles: Tuple[str, ...],
    oracle_options: Optional[Dict[str, object]],
    sut_factory: SutFactory,
    apply_mode: str,
    batch_ops: int,
    batch_strategy: str,
):
    """Build the shrinker predicate matching the runner configuration.

    The shrinker replays candidates with a *tight* cadence so a divergence
    originally caught at a distant checkpoint is still caught after the
    ops before that checkpoint are deleted: per-op mode tightens
    ``checkpoint_every``, batch mode tightens the chunk size (checkpoints
    sit at chunk boundaries there).
    """

    def fails(script: EditScript) -> bool:
        return not run_script(
            script,
            checkpoint_every=min(checkpoint_every, 5),
            oracles=oracles,
            oracle_options=oracle_options,
            sut_factory=sut_factory,
            apply_mode=apply_mode,
            batch_ops=min(batch_ops, 5),
            batch_strategy=batch_strategy,
        ).ok

    return fails


def fuzz(
    *,
    seed: int = 0,
    ops: int = 500,
    profiles: Optional[Sequence[str]] = None,
    checkpoint_every: int = 100,
    oracles: Tuple[str, ...] = DEFAULT_ORACLES,
    oracle_options: Optional[Dict[str, object]] = None,
    sut_factory: SutFactory = default_sut,
    shrink: bool = False,
    stop_on_failure: bool = True,
    apply_mode: str = "per_op",
    batch_ops: int = 50,
    batch_strategy: str = "batch",
) -> FuzzResult:
    """Fuzz the dynamic maintainer across workload profiles.

    Parameters mirror the ``repro fuzz`` CLI flags; ``sut_factory`` is the
    extra hook the mutation smoke-check uses to inject a deliberately buggy
    maintainer, and ``oracle_options`` configures the oracle matrix (see
    :func:`~repro.testing.runner.run_script`).  ``apply_mode="batch"``
    fuzzes the whole-batch write path instead: chunks of ``batch_ops``
    ops are coalesced and applied via ``diff_apply(strategy=batch_strategy)``
    (see :func:`~repro.testing.runner.run_script`).  Returns a
    :class:`FuzzResult`; on divergence each failing outcome carries a
    ready-to-save :class:`ReproBundle` (shrunk when ``shrink=True``).
    """
    selected = list(profiles) if profiles is not None else sorted(PROFILES)
    result = FuzzResult()
    for profile in selected:
        script = generate(profile, seed, ops)
        report = run_script(
            script,
            checkpoint_every=checkpoint_every,
            oracles=oracles,
            oracle_options=oracle_options,
            sut_factory=sut_factory,
            apply_mode=apply_mode,
            batch_ops=batch_ops,
            batch_strategy=batch_strategy,
        )
        outcome = ProfileOutcome(profile=profile, seed=seed, report=report)
        if not report.ok:
            shrink_result: Optional[ShrinkResult] = None
            final_script = script
            if shrink:
                shrink_result = shrink_script(
                    script,
                    _script_fails(
                        checkpoint_every, oracles, oracle_options,
                        sut_factory, apply_mode, batch_ops, batch_strategy,
                    ),
                )
                final_script = shrink_result.script
                # Re-run the shrunk script to report *its* divergence (the
                # step index and diff of the original no longer apply).
                report_for_bundle = run_script(
                    final_script,
                    checkpoint_every=min(checkpoint_every, 5),
                    oracles=oracles,
                    oracle_options=oracle_options,
                    sut_factory=sut_factory,
                    apply_mode=apply_mode,
                    batch_ops=min(batch_ops, 5),
                    batch_strategy=batch_strategy,
                )
                divergence = report_for_bundle.divergence
            else:
                divergence = report.divergence
            outcome.shrink = shrink_result
            outcome.bundle = ReproBundle(
                script=final_script,
                profile=profile,
                seed=seed,
                ops_requested=ops,
                checkpoint_every=checkpoint_every,
                oracles=oracles,
                apply_mode=apply_mode,
                # A shrunk script was minimized under the tightened chunk
                # size; record that so the bundle replays identically.
                batch_ops=min(batch_ops, 5) if shrink else batch_ops,
                batch_strategy=batch_strategy,
                divergence=divergence,
                description=(
                    f"fuzz divergence: profile={profile} seed={seed} "
                    f"ops={ops}"
                ),
                shrunk=shrink,
            )
        result.outcomes.append(outcome)
        if not report.ok and stop_on_failure:
            break
    return result
