"""The oracle matrix: independent ways to compute kappa, plus fault injection.

The system under test is :class:`~repro.core.dynamic.DynamicTriangleKCore`
(driven continuously, op by op).  At checkpoints the runner cross-checks its
kappa map against every *checkpoint oracle* registered here:

``recompute``
    :class:`~repro.baselines.recompute.RecomputeBaseline` fed the net edge
    diff since the previous checkpoint — the paper's Table III baseline,
    maintaining its *own* graph so it also witnesses structural drift.
``csr``
    The flat-array kernel backend (:mod:`repro.fast`) run on the shadow
    graph — an independent implementation of Algorithm 1.
``networkx``
    networkx's ``k_truss`` (written independently of this library),
    compared through the kappa = truss - 2 correspondence.  Skipped
    automatically when networkx is not importable.
``csr-vec``
    The CSR kernels with the **vector** (level-synchronous) peel
    executor — the same enumeration as ``csr`` but an entirely different
    Algorithm 1 walk, so it catches executor-specific bugs (batched
    decrement accounting, bound clamping).  Opt-in.
``parallel``
    The sharded enumeration backend (:mod:`repro.fast.parallel`) run on
    the shadow graph.  Opt-in (not in :data:`DEFAULT_ORACLES` — it is
    bit-identical to ``csr`` by construction, so it only adds signal
    when the shard split/merge path itself is under suspicion).  By
    default it runs *in process* (same shard/merge code, no pool spawn)
    so fuzz loops and the shrinker stay fast; pass
    ``parallel_inprocess=False`` to exercise real worker processes, and
    ``parallel_executor="vector"`` to compose the vector peel on top of
    the sharded enumeration (the full ``parallel-vec`` backend).
``per_op``
    A second :class:`DynamicTriangleKCore` fed the net edge diff *one op
    at a time* with incremental repairs.  Opt-in, aimed at the batch
    maintainer mode: when the SUT applies whole edit batches with
    ``strategy="batch"``, this oracle pits the single affected-region
    pass against the per-op Algorithm 2 cascades at every checkpoint
    (the recompute oracle completes the batch/per-op/recompute
    differential cell).

Fault injection lives here too: :class:`OffByOneMaintainer` wraps the real
maintainer and misreports kappa by +1 on a chosen level.  The mutation
smoke-check in ``tests/test_differential_fuzz.py`` proves the harness
detects and shrinks that bug — i.e. that a green fuzz run means something.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..baselines.recompute import RecomputeBaseline
from ..core.dynamic import DynamicTriangleKCore
from ..engine import Engine
from ..graph.edge import Edge, Vertex
from ..graph.undirected import Graph

#: Checkpoint oracle names, in the order they are evaluated.
ORACLE_NAMES = (
    "recompute",
    "csr",
    "csr-vec",
    "networkx",
    "parallel",
    "external",
    "per_op",
)

#: Default oracle selection ("networkx" degrades to a no-op if unavailable;
#: "parallel" is opt-in — see the module docstring).
DEFAULT_ORACLES = ("recompute", "csr", "networkx")


def networkx_available() -> bool:
    """True when the optional networkx oracle can run."""
    try:
        import networkx  # noqa: F401
    except ImportError:
        return False
    return True


class CheckpointOracles:
    """Evaluates the selected checkpoint oracles against a shadow graph.

    The ``recompute`` oracle is stateful (it maintains its own graph and
    applies net diffs); ``csr`` and ``networkx`` are pure functions of the
    shadow graph.  :meth:`evaluate` returns ``{oracle_name: kappa_map}`` for
    every oracle that ran.
    """

    def __init__(
        self,
        oracles: Tuple[str, ...] = DEFAULT_ORACLES,
        *,
        parallel_workers: int = 2,
        parallel_inprocess: bool = True,
        parallel_executor: str = "scalar",
        external_partitions: int = 2,
    ) -> None:
        for name in oracles:
            if name not in ORACLE_NAMES:
                raise ValueError(
                    f"unknown oracle {name!r}; expected subset of {ORACLE_NAMES}"
                )
        self._names = tuple(oracles)
        self._baseline: Optional[RecomputeBaseline] = None
        self._baseline_edges: set = set()
        self._per_op: Optional[DynamicTriangleKCore] = None
        self._nx_usable = "networkx" in self._names and networkx_available()
        self._parallel_workers = parallel_workers
        self._parallel_inprocess = parallel_inprocess
        self._parallel_executor = parallel_executor
        self._external_partitions = external_partitions
        # Private, cache-disabled engine: each oracle must recompute from
        # scratch every checkpoint — serving one oracle's cached artifact
        # to another would collapse their independence.
        self._engine = Engine(max_cached_graphs=0)

    @property
    def names(self) -> Tuple[str, ...]:
        return self._names

    def active_names(self) -> List[str]:
        """Oracles that will actually produce answers on this host."""
        active = []
        for name in self._names:
            if name == "networkx" and not self._nx_usable:
                continue
            active.append(name)
        return active

    def evaluate(self, shadow: Graph) -> Dict[str, Dict[Edge, int]]:
        answers: Dict[str, Dict[Edge, int]] = {}
        for name in self._names:
            if name == "recompute":
                answers[name] = self._recompute_kappa(shadow)
            elif name == "csr":
                answers[name] = self._engine.decompose(
                    shadow, backend="csr", use_cache=False
                ).kappa
            elif name == "csr-vec":
                answers[name] = self._engine.decompose(
                    shadow, backend="csr-vec", use_cache=False
                ).kappa
            elif name == "networkx" and self._nx_usable:
                from ..baselines.nx_truss import networkx_kappa

                answers[name] = networkx_kappa(shadow)
            elif name == "parallel":
                from ..fast import parallel_decomposition

                answers[name] = parallel_decomposition(
                    shadow,
                    workers=self._parallel_workers,
                    inprocess=self._parallel_inprocess,
                    executor=self._parallel_executor,
                ).kappa
            elif name == "external":
                from ..fast.external import external_decomposition

                answers[name] = external_decomposition(
                    shadow, partitions=self._external_partitions
                ).kappa
            elif name == "per_op":
                answers[name] = self._per_op_kappa(shadow)
        return answers

    def _recompute_kappa(self, shadow: Graph) -> Dict[Edge, int]:
        """Feed the RecomputeBaseline the net edge diff since last call."""
        current = set(shadow.edges())
        if self._baseline is None:
            self._baseline = RecomputeBaseline(Graph(), engine=self._engine)
        added = current - self._baseline_edges
        removed = self._baseline_edges - current
        run = self._baseline.apply(added=sorted(added, key=repr),
                                   removed=sorted(removed, key=repr))
        self._baseline_edges = current
        return run.result.kappa

    def _per_op_kappa(self, shadow: Graph) -> Dict[Edge, int]:
        """Catch the stateful per-op maintainer up to the shadow graph.

        Kappa is a pure function of the graph, so feeding the *net* diff
        one op at a time is equivalent to replaying the original op
        sequence — and exercises the per-op Algorithm 2 cascades the
        batch strategy must stay bit-identical to.
        """
        if self._per_op is None:
            self._per_op = DynamicTriangleKCore(Graph(), copy=False)
        maintainer = self._per_op
        previous = set(maintainer.graph.edges())
        current = set(shadow.edges())
        for u, v in sorted(previous - current, key=repr):
            maintainer.remove_edge(u, v)
        for u, v in sorted(current - previous, key=repr):
            maintainer.add_edge(u, v)
        return dict(maintainer.kappa)


# ---------------------------------------------------------------------- #
# system-under-test factories
# ---------------------------------------------------------------------- #

#: A factory building the maintainer the runner drives, from an initial graph.
SutFactory = Callable[[Graph], DynamicTriangleKCore]


def default_sut(graph: Graph) -> DynamicTriangleKCore:
    """The real maintainer, owning its graph (no copy: graph is private)."""
    return DynamicTriangleKCore(graph, copy=False)


def stored_sut(graph: Graph) -> DynamicTriangleKCore:
    """The maintainer with the triangle-store index enabled."""
    return DynamicTriangleKCore(graph, copy=False, store_triangles=True)


class OffByOneMaintainer(DynamicTriangleKCore):
    """A deliberately buggy maintainer: kappa off by one on one level.

    Every edge whose true kappa equals ``level`` is reported as
    ``level + 1``.  Used by the mutation smoke-check to prove the harness
    detects (and the shrinker minimizes) a real, subtle discrepancy — the
    exact class of bug Rule 0 violations produce.
    """

    def __init__(self, graph: Graph, *, level: int = 1, **kwargs) -> None:
        self.perturb_level = level
        super().__init__(graph, **kwargs)

    @property
    def kappa(self) -> Dict[Edge, int]:
        true_kappa = super().kappa
        level = self.perturb_level
        return {
            edge: value + 1 if value == level else value
            for edge, value in true_kappa.items()
        }

    def kappa_of(self, u: Vertex, v: Vertex) -> int:
        from ..graph.edge import canonical_edge

        return self.kappa[canonical_edge(u, v)]


def perturbed_sut_factory(level: int) -> SutFactory:
    """Factory for :class:`OffByOneMaintainer` at a given level."""

    def factory(graph: Graph) -> DynamicTriangleKCore:
        return OffByOneMaintainer(graph, level=level, copy=False)

    return factory


class BatchBoundaryBugMaintainer(DynamicTriangleKCore):
    """A deliberately buggy batch maintainer: drops one affected-region edge.

    Overrides the :meth:`_trim_batch_region` seam to silently discard one
    boundary edge (the repr-max non-inserted member) from the affected
    region before the localized settle — the canonical batch-maintenance
    bug class: an under-approximated region leaves a stale kappa behind
    exactly when that edge needed a promote/demote cascade.  Inserted
    edges are never dropped (they have no kappa yet, so dropping one
    would crash rather than silently corrupt).

    The batch mutation smoke-check proves the fuzzer's batch mode catches
    and shrinks this.
    """

    def _trim_batch_region(self, region, inserted):
        droppable = sorted(region - inserted, key=repr)
        if droppable:
            region = set(region)
            region.discard(droppable[-1])
        return region


def batch_boundary_bug_sut(graph: Graph) -> DynamicTriangleKCore:
    """Factory for :class:`BatchBoundaryBugMaintainer`."""
    return BatchBoundaryBugMaintainer(graph, copy=False)
