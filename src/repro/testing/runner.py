"""The oracle runner: drive an edit script, cross-check every way we know.

One :func:`run_script` call plays an :class:`~repro.testing.editscript.EditScript`
against the dynamic maintainer from an empty graph while checking, at three
granularities:

**Per op — error contract.**  Adversarial ops (self loop, duplicate add,
missing-edge remove, missing-vertex remove) must raise exactly the library
exception :func:`~repro.testing.editscript.expected_outcome` predicts, and
must leave the kappa map untouched.  Valid ops must not raise.

**Per op — Rule 0 invariants.**  For a unit insertion: no edge is demoted,
every promoted pre-existing edge rises by exactly one, and no promoted edge
ends above the new edge's kappa.  For a unit deletion: no edge is promoted,
every demoted edge falls by exactly one, and no demoted edge started above
the deleted edge's old kappa (level locality).  After every op the kappa
map's key set must equal the shadow graph's edge set exactly.

**Per checkpoint — the oracle matrix.**  Every ``checkpoint_every`` ops
(and always at the end) the maintainer's kappa map is compared against each
oracle in :class:`~repro.testing.oracles.CheckpointOracles`, and the
maintainer's graph is compared structurally against the shadow graph.

The first failed check produces a :class:`Divergence` and stops the run;
:class:`RunReport` carries it (or ``None`` for a clean run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)
from ..graph.edge import Edge, canonical_edge
from ..graph.undirected import Graph
from .editscript import (
    OUTCOME_DUPLICATE,
    OUTCOME_MISSING_EDGE,
    OUTCOME_MISSING_VERTEX,
    OUTCOME_OK,
    OUTCOME_SELF_LOOP,
    EditOp,
    EditScript,
    apply_coalesced,
    apply_op,
    coalesce,
    expected_outcome,
)
from .oracles import DEFAULT_ORACLES, CheckpointOracles, SutFactory, default_sut

#: Exception each adversarial outcome must raise.
_EXPECTED_ERRORS = {
    OUTCOME_SELF_LOOP: SelfLoopError,
    OUTCOME_DUPLICATE: EdgeExistsError,
    OUTCOME_MISSING_EDGE: EdgeNotFoundError,
    OUTCOME_MISSING_VERTEX: VertexNotFoundError,
}

#: Cap on per-edge rows embedded in a divergence (bundles stay readable).
MAX_DIFF_ROWS = 25


@dataclass
class Divergence:
    """One detected disagreement, with enough context to reproduce it."""

    step: int                      #: 0-based index of the op that tripped it
    kind: str                      #: "error_contract" | "invariant" | "oracle" | "state"
    message: str
    op: Optional[EditOp] = None    #: the op being applied (None for final checkpoint)
    oracle: Optional[str] = None   #: oracle name for kind == "oracle"
    diff: List[list] = field(default_factory=list)  #: [[u, v, expected, actual], ...]

    def to_json_obj(self) -> dict:
        obj: dict = {
            "step": self.step,
            "kind": self.kind,
            "message": self.message,
        }
        if self.op is not None:
            obj["op"] = self.op.to_json_obj()
        if self.oracle is not None:
            obj["oracle"] = self.oracle
        if self.diff:
            obj["diff"] = self.diff
        return obj

    @classmethod
    def from_json_obj(cls, obj: dict) -> "Divergence":
        return cls(
            step=obj["step"],
            kind=obj["kind"],
            message=obj["message"],
            op=EditOp.from_json_obj(obj["op"]) if "op" in obj else None,
            oracle=obj.get("oracle"),
            diff=[list(row) for row in obj.get("diff", [])],
        )


@dataclass
class RunReport:
    """Outcome of one :func:`run_script` call."""

    steps: int                     #: ops actually executed before stopping
    checkpoints: int               #: oracle checkpoints evaluated
    oracles: List[str]             #: oracle names that actually ran
    divergence: Optional[Divergence] = None
    final_kappa: Optional[Dict[Edge, int]] = None  #: SUT kappa at exit

    @property
    def ok(self) -> bool:
        return self.divergence is None


def _kappa_diff(
    expected: Dict[Edge, int], actual: Dict[Edge, int]
) -> List[list]:
    """Readable per-edge diff rows, capped at :data:`MAX_DIFF_ROWS`."""
    rows: List[list] = []
    for edge in sorted(set(expected) | set(actual), key=repr):
        want = expected.get(edge)
        got = actual.get(edge)
        if want != got:
            rows.append([edge[0], edge[1], want, got])
            if len(rows) >= MAX_DIFF_ROWS:
                break
    return rows


def _check_unit_add(
    op: EditOp,
    before: Dict[Edge, int],
    after: Dict[Edge, int],
) -> Optional[str]:
    """Rule 0 checks for one successful edge insertion; None when clean."""
    e0 = canonical_edge(op.u, op.v)
    if e0 not in after or e0 in before:
        return f"inserted edge {e0!r} not tracked correctly in kappa map"
    k_e0 = after[e0]
    for edge, old in before.items():
        new = after.get(edge)
        if new is None:
            return f"insertion of {e0!r} dropped edge {edge!r} from the map"
        if new < old:
            return f"insertion demoted {edge!r}: {old} -> {new}"
        if new > old:
            if new != old + 1:
                return (
                    f"insertion moved {edge!r} by more than one level: "
                    f"{old} -> {new} (Rule 0 violation)"
                )
            if new > k_e0:
                return (
                    f"promoted edge {edge!r} ended at {new}, above the new "
                    f"edge's kappa {k_e0} (level locality violation)"
                )
    return None


def _check_unit_remove(
    op: EditOp,
    before: Dict[Edge, int],
    after: Dict[Edge, int],
) -> Optional[str]:
    """Rule 0 checks for one successful edge deletion; None when clean."""
    e0 = canonical_edge(op.u, op.v)
    if e0 in after or e0 not in before:
        return f"deleted edge {e0!r} not dropped from kappa map"
    k_e0 = before[e0]
    for edge, old in before.items():
        if edge == e0:
            continue
        new = after.get(edge)
        if new is None:
            return f"deletion of {e0!r} dropped unrelated edge {edge!r}"
        if new > old:
            return f"deletion promoted {edge!r}: {old} -> {new}"
        if new < old:
            if new != old - 1:
                return (
                    f"deletion moved {edge!r} by more than one level: "
                    f"{old} -> {new} (Rule 0 violation)"
                )
            if old > k_e0:
                return (
                    f"demoted edge {edge!r} started at {old}, above the "
                    f"deleted edge's kappa {k_e0} (level locality violation)"
                )
    return None


def run_script(
    script: EditScript,
    *,
    checkpoint_every: int = 100,
    oracles: Tuple[str, ...] = DEFAULT_ORACLES,
    oracle_options: Optional[Dict[str, object]] = None,
    sut_factory: SutFactory = default_sut,
    check_invariants: bool = True,
    apply_mode: str = "per_op",
    batch_ops: int = 50,
    batch_strategy: str = "batch",
) -> RunReport:
    """Play ``script`` from an empty graph, cross-checking as documented.

    ``oracle_options`` are keyword arguments forwarded to
    :class:`CheckpointOracles` (e.g. ``parallel_workers`` /
    ``parallel_inprocess`` for the opt-in ``"parallel"`` oracle).

    ``apply_mode="batch"`` drives the maintainer in whole-batch mode
    instead: the script is cut into chunks of ``batch_ops`` ops, each
    chunk is :func:`~repro.testing.editscript.coalesce`-d against the
    shadow graph and applied through ``diff_apply(strategy=batch_strategy)``.
    Intermediate per-op states never exist in this mode, so the per-op
    error contract and Rule 0 unit invariants are replaced by their batch
    analogues: the coalescer's outcome classification must match per-op
    ``expected_outcome`` tallies, the net apply must not raise, and the
    kappa key set must track the shadow edge set.  Checkpoints (structural
    + full oracle matrix) run at every chunk boundary — the densest
    granularity at which the batch SUT has a well-defined state — so
    ``checkpoint_every`` is ignored.

    Returns a :class:`RunReport`; ``report.ok`` is False exactly when a
    divergence was found (the run stops at the first one).
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    if apply_mode not in ("per_op", "batch"):
        raise ValueError(
            f"unknown apply_mode {apply_mode!r}; expected 'per_op' or 'batch'"
        )
    if batch_ops < 1:
        raise ValueError("batch_ops must be >= 1")
    matrix = CheckpointOracles(oracles, **(oracle_options or {}))
    shadow = Graph()
    sut = sut_factory(Graph())
    checkpoints = 0

    def checkpoint(step: int, op: Optional[EditOp]) -> Optional[Divergence]:
        nonlocal checkpoints
        checkpoints += 1
        if sut.graph != shadow:
            return Divergence(
                step=step,
                kind="state",
                op=op,
                message=(
                    "maintainer graph diverged structurally from the shadow "
                    f"graph ({sut.graph!r} vs {shadow!r})"
                ),
            )
        actual = dict(sut.kappa)
        for name, expected in matrix.evaluate(shadow).items():
            if expected != actual:
                return Divergence(
                    step=step,
                    kind="oracle",
                    oracle=name,
                    op=op,
                    message=(
                        f"kappa map disagrees with the {name!r} oracle on "
                        f"{len(_kappa_diff(expected, actual))}+ edges"
                    ),
                    diff=_kappa_diff(expected, actual),
                )
        return None

    if apply_mode == "batch":
        steps = 0
        for start in range(0, len(script), batch_ops):
            chunk = list(script)[start:start + batch_ops]
            last = start + len(chunk) - 1
            co = coalesce(shadow, EditScript(ops=chunk))
            expected_counts: Dict[str, int] = {}
            for op in chunk:
                tag = apply_op(shadow, op)
                expected_counts[tag] = expected_counts.get(tag, 0) + 1
            if check_invariants and co.outcomes != expected_counts:
                return RunReport(
                    steps=steps,
                    checkpoints=checkpoints,
                    oracles=matrix.active_names(),
                    divergence=Divergence(
                        step=last,
                        kind="error_contract",
                        message=(
                            "coalesced outcome counts disagree with per-op "
                            f"classification: {co.outcomes!r} vs "
                            f"{expected_counts!r}"
                        ),
                    ),
                )
            try:
                apply_coalesced(sut, co, strategy=batch_strategy)
            except Exception as error:  # surfaced, not masked: batch net
                # diffs are pre-validated, so any raise is a divergence.
                return RunReport(
                    steps=steps,
                    checkpoints=checkpoints,
                    oracles=matrix.active_names(),
                    divergence=Divergence(
                        step=last,
                        kind="error_contract",
                        message=(
                            f"batch apply of {len(co.added)} adds / "
                            f"{len(co.removed)} removes raised "
                            f"{type(error).__name__}: {error}"
                        ),
                    ),
                )
            steps += len(chunk)
            if check_invariants and set(sut.kappa) != set(shadow.edges()):
                missing = set(shadow.edges()) - set(sut.kappa)
                extra = set(sut.kappa) - set(shadow.edges())
                return RunReport(
                    steps=steps,
                    checkpoints=checkpoints,
                    oracles=matrix.active_names(),
                    divergence=Divergence(
                        step=last,
                        kind="invariant",
                        message=(
                            "kappa key set does not match the graph's edges "
                            f"after batch apply (missing "
                            f"{sorted(missing, key=repr)[:5]}, "
                            f"extra {sorted(extra, key=repr)[:5]})"
                        ),
                    ),
                )
            found = checkpoint(last, None)
            if found is not None:
                return RunReport(
                    steps=steps,
                    checkpoints=checkpoints,
                    oracles=matrix.active_names(),
                    divergence=found,
                )
        if len(script) == 0:
            found = checkpoint(0, None)
            if found is not None:
                return RunReport(
                    steps=0,
                    checkpoints=checkpoints,
                    oracles=matrix.active_names(),
                    divergence=found,
                )
        return RunReport(
            steps=len(script),
            checkpoints=checkpoints,
            oracles=matrix.active_names(),
            final_kappa=dict(sut.kappa),
        )

    for step, op in enumerate(script):
        outcome = expected_outcome(shadow, op)
        before = dict(sut.kappa)
        raised: Optional[BaseException] = None
        try:
            if op.kind == "add":
                sut.add_edge(op.u, op.v)
            elif op.kind == "remove":
                sut.remove_edge(op.u, op.v)
            elif op.kind == "add_vertex":
                sut.add_vertex(op.u)
            else:
                sut.remove_vertex(op.u)
        except (
            SelfLoopError,
            EdgeExistsError,
            EdgeNotFoundError,
            VertexNotFoundError,
        ) as error:
            raised = error

        expected_error = _EXPECTED_ERRORS.get(outcome)
        if expected_error is not None:
            if not isinstance(raised, expected_error):
                return RunReport(
                    steps=step,
                    checkpoints=checkpoints,
                    oracles=matrix.active_names(),
                    divergence=Divergence(
                        step=step,
                        kind="error_contract",
                        op=op,
                        message=(
                            f"{op} should raise {expected_error.__name__}, "
                            f"got {type(raised).__name__ if raised else 'no error'}"
                        ),
                    ),
                )
        elif raised is not None:
            return RunReport(
                steps=step,
                checkpoints=checkpoints,
                oracles=matrix.active_names(),
                divergence=Divergence(
                    step=step,
                    kind="error_contract",
                    op=op,
                    message=f"{op} unexpectedly raised {type(raised).__name__}: {raised}",
                ),
            )

        apply_op(shadow, op)
        after = dict(sut.kappa)

        problem: Optional[str] = None
        if check_invariants:
            if outcome != OUTCOME_OK:
                if after != before:
                    problem = (
                        f"rejected op {op} still changed the kappa map "
                        "(state corrupted on the error path)"
                    )
            elif op.kind == "add":
                problem = _check_unit_add(op, before, after)
            elif op.kind == "remove":
                problem = _check_unit_remove(op, before, after)
            # remove_vertex is a composite of unit deletions; only the
            # monotonicity half of Rule 0 survives aggregation.
            elif op.kind == "remove_vertex":
                for edge, old in before.items():
                    new = after.get(edge)
                    if new is not None and new > old:
                        problem = (
                            f"vertex removal promoted {edge!r}: {old} -> {new}"
                        )
                        break
            if problem is None and set(after) != set(shadow.edges()):
                missing = set(shadow.edges()) - set(after)
                extra = set(after) - set(shadow.edges())
                problem = (
                    "kappa key set does not match the graph's edges "
                    f"(missing {sorted(missing, key=repr)[:5]}, "
                    f"extra {sorted(extra, key=repr)[:5]})"
                )
        if problem is not None:
            return RunReport(
                steps=step + 1,
                checkpoints=checkpoints,
                oracles=matrix.active_names(),
                divergence=Divergence(
                    step=step, kind="invariant", op=op, message=problem
                ),
            )

        if (step + 1) % checkpoint_every == 0:
            found = checkpoint(step, op)
            if found is not None:
                return RunReport(
                    steps=step + 1,
                    checkpoints=checkpoints,
                    oracles=matrix.active_names(),
                    divergence=found,
                )

    final_step = len(script) - 1 if len(script) else 0
    if len(script) == 0 or len(script) % checkpoint_every != 0:
        found = checkpoint(final_step, None)
        if found is not None:
            return RunReport(
                steps=len(script),
                checkpoints=checkpoints,
                oracles=matrix.active_names(),
                divergence=found,
            )
    return RunReport(
        steps=len(script),
        checkpoints=checkpoints,
        oracles=matrix.active_names(),
        final_kappa=dict(sut.kappa),
    )
