"""Edge-list and snapshot I/O.

The on-disk formats are deliberately plain so files interoperate with SNAP /
networkx tooling:

* **edge list** — one ``u v`` pair per line, ``#`` comments allowed;
* **snapshot stream** — a directory (or single file) of edge lists, one per
  timestamp, plus :func:`write_diff` / :func:`read_diff` for the
  added/removed deltas the dynamic algorithms consume.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, List, Tuple, Union

from ..exceptions import DatasetError
from .edge import Edge, canonical_edge
from .undirected import Graph

PathLike = Union[str, os.PathLike]


def _parse_vertex(token: str) -> object:
    """Parse a vertex token: int if possible, else the raw string."""
    try:
        return int(token)
    except ValueError:
        return token


def read_edge_list(path: PathLike) -> Graph:
    """Load a graph from an edge-list file.

    Blank lines and lines starting with ``#`` or ``%`` are skipped.  Tokens
    that parse as integers become int vertices; everything else stays a
    string.  Duplicate edges and self-loops in the file are ignored (the
    library works on simple graphs).
    """
    graph = Graph()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{line_number}: expected 'u v', got {stripped!r}"
                )
            u, v = _parse_vertex(parts[0]), _parse_vertex(parts[1])
            if u == v:
                continue
            graph.add_edge(u, v, exist_ok=True)
    return graph


def write_edge_list(graph: Graph, path: PathLike, *, header: str = "") -> None:
    """Write ``graph`` as an edge-list file (canonical edge per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# vertices={graph.num_vertices} edges={graph.num_edges}\n")
        for u, v in sorted(graph.edges(), key=repr):
            handle.write(f"{u} {v}\n")


def write_diff(
    added: Iterable[Tuple[object, object]],
    removed: Iterable[Tuple[object, object]],
    path: PathLike,
) -> None:
    """Write an edge delta file: ``+ u v`` / ``- u v`` lines."""
    with open(path, "w", encoding="utf-8") as handle:
        for u, v in added:
            handle.write(f"+ {u} {v}\n")
        for u, v in removed:
            handle.write(f"- {u} {v}\n")


def read_diff(path: PathLike) -> Tuple[List[Edge], List[Edge]]:
    """Read a delta file produced by :func:`write_diff`.

    Returns ``(added, removed)`` lists of canonical edges.
    """
    added: List[Edge] = []
    removed: List[Edge] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 3 or parts[0] not in "+-":
                raise DatasetError(
                    f"{path}:{line_number}: expected '+/- u v', got {stripped!r}"
                )
            edge = canonical_edge(_parse_vertex(parts[1]), _parse_vertex(parts[2]))
            (added if parts[0] == "+" else removed).append(edge)
    return added, removed


def write_snapshots(
    snapshots: Iterable[Graph], directory: PathLike, *, prefix: str = "snapshot"
) -> List[Path]:
    """Write consecutive graph snapshots into ``directory``.

    Files are named ``<prefix>_000.edges``, ``<prefix>_001.edges``, …
    Returns the written paths in order.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for index, graph in enumerate(snapshots):
        path = directory / f"{prefix}_{index:03d}.edges"
        write_edge_list(graph, path, header=f"snapshot {index}")
        paths.append(path)
    return paths


def read_snapshots(directory: PathLike, *, prefix: str = "snapshot") -> List[Graph]:
    """Read back the snapshots written by :func:`write_snapshots`, in order."""
    directory = Path(directory)
    paths = sorted(directory.glob(f"{prefix}_*.edges"))
    if not paths:
        raise DatasetError(f"no '{prefix}_*.edges' files under {directory}")
    return [read_edge_list(path) for path in paths]


def edge_set(graph: Graph) -> set[Edge]:
    """Return the graph's edges as a set of canonical tuples."""
    return set(graph.edges())


def graph_diff(old: Graph, new: Graph) -> Tuple[List[Edge], List[Edge]]:
    """Return ``(added, removed)`` canonical edge lists between two snapshots.

    This is the bridge between snapshot streams and the dynamic maintenance
    API: apply ``added``/``removed`` to a maintainer built on ``old`` and its
    state matches ``new``.
    """
    old_edges = edge_set(old)
    new_edges = edge_set(new)
    added = sorted(new_edges - old_edges, key=repr)
    removed = sorted(old_edges - new_edges, key=repr)
    return added, removed
