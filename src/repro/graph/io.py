"""Edge-list and snapshot I/O.

The on-disk formats are deliberately plain so files interoperate with SNAP /
networkx tooling:

* **edge list** — one ``u v`` pair per line, ``#`` comments allowed;
* **snapshot stream** — a directory (or single file) of edge lists, one per
  timestamp, plus :func:`write_diff` / :func:`read_diff` for the
  added/removed deltas the dynamic algorithms consume.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, List, Tuple, Union

from ..exceptions import DatasetError, PersistenceError
from .edge import Edge, canonical_edge
from .undirected import Graph

PathLike = Union[str, os.PathLike]


def _parse_vertex(token: str) -> object:
    """Parse a vertex token: int if possible, else the raw string."""
    try:
        return int(token)
    except ValueError:
        return token


def read_edge_list(path: PathLike) -> Graph:
    """Load a graph from an edge-list file.

    Blank lines and lines starting with ``#`` or ``%`` are skipped.  Tokens
    that parse as integers become int vertices; everything else stays a
    string.  Duplicate edges and self-loops in the file are ignored (the
    library works on simple graphs).
    """
    graph = Graph()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{line_number}: expected 'u v', got {stripped!r}"
                )
            u, v = _parse_vertex(parts[0]), _parse_vertex(parts[1])
            if u == v:
                continue
            graph.add_edge(u, v, exist_ok=True)
    return graph


def write_edge_list(graph: Graph, path: PathLike, *, header: str = "") -> None:
    """Write ``graph`` as an edge-list file (canonical edge per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# vertices={graph.num_vertices} edges={graph.num_edges}\n")
        for u, v in sorted(graph.edges(), key=repr):
            handle.write(f"{u} {v}\n")


def _is_adjacency_edge_cell(cell: str) -> bool:
    """True if a CSV adjacency cell denotes an edge (non-empty, non-zero)."""
    stripped = cell.strip()
    if not stripped:
        return False
    try:
        return float(stripped) != 0.0
    except ValueError:
        # Non-numeric cells (edge labels, "x" markers) denote an edge.
        return True


def read_adjacency_csv(path: PathLike) -> Graph:
    """Load a graph from a CSV adjacency matrix (the GCLI convention).

    The first row and first column list the node ids — the corner cell is
    ignored (conventionally blank).  A non-empty, non-zero cell at
    ``(row u, column v)`` creates the undirected edge ``{u, v}``; cell
    *values* (edge weights in GCLI) are not kept, only incidence.  Node
    ids that parse as integers become int vertices, like
    :func:`read_edge_list`.  Every listed node becomes a vertex even if
    its row/column is all zeros (isolated vertices are preserved).

    Validation — each fault raises :class:`~repro.exceptions.PersistenceError`
    carrying the offending ``path`` and naming the bad cell:

    * ragged rows (a row longer or shorter than the header);
    * duplicate node ids in the header, or a row labelled with an id that
      does not match the header order;
    * asymmetric cells — ``(u, v)`` marks an edge but ``(v, u)`` does not;
    * non-zero diagonal cells (self loops are not representable in a
      simple graph).
    """
    import csv

    with open(path, "r", encoding="utf-8", newline="") as handle:
        rows = list(csv.reader(handle))
    rows = [row for row in rows if any(cell.strip() for cell in row)]
    if not rows:
        raise PersistenceError(path, "empty adjacency matrix (no header row)")
    header = rows[0]
    if len(header) < 2:
        raise PersistenceError(
            path, "header must list at least one node id after the corner cell"
        )
    ids = [_parse_vertex(cell.strip()) for cell in header[1:]]
    if len(set(ids)) != len(ids):
        seen: set = set()
        for node in ids:
            if node in seen:
                raise PersistenceError(
                    path, f"duplicate node id {node!r} in header"
                )
            seen.add(node)
    n = len(ids)
    if len(rows) - 1 != n:
        raise PersistenceError(
            path,
            f"expected {n} data rows (one per header id), got {len(rows) - 1}",
        )
    cells: List[List[str]] = []
    for row_number, row in enumerate(rows[1:], start=1):
        if len(row) != n + 1:
            raise PersistenceError(
                path,
                f"ragged row {row_number} (node {row[0].strip()!r}): "
                f"expected {n + 1} cells, got {len(row)}",
            )
        row_id = _parse_vertex(row[0].strip())
        if row_id != ids[row_number - 1]:
            raise PersistenceError(
                path,
                f"row {row_number} is labelled {row_id!r} but the header "
                f"lists {ids[row_number - 1]!r} at that position",
            )
        cells.append(row[1:])
    graph = Graph(vertices=ids)
    for i, u in enumerate(ids):
        for j, v in enumerate(ids):
            if not _is_adjacency_edge_cell(cells[i][j]):
                continue
            if i == j:
                raise PersistenceError(
                    path,
                    f"cell ({u!r}, {v!r}) = {cells[i][j].strip()!r} is a "
                    "self loop; simple graphs have a zero diagonal",
                )
            if not _is_adjacency_edge_cell(cells[j][i]):
                raise PersistenceError(
                    path,
                    f"asymmetric cell: ({u!r}, {v!r}) = "
                    f"{cells[i][j].strip()!r} but ({v!r}, {u!r}) = "
                    f"{cells[j][i].strip()!r}",
                )
            graph.add_edge(u, v, exist_ok=True)
    return graph


def write_diff(
    added: Iterable[Tuple[object, object]],
    removed: Iterable[Tuple[object, object]],
    path: PathLike,
) -> None:
    """Write an edge delta file: ``+ u v`` / ``- u v`` lines."""
    with open(path, "w", encoding="utf-8") as handle:
        for u, v in added:
            handle.write(f"+ {u} {v}\n")
        for u, v in removed:
            handle.write(f"- {u} {v}\n")


def read_diff(path: PathLike) -> Tuple[List[Edge], List[Edge]]:
    """Read a delta file produced by :func:`write_diff`.

    Returns ``(added, removed)`` lists of canonical edges.
    """
    added: List[Edge] = []
    removed: List[Edge] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 3 or parts[0] not in "+-":
                raise DatasetError(
                    f"{path}:{line_number}: expected '+/- u v', got {stripped!r}"
                )
            edge = canonical_edge(_parse_vertex(parts[1]), _parse_vertex(parts[2]))
            (added if parts[0] == "+" else removed).append(edge)
    return added, removed


def write_snapshots(
    snapshots: Iterable[Graph], directory: PathLike, *, prefix: str = "snapshot"
) -> List[Path]:
    """Write consecutive graph snapshots into ``directory``.

    Files are named ``<prefix>_000.edges``, ``<prefix>_001.edges``, …
    Returns the written paths in order.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for index, graph in enumerate(snapshots):
        path = directory / f"{prefix}_{index:03d}.edges"
        write_edge_list(graph, path, header=f"snapshot {index}")
        paths.append(path)
    return paths


def read_snapshots(directory: PathLike, *, prefix: str = "snapshot") -> List[Graph]:
    """Read back the snapshots written by :func:`write_snapshots`, in order."""
    directory = Path(directory)
    paths = sorted(directory.glob(f"{prefix}_*.edges"))
    if not paths:
        raise DatasetError(f"no '{prefix}_*.edges' files under {directory}")
    return [read_edge_list(path) for path in paths]


def edge_set(graph: Graph) -> set[Edge]:
    """Return the graph's edges as a set of canonical tuples."""
    return set(graph.edges())


def graph_diff(old: Graph, new: Graph) -> Tuple[List[Edge], List[Edge]]:
    """Return ``(added, removed)`` canonical edge lists between two snapshots.

    This is the bridge between snapshot streams and the dynamic maintenance
    API: apply ``added``/``removed`` to a maintainer built on ``old`` and its
    state matches ``new``.
    """
    old_edges = edge_set(old)
    new_edges = edge_set(new)
    added = sorted(new_edges - old_edges, key=repr)
    removed = sorted(old_edges - new_edges, key=repr)
    return added, removed
