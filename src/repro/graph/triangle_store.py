"""A dynamic edge-to-apexes triangle index.

The paper's Algorithm 1 can either store every triangle in memory or
recompute an edge's triangles on demand (§IV-A last paragraph), and the
appendix discusses the same trade-off for the dynamic update algorithms.
:class:`TriangleStore` is the stored side of that trade-off, kept *live*
under edge insertions and deletions:

* ``apexes(u, v)`` — the triangle apexes of an edge, O(1) lookup;
* ``add_edge`` / ``remove_edge`` — maintain the index in
  O(min-degree of the endpoints) per update.

Memory is O(|Tri|); for graphs where that fits, the dynamic maintainer can
skip its per-cascade common-neighbor intersections (see
``DynamicTriangleKCore(store_triangles=True)``).
"""

from __future__ import annotations

from typing import Dict, Iterator, Set

from ..exceptions import EdgeNotFoundError
from .edge import Edge, Triangle, Vertex, canonical_edge, canonical_triangle
from .undirected import Graph


class TriangleStore:
    """Maintains ``{edge: set of apex vertices}`` for a dynamic graph.

    The store holds a reference to the graph it indexes; mutate the graph
    ONLY through the store's ``add_edge`` / ``remove_edge`` so the index
    stays consistent (the graph object itself is shared, not copied).

    Examples
    --------
    >>> g = Graph(edges=[(0, 1), (1, 2)])
    >>> store = TriangleStore(g)
    >>> store.add_edge(0, 2)
    {1}
    >>> sorted(store.apexes(0, 1))
    [2]
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._apexes: Dict[Edge, Set[Vertex]] = {
            edge: set() for edge in graph.edges()
        }
        from .triangles import enumerate_triangles

        for a, b, c in enumerate_triangles(graph):
            self._apexes[(a, b)].add(c)
            self._apexes[(a, c)].add(b)
            self._apexes[(b, c)].add(a)

    @property
    def graph(self) -> Graph:
        """The indexed graph (mutate only through the store)."""
        return self._graph

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def apexes(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """Apex vertices of the edge's triangles (do not mutate).

        Raises :class:`EdgeNotFoundError` for absent edges.
        """
        try:
            return self._apexes[canonical_edge(u, v)]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def support(self, u: Vertex, v: Vertex) -> int:
        """Triangle count of the edge — O(1)."""
        return len(self.apexes(u, v))

    def triangles_of_edge(self, u: Vertex, v: Vertex) -> Iterator[Triangle]:
        """Canonical triangles containing the edge."""
        for w in self.apexes(u, v):
            yield canonical_triangle(u, v, w)

    def total_triangles(self) -> int:
        """Total number of triangles currently indexed."""
        return sum(len(s) for s in self._apexes.values()) // 3

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def add_edge(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """Insert ``{u, v}`` into graph and index; return the new apexes."""
        new_apexes = (
            self._graph.common_neighbors(u, v)
            if self._graph.has_vertex(u) and self._graph.has_vertex(v)
            else set()
        )
        self._graph.add_edge(u, v)
        edge = canonical_edge(u, v)
        self._apexes[edge] = set(new_apexes)
        for w in new_apexes:
            self._apexes[canonical_edge(u, w)].add(v)
            self._apexes[canonical_edge(v, w)].add(u)
        return set(new_apexes)

    def remove_edge(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """Remove ``{u, v}``; return the apexes of the destroyed triangles."""
        edge = canonical_edge(u, v)
        if edge not in self._apexes:
            raise EdgeNotFoundError(u, v)
        dead_apexes = self._apexes.pop(edge)
        self._graph.remove_edge(u, v)
        for w in dead_apexes:
            self._apexes[canonical_edge(u, w)].discard(v)
            self._apexes[canonical_edge(v, w)].discard(u)
        return dead_apexes

    # ------------------------------------------------------------------ #
    # verification
    # ------------------------------------------------------------------ #

    def is_consistent(self) -> bool:
        """Full check against the graph — O(|E| * degree), for tests."""
        if set(self._apexes) != set(self._graph.edges()):
            return False
        for (u, v), apexes in self._apexes.items():
            if apexes != self._graph.common_neighbors(u, v):
                return False
        return True
