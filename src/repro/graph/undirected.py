"""A dynamic, simple, undirected graph built on adjacency sets.

This is the substrate every algorithm in the library runs on.  It is
deliberately small and explicit: vertices are arbitrary hashables, edges are
canonical 2-tuples (see :mod:`repro.graph.edge`), and all mutating operations
are O(degree) or better so the dynamic-maintenance algorithms get the
complexity the paper assumes.

The class intentionally does *not* depend on networkx; conversion helpers
live in :mod:`repro.graph.convert`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set

from ..exceptions import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)
from .edge import Edge, Vertex, canonical_edge


class Graph:
    """A simple undirected graph with O(1) edge queries and dynamic updates.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs to insert at construction.
    vertices:
        Optional iterable of isolated vertices to insert at construction
        (endpoints of ``edges`` are added automatically).

    Examples
    --------
    >>> g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
    >>> g.num_vertices, g.num_edges
    (3, 3)
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.has_edge(3, 1)
    True
    """

    __slots__ = ("_adj", "_num_edges", "_version", "__weakref__")

    def __init__(
        self,
        edges: Optional[Iterable[tuple[Vertex, Vertex]]] = None,
        vertices: Optional[Iterable[Vertex]] = None,
    ) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._num_edges = 0
        self._version = 0
        if vertices is not None:
            for vertex in vertices:
                self.add_vertex(vertex)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v, exist_ok=True)

    # ------------------------------------------------------------------ #
    # construction / mutation
    # ------------------------------------------------------------------ #

    def add_vertex(self, vertex: Vertex) -> bool:
        """Add an isolated vertex; return True if it was new."""
        if vertex in self._adj:
            return False
        self._adj[vertex] = set()
        self._version += 1
        return True

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and every incident edge.

        Raises :class:`VertexNotFoundError` if the vertex is absent.
        """
        try:
            neighbors = self._adj.pop(vertex)
        except KeyError:
            raise VertexNotFoundError(vertex) from None
        self._num_edges -= len(neighbors)
        self._version += 1
        for neighbor in neighbors:
            self._adj[neighbor].discard(vertex)

    def add_edge(self, u: Vertex, v: Vertex, *, exist_ok: bool = False) -> bool:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Returns True if the edge was inserted, False if it already existed and
        ``exist_ok`` is set.  Raises :class:`EdgeExistsError` on duplicates
        otherwise, and :class:`SelfLoopError` for ``u == v``.
        """
        if u == v:
            raise SelfLoopError(u)
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            if exist_ok:
                return False
            raise EdgeExistsError(u, v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        self._version += 1
        return True

    def remove_edge(self, u: Vertex, v: Vertex, *, missing_ok: bool = False) -> bool:
        """Remove the undirected edge ``{u, v}``; endpoints are kept.

        Returns True if the edge was removed, False if it was absent and
        ``missing_ok`` is set; raises :class:`EdgeNotFoundError` otherwise.
        """
        if u in self._adj and v in self._adj[u]:
            self._adj[u].discard(v)
            self._adj[v].discard(u)
            self._num_edges -= 1
            self._version += 1
            return True
        if missing_ok:
            return False
        raise EdgeNotFoundError(u, v)

    def clear(self) -> None:
        """Remove every vertex and edge."""
        self._adj.clear()
        self._num_edges = 0
        self._version += 1

    def bump_version(self, amount: int = 1) -> int:
        """Advance the mutation counter without a structural change.

        For consumers that swap one graph in for another but must keep a
        single monotonically increasing version stream (e.g. the service
        layer's recompute path, which replaces its maintained graph with
        a replayed copy): bumping lets the replacement start strictly
        after the original.  Also invalidates any engine-cached artifacts
        for this graph, which is always safe.  Returns the new version.
        """
        if amount < 1:
            raise ValueError(f"amount must be >= 1, got {amount}")
        self._version += amount
        return self._version

    def restore_version(self, version: int) -> int:
        """Set the mutation counter outright (snapshot deserialization).

        A graph rebuilt from a serialized snapshot must report the
        *snapshot's* version, not the number of insertions the rebuild
        happened to perform, so that version-stamped consumers (the
        replication tier, the engine cache) see one continuous stream.
        Only ever call this on a freshly deserialized graph that no
        version-keyed cache has observed yet — lowering the version of a
        graph the engine has already cached would alias distinct states.
        Returns the new version.
        """
        if version < 0:
            raise ValueError(f"version must be >= 0, got {version}")
        self._version = version
        return self._version

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        """Monotonically-increasing mutation counter for *this* instance.

        Every structural change (vertex/edge insertion or removal,
        ``clear``) increments it, so ``(id(graph), graph.version)`` uniquely
        identifies one structural state of one live graph object.  The
        engine's artifact cache (:mod:`repro.engine`) keys on it to make
        repeated decompositions of an unmutated graph free while making
        stale answers impossible.  Copies start their own count at 0.
        """
        return self._version

    @property
    def num_vertices(self) -> int:
        """Number of vertices in the graph."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges in the graph (O(1))."""
        return self._num_edges

    def has_vertex(self, vertex: Vertex) -> bool:
        """True if ``vertex`` is in the graph."""
        return vertex in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """True if the undirected edge ``{u, v}`` is in the graph."""
        neighbors = self._adj.get(u)
        return neighbors is not None and v in neighbors

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices (insertion order)."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in canonical form, each exactly once."""
        for u, neighbors in self._adj.items():
            for v in neighbors:
                edge = canonical_edge(u, v)
                if edge[0] == u:
                    yield edge

    def neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Return the neighbor set of ``vertex`` (do not mutate it).

        Raises :class:`VertexNotFoundError` if the vertex is absent.
        """
        try:
            return self._adj[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def degree(self, vertex: Vertex) -> int:
        """Return the degree of ``vertex``."""
        return len(self.neighbors(vertex))

    def common_neighbors(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """Return the set of vertices adjacent to both ``u`` and ``v``.

        For an edge ``{u, v}`` these are exactly the apexes of its triangles.
        Iterates over the smaller of the two neighbor sets (the asymmetric
        case is the common one on power-law graphs, and this method runs
        once per peeled edge in the reference decomposition), and stays in
        C via ``set.__and__`` instead of an interpreted comprehension.
        """
        nu = self.neighbors(u)
        nv = self.neighbors(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        return nu & nv

    def edge_support(self, u: Vertex, v: Vertex) -> int:
        """Number of triangles the edge ``{u, v}`` participates in."""
        return len(self.common_neighbors(u, v))

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #

    def copy(self) -> "Graph":
        """Return an independent deep copy of the structure."""
        clone = Graph()
        clone._adj = {vertex: set(neighbors) for vertex, neighbors in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return the subgraph induced by ``vertices``.

        Vertices absent from the graph are ignored.
        """
        keep = {v for v in vertices if v in self._adj}
        sub = Graph(vertices=keep)
        for u in keep:
            for v in self._adj[u]:
                if v in keep:
                    sub.add_edge(u, v, exist_ok=True)
        return sub

    def edge_subgraph(self, edges: Iterable[tuple[Vertex, Vertex]]) -> "Graph":
        """Return the subgraph formed by ``edges`` (must exist in this graph)."""
        sub = Graph()
        for u, v in edges:
            if not self.has_edge(u, v):
                raise EdgeNotFoundError(u, v)
            sub.add_edge(u, v, exist_ok=True)
        return sub

    def connected_components(self) -> list[Set[Vertex]]:
        """Return the vertex sets of the connected components."""
        seen: Set[Vertex] = set()
        components: list[Set[Vertex]] = []
        for start in self._adj:
            if start in seen:
                continue
            component = {start}
            stack = [start]
            while stack:
                vertex = stack.pop()
                for neighbor in self._adj[vertex]:
                    if neighbor not in component:
                        component.add(neighbor)
                        stack.append(neighbor)
            seen |= component
            components.append(component)
        return components

    # ------------------------------------------------------------------ #
    # dunder protocol
    # ------------------------------------------------------------------ #

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"


def complete_graph(n: int, *, offset: int = 0) -> Graph:
    """Return the clique :math:`K_n` on vertices ``offset .. offset+n-1``.

    A convenience used throughout tests and examples: an ``n``-vertex clique
    is the canonical Triangle K-Core with number ``n - 2`` (paper §III).

    >>> complete_graph(4).num_edges
    6
    """
    g = Graph(vertices=range(offset, offset + n))
    for i in range(offset, offset + n):
        for j in range(i + 1, offset + n):
            g.add_edge(i, j)
    return g
