"""Triangle enumeration and counting.

Two enumeration strategies are provided:

* :func:`triangles_of_edge` — local enumeration around a single edge (the
  primitive used by Algorithm 1 step 3 and by the dynamic update algorithms).
* :func:`enumerate_triangles` — the *forward* / oriented-edge-iterator
  algorithm that lists every triangle of the graph exactly once in
  :math:`O(\\sum_v d(v)^{3/2})` time, which is what makes Algorithm 1
  "linear in the number of triangles" overall.

All triangles are returned in canonical vertex-sorted form (see
:mod:`repro.graph.edge`), so a triangle enumerated from different edges is
represented identically — the paper's "we only store one instance of each
triangle" (§IV-A step 3).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from .edge import Edge, Triangle, Vertex, canonical_triangle
from .undirected import Graph


def triangles_of_edge(graph: Graph, u: Vertex, v: Vertex) -> Iterator[Triangle]:
    """Yield every triangle containing the edge ``{u, v}`` (canonical form).

    The apexes are exactly the common neighbors of the endpoints.

    >>> g = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
    >>> sorted(triangles_of_edge(g, 1, 2))
    [(1, 2, 3)]
    """
    for w in graph.common_neighbors(u, v):
        yield canonical_triangle(u, v, w)


def enumerate_triangles(graph: Graph) -> Iterator[Triangle]:
    """Yield every triangle of ``graph`` exactly once, in canonical form.

    Uses the forward algorithm: vertices are ranked by (degree, tiebreak) and
    each triangle is reported only from its lowest-ranked vertex, so no
    triangle is produced more than once and hub vertices do not blow up the
    cost.

    >>> from .undirected import complete_graph
    >>> sum(1 for _ in enumerate_triangles(complete_graph(5)))
    10
    """
    rank: Dict[Vertex, int] = {
        vertex: index
        for index, vertex in enumerate(
            sorted(graph.vertices(), key=lambda v: (graph.degree(v), repr(v)))
        )
    }
    # Oriented adjacency: keep only neighbors of higher rank.
    forward: Dict[Vertex, set] = {
        vertex: {w for w in graph.neighbors(vertex) if rank[w] > rank[vertex]}
        for vertex in graph.vertices()
    }
    for u in graph.vertices():
        fu = forward[u]
        for v in fu:
            fv = forward[v]
            smaller, larger = (fu, fv) if len(fu) <= len(fv) else (fv, fu)
            for w in smaller:
                if w in larger:
                    yield canonical_triangle(u, v, w)


def count_triangles(graph: Graph, *, backend: str = "auto") -> int:
    """Return the total number of triangles in ``graph``.

    ``backend`` selects the implementation: ``"reference"`` iterates
    :func:`enumerate_triangles`, ``"csr"`` runs the flat-array kernel of
    :mod:`repro.fast`, ``"parallel"`` shards that kernel over a process
    pool, ``"auto"`` (default) picks by graph size.

    >>> from .undirected import complete_graph
    >>> count_triangles(complete_graph(6))
    20
    """
    from ..fast import (
        csr_count_triangles,
        parallel_count_triangles,
        resolve_backend,
    )

    # Counting never peels, so the -vec compositions (which differ only in
    # peel executor) collapse to their base enumeration family here.
    resolved = resolve_backend(backend, graph)
    if resolved in ("parallel", "parallel-vec"):
        return parallel_count_triangles(graph)
    if resolved in ("csr", "csr-vec"):
        return csr_count_triangles(graph)
    return sum(1 for _ in enumerate_triangles(graph))


def triangle_supports(graph: Graph, *, backend: str = "auto") -> Dict[Edge, int]:
    """Return ``{edge: number of triangles containing it}`` for every edge.

    This is the initial upper bound :math:`\\tilde\\kappa(e)` of Algorithm 1
    (steps 1-5): before any peeling, every triangle on ``e`` may belong to
    ``e``'s maximum Triangle K-Core.

    Computed in a single pass over the triangle enumeration, so the cost is
    O(|E| + |Tri|) rather than one common-neighbor intersection per edge.
    ``backend`` works as in :func:`count_triangles`; both paths return
    identical mappings.
    """
    from ..fast import (
        csr_triangle_supports,
        parallel_triangle_supports,
        resolve_backend,
    )

    # Supports never peel either — same -vec → base-family collapse.
    resolved = resolve_backend(backend, graph)
    if resolved in ("parallel", "parallel-vec"):
        return parallel_triangle_supports(graph)
    if resolved in ("csr", "csr-vec"):
        return csr_triangle_supports(graph)
    supports: Dict[Edge, int] = {edge: 0 for edge in graph.edges()}
    for a, b, c in enumerate_triangles(graph):
        supports[(a, b)] += 1
        supports[(a, c)] += 1
        supports[(b, c)] += 1
    return supports


def edge_triangle_index(graph: Graph) -> Dict[Edge, list[Triangle]]:
    """Return ``{edge: [triangles containing it]}`` for every edge.

    This materializes the triangle store that Algorithm 1 builds in step 3.
    For graphs too large to store all triangles the paper recomputes them on
    demand (§IV-A last paragraph); callers wanting that behaviour should use
    :func:`triangles_of_edge` instead.
    """
    index: Dict[Edge, list[Triangle]] = {edge: [] for edge in graph.edges()}
    for triangle in enumerate_triangles(graph):
        a, b, c = triangle
        index[(a, b)].append(triangle)
        index[(a, c)].append(triangle)
        index[(b, c)].append(triangle)
    return index


def new_triangles_for_edge(graph: Graph, u: Vertex, v: Vertex) -> list[Triangle]:
    """Triangles that appear if the (absent) edge ``{u, v}`` is inserted.

    ``graph`` must not already contain the edge.  Used by the dynamic
    maintenance algorithms: inserting an edge creates exactly one triangle per
    common neighbor of its endpoints.
    """
    if graph.has_edge(u, v):
        raise ValueError(f"edge ({u!r}, {v!r}) already present; no 'new' triangles")
    return [canonical_triangle(u, v, w) for w in graph.common_neighbors(u, v)]


def global_clustering_coefficient(graph: Graph) -> float:
    """Transitivity: ``3 * triangles / open wedges`` (0.0 for wedge-free graphs).

    Handy for characterizing the synthetic datasets against their real-world
    counterparts from the paper's Table I.
    """
    wedge_count = sum(
        graph.degree(v) * (graph.degree(v) - 1) // 2 for v in graph.vertices()
    )
    if wedge_count == 0:
        return 0.0
    return 3.0 * count_triangles(graph) / wedge_count


def local_clustering(graph: Graph, vertex: Vertex) -> float:
    """Local clustering coefficient of ``vertex`` (0.0 for degree < 2)."""
    neighbors = list(graph.neighbors(vertex))
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    neighbor_set = set(neighbors)
    for i, u in enumerate(neighbors):
        links += sum(1 for w in graph.neighbors(u) if w in neighbor_set)
    # Every link counted twice (once from each endpoint).
    return links / (k * (k - 1))


def triangle_degree(graph: Graph, vertex: Vertex) -> int:
    """Number of triangles that contain ``vertex``."""
    neighbors = list(graph.neighbors(vertex))
    neighbor_set = set(neighbors)
    links = 0
    for u in neighbors:
        links += sum(1 for w in graph.neighbors(u) if w in neighbor_set)
    return links // 2


Wedge = Tuple[Vertex, Vertex, Vertex]


def enumerate_open_wedges(graph: Graph) -> Iterator[Wedge]:
    """Yield open wedges ``(u, center, w)`` where ``{u, w}`` is *not* an edge.

    Useful for edge-insertion workloads that deliberately close triangles
    (the "densifying" update streams used in the Table III benchmark).
    Each unordered wedge is yielded once, with ``u`` before ``w`` in
    canonical order.
    """
    for center in graph.vertices():
        neighbors = sorted(graph.neighbors(center), key=repr)
        for i, u in enumerate(neighbors):
            for w in neighbors[i + 1 :]:
                if not graph.has_edge(u, w):
                    yield (u, center, w)
