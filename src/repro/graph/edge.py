"""Canonical edge and triangle keys for undirected graphs.

Every module in this library identifies an undirected edge by a *canonical*
2-tuple and a triangle by a canonical 3-tuple, so that ``(u, v)`` and
``(v, u)`` (and every vertex rotation of a triangle) map to the same
dictionary key.  Vertices may be any hashable object; when two vertices are
not mutually orderable (for example an ``int`` and a ``str``) we fall back to
a deterministic total order on ``(type name, repr)``.
"""

from __future__ import annotations

from typing import Hashable, Tuple

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]
Triangle = Tuple[Vertex, Vertex, Vertex]


def _order_key(vertex: Vertex) -> tuple[str, str]:
    """Deterministic fallback sort key for vertices of mixed types."""
    return (type(vertex).__name__, repr(vertex))


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical representation of the undirected edge ``{u, v}``.

    The canonical form orders the endpoints so that ``canonical_edge(u, v)``
    and ``canonical_edge(v, u)`` are identical, making the result usable as a
    dictionary key.

    >>> canonical_edge(2, 1)
    (1, 2)
    >>> canonical_edge("b", "a")
    ('a', 'b')
    """
    try:
        if u <= v:  # type: ignore[operator]
            return (u, v)
        return (v, u)
    except TypeError:
        if _order_key(u) <= _order_key(v):
            return (u, v)
        return (v, u)


def canonical_triangle(u: Vertex, v: Vertex, w: Vertex) -> Triangle:
    """Return the canonical representation of the triangle ``{u, v, w}``.

    >>> canonical_triangle(3, 1, 2)
    (1, 2, 3)
    """
    try:
        a, b, c = sorted((u, v, w))  # type: ignore[type-var]
    except TypeError:
        a, b, c = sorted((u, v, w), key=_order_key)
    return (a, b, c)


def triangle_edges(triangle: Triangle) -> tuple[Edge, Edge, Edge]:
    """Return the three canonical edges of a canonical triangle.

    >>> triangle_edges((1, 2, 3))
    ((1, 2), (1, 3), (2, 3))
    """
    a, b, c = triangle
    return (canonical_edge(a, b), canonical_edge(a, c), canonical_edge(b, c))


def other_edges(triangle: Triangle, edge: Edge) -> tuple[Edge, Edge]:
    """Return the two edges of ``triangle`` other than ``edge``.

    ``edge`` must be one of the triangle's canonical edges.

    >>> other_edges((1, 2, 3), (1, 2))
    ((1, 3), (2, 3))
    """
    e1, e2, e3 = triangle_edges(triangle)
    if edge == e1:
        return (e2, e3)
    if edge == e2:
        return (e1, e3)
    if edge == e3:
        return (e1, e2)
    raise ValueError(f"edge {edge!r} is not part of triangle {triangle!r}")


def apex(triangle: Triangle, edge: Edge) -> Vertex:
    """Return the vertex of ``triangle`` that is not an endpoint of ``edge``.

    >>> apex((1, 2, 3), (1, 3))
    2
    """
    u, v = edge
    remaining = [vertex for vertex in triangle if vertex != u and vertex != v]
    if len(remaining) != 1:
        raise ValueError(f"edge {edge!r} is not part of triangle {triangle!r}")
    return remaining[0]
