"""Deterministic synthetic graph generators.

These generators stand in for the real-world datasets of the paper's Table I
(see DESIGN.md §3).  All of them accept a ``seed`` and are fully
deterministic given it, which keeps the benchmark harness reproducible.

The generators cover the structural regimes the paper's datasets span:

* :func:`erdos_renyi` — sparse background noise (few triangles).
* :func:`barabasi_albert` — scale-free degree distributions with hubs
  (Epinions / Wiki / Flickr-like).
* :func:`watts_strogatz` — high clustering, local triangles (Stocks-like).
* :func:`planted_cliques` — explicit clique-like communities embedded in a
  sparse background (the structure the density plots are designed to
  surface).
* :func:`relaxed_caveman` — dense communities with rewired bridges
  (PPI / DBLP-like collaboration structure).
* :func:`rmat` — power-law graphs with community self-similarity
  (Amazon / LiveJournal-like).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .edge import Vertex
from .undirected import Graph


def erdos_renyi(n: int, p: float, *, seed: int = 0) -> Graph:
    """G(n, p) random graph on vertices ``0..n-1``.

    Uses the skip-sampling trick so the cost is proportional to the number of
    edges generated, not :math:`n^2`, for small ``p``.

    >>> g = erdos_renyi(50, 0.1, seed=1)
    >>> g.num_vertices
    50
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    graph = Graph(vertices=range(n))
    if p == 0.0:
        return graph
    if p == 1.0:
        for i in range(n):
            for j in range(i + 1, n):
                graph.add_edge(i, j)
        return graph
    # Skip-sample over the lexicographic enumeration of vertex pairs.
    import math

    log_q = math.log(1.0 - p)
    if log_q == 0.0:
        # p below float precision (1 - p rounds to 1.0): the expected edge
        # count is ~p * n^2 / 2 ≈ 0, so the empty graph is the right sample.
        return graph
    v = 1
    w = -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def barabasi_albert(n: int, m: int, *, seed: int = 0) -> Graph:
    """Preferential-attachment scale-free graph (``m`` edges per new vertex).

    >>> g = barabasi_albert(100, 3, seed=2)
    >>> g.num_edges >= 3 * (100 - 4)
    True
    """
    if m < 1 or m >= n:
        raise ValueError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = random.Random(seed)
    graph = Graph(vertices=range(m + 1))
    # Start from a small clique so early vertices can form triangles.
    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            graph.add_edge(i, j)
    # Repeated-endpoints list implements preferential attachment in O(1).
    endpoints: List[int] = []
    for u in range(m + 1):
        endpoints.extend([u] * graph.degree(u))
    for new_vertex in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(endpoints))
        for target in targets:
            graph.add_edge(new_vertex, target)
            endpoints.append(new_vertex)
            endpoints.append(target)
    return graph


def powerlaw_cluster(n: int, m: int, p_triad: float, *, seed: int = 0) -> Graph:
    """Holme-Kim model: preferential attachment with triad formation.

    Like :func:`barabasi_albert`, but after each preferential link the next
    link closes a triangle with probability ``p_triad`` (attaching to a
    random neighbor of the previous target).  Produces scale-free graphs
    with tunable clustering — the degree/clustering regime of real PPI and
    social networks, which pure BA misses.
    """
    if m < 1 or m >= n:
        raise ValueError(f"need 1 <= m < n, got m={m}, n={n}")
    if not 0.0 <= p_triad <= 1.0:
        raise ValueError(f"p_triad must be in [0, 1], got {p_triad}")
    rng = random.Random(seed)
    graph = Graph(vertices=range(m + 1))
    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            graph.add_edge(i, j)
    endpoints: List[int] = []
    for u in range(m + 1):
        endpoints.extend([u] * graph.degree(u))
    for new_vertex in range(m + 1, n):
        targets: set[int] = set()
        previous_target: Optional[int] = None
        while len(targets) < m:
            candidate: Optional[int] = None
            if previous_target is not None and rng.random() < p_triad:
                neighbors = [
                    w
                    for w in graph.neighbors(previous_target)
                    if w != new_vertex and w not in targets
                ]
                if neighbors:
                    candidate = rng.choice(neighbors)
            if candidate is None:
                candidate = rng.choice(endpoints)
                if candidate in targets:
                    continue
            targets.add(candidate)
            previous_target = candidate
        for target in targets:
            graph.add_edge(new_vertex, target)
            endpoints.append(new_vertex)
            endpoints.append(target)
    return graph


def watts_strogatz(n: int, k: int, p: float, *, seed: int = 0) -> Graph:
    """Small-world ring lattice with rewiring probability ``p``.

    Each vertex connects to its ``k`` nearest ring neighbors (``k`` must be
    even), then each lattice edge is rewired with probability ``p``.
    """
    if k % 2 != 0 or k <= 0:
        raise ValueError(f"k must be positive and even, got {k}")
    if k >= n:
        raise ValueError(f"need k < n, got k={k}, n={n}")
    rng = random.Random(seed)
    graph = Graph(vertices=range(n))
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            graph.add_edge(u, (u + offset) % n, exist_ok=True)
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if rng.random() < p and graph.has_edge(u, v):
                candidates = [w for w in range(n) if w != u and not graph.has_edge(u, w)]
                if candidates:
                    graph.remove_edge(u, v)
                    graph.add_edge(u, rng.choice(candidates))
    return graph


@dataclass
class PlantedClique:
    """Description of one clique planted by :func:`planted_cliques`."""

    vertices: Tuple[Vertex, ...]
    missing_edges: Tuple[Tuple[Vertex, Vertex], ...] = ()

    @property
    def size(self) -> int:
        return len(self.vertices)


@dataclass
class PlantedGraph:
    """A graph plus the ground-truth cliques planted into it."""

    graph: Graph
    cliques: List[PlantedClique] = field(default_factory=list)


def planted_cliques(
    n: int,
    clique_sizes: Sequence[int],
    *,
    background_p: float = 0.01,
    drop_edges: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> PlantedGraph:
    """Sparse background graph with disjoint cliques planted into it.

    Parameters
    ----------
    n:
        Total vertex count (must be at least ``sum(clique_sizes)``).
    clique_sizes:
        Size of each planted clique; cliques use disjoint vertex ranges
        starting at vertex 0.
    background_p:
        Erdős–Rényi probability for the background edges.
    drop_edges:
        Optional per-clique count of edges to delete from the planted clique,
        turning it into a quasi-clique (used to reproduce the paper's Fig 7
        "clique 3", a 10-vertex clique with one missing edge).
    seed:
        RNG seed.

    Returns the graph together with ground truth, which the Fig 6/Fig 7
    benchmarks use to score plateau recovery.
    """
    total = sum(clique_sizes)
    if total > n:
        raise ValueError(
            f"clique sizes sum to {total} but the graph only has {n} vertices"
        )
    if drop_edges is not None and len(drop_edges) != len(clique_sizes):
        raise ValueError("drop_edges must align with clique_sizes")
    rng = random.Random(seed)
    planted = PlantedGraph(graph=erdos_renyi(n, background_p, seed=seed + 1))
    graph = planted.graph
    start = 0
    for index, size in enumerate(clique_sizes):
        members = tuple(range(start, start + size))
        start += size
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                graph.add_edge(u, v, exist_ok=True)
        missing: List[Tuple[Vertex, Vertex]] = []
        if drop_edges is not None and drop_edges[index] > 0:
            pairs = [
                (u, v) for i, u in enumerate(members) for v in members[i + 1 :]
            ]
            rng.shuffle(pairs)
            for u, v in pairs[: drop_edges[index]]:
                graph.remove_edge(u, v)
                missing.append((u, v))
        planted.cliques.append(
            PlantedClique(vertices=members, missing_edges=tuple(missing))
        )
    return planted


def relaxed_caveman(
    num_communities: int,
    community_size: int,
    rewire_p: float,
    *,
    seed: int = 0,
) -> Graph:
    """Connected caves (cliques) with a fraction of edges rewired outward.

    A classic model for collaboration networks: start from
    ``num_communities`` disjoint cliques of ``community_size`` vertices, then
    rewire each edge with probability ``rewire_p`` to a uniformly random
    vertex, creating inter-community bridges while mostly preserving the
    dense cores.
    """
    rng = random.Random(seed)
    n = num_communities * community_size
    graph = Graph(vertices=range(n))
    for c in range(num_communities):
        base = c * community_size
        for i in range(community_size):
            for j in range(i + 1, community_size):
                graph.add_edge(base + i, base + j)
    for u, v in list(graph.edges()):
        if rng.random() < rewire_p:
            w = rng.randrange(n)
            if w != u and not graph.has_edge(u, w):
                graph.remove_edge(u, v)
                graph.add_edge(u, w)
    return graph


def rmat(
    scale: int,
    edge_factor: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> Graph:
    """R-MAT / Kronecker-style power-law graph.

    Generates ``edge_factor * 2**scale`` directed edge samples in a
    ``2**scale`` vertex square, symmetrized and deduplicated into a simple
    undirected graph.  The defaults are the Graph500 parameters.
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a + b + c must not exceed 1")
    import numpy as np

    rng = np.random.default_rng(seed)
    n = 1 << scale
    graph = Graph(vertices=range(n))
    target_edges = edge_factor * n
    attempts = 0
    # Vectorized quadrant descent: each batch draws `scale` quadrant choices
    # per candidate edge and assembles the bit patterns in one pass.
    thresholds = np.array([a, a + b, a + b + c])
    while graph.num_edges < target_edges and attempts < 12:
        attempts += 1
        batch = int((target_edges - graph.num_edges) * 1.6) + 64
        draws = rng.random((batch, scale))
        quadrant = np.searchsorted(thresholds, draws)  # 0..3 per bit
        u_bits = (quadrant >> 1) & 1  # quadrants 2,3 move u
        v_bits = quadrant & 1  # quadrants 1,3 move v
        weights = 1 << np.arange(scale - 1, -1, -1)
        us = (u_bits * weights).sum(axis=1)
        vs = (v_bits * weights).sum(axis=1)
        for u, v in zip(us.tolist(), vs.tolist()):
            if u != v:
                graph.add_edge(u, v, exist_ok=True)
                if graph.num_edges >= target_edges:
                    break
    return graph


def kronecker(
    initiator: Sequence[Sequence[float]],
    iterations: int,
    *,
    seed: int = 0,
) -> Graph:
    """Stochastic Kronecker graph sampled by recursive cell descent.

    The ``initiator`` is a small square matrix of non-negative cell
    weights (typically probabilities); after ``iterations`` Kronecker
    powers the vertex universe has :math:`k^{iterations}` vertices for a
    :math:`k \\times k` initiator.  Rather than evaluating all
    :math:`n^2` pair probabilities (infeasible in pure Python), edges
    are placed by the standard fast-sampling scheme: each sample
    descends ``iterations`` levels, picking cell ``(i, j)`` with
    probability proportional to ``initiator[i][j]`` at every level and
    accumulating the base-``k`` digits of both endpoints.  The number of
    samples is ``round(S ** iterations)`` where ``S`` is the total
    initiator weight — the expected directed edge count of the exact
    model.

    Self-loop / multi-edge handling (documented contract): sampled
    positions with ``u == v`` are *dropped* and repeat positions are
    *collapsed* (the "erased" convention, matching :func:`rmat`), so the
    realized simple-graph edge count is at most the sample count.  The
    output is symmetrized: a sampled arc ``(u, v)`` creates the
    undirected edge ``{u, v}``.

    Fully deterministic per ``(initiator, iterations, seed)`` and
    pure-stdlib — this is the self-similar community structure R-MAT
    approximates, without the numpy dependency.

    >>> g = kronecker([[0.9, 0.5], [0.5, 0.3]], 4, seed=1)
    >>> g.num_vertices
    16
    """
    k = len(initiator)
    if k < 2:
        raise ValueError(f"initiator must be at least 2x2, got {k}x{k}")
    if any(len(row) != k for row in initiator):
        raise ValueError("initiator must be square")
    cells: List[Tuple[int, int]] = []
    weights: List[float] = []
    for i, row in enumerate(initiator):
        for j, weight in enumerate(row):
            if weight < 0:
                raise ValueError(
                    f"initiator cell ({i}, {j}) is negative: {weight!r}"
                )
            if weight > 0:
                cells.append((i, j))
                weights.append(float(weight))
    if not cells:
        raise ValueError("initiator has no positive cells")
    if iterations < 1:
        raise ValueError(f"need iterations >= 1, got {iterations}")
    total = sum(weights)
    samples = max(1, round(total ** iterations))
    rng = random.Random(f"kronecker:{seed}")
    n = k ** iterations
    graph = Graph(vertices=range(n))
    for _ in range(samples):
        u = v = 0
        for _level in range(iterations):
            i, j = rng.choices(cells, weights=weights)[0]
            u = u * k + i
            v = v * k + j
        if u != v:
            graph.add_edge(u, v, exist_ok=True)
    return graph


def configuration_model(
    degree_sequence: Sequence[int], *, seed: int = 0
) -> Graph:
    """Erased configuration model for an exact target degree sequence.

    Builds the classic pairing (stub-matching) model: vertex ``i`` gets
    ``degree_sequence[i]`` stubs, the stub list is shuffled, and
    consecutive stubs are paired into edges.  The degree sum must be
    even (raises ``ValueError`` otherwise; pad the sequence to fix it).

    Self-loop / multi-edge handling (documented contract): pairings that
    would form a self loop or duplicate an existing edge are *erased*,
    not retried — the standard "erased configuration model" — so
    realized degrees are a lower bound on the requested ones (tight for
    sparse, spread-out sequences; hubs in heavy-tailed sequences lose
    the most).  Fully deterministic per ``(degree_sequence, seed)``.

    >>> g = configuration_model([3, 3, 2, 2, 2], seed=1)
    >>> g.num_vertices
    5
    """
    degrees = list(degree_sequence)
    if any(d < 0 for d in degrees):
        raise ValueError("degrees must be non-negative")
    if sum(degrees) % 2 != 0:
        raise ValueError(
            f"degree sum must be even, got {sum(degrees)} "
            "(pad the sequence by one stub to fix)"
        )
    rng = random.Random(f"configuration_model:{seed}")
    stubs: List[int] = []
    for vertex, degree in enumerate(degrees):
        stubs.extend([vertex] * degree)
    rng.shuffle(stubs)
    graph = Graph(vertices=range(len(degrees)))
    for index in range(0, len(stubs), 2):
        u, v = stubs[index], stubs[index + 1]
        if u != v:
            graph.add_edge(u, v, exist_ok=True)
    return graph


def forest_fire(
    n: int,
    p_forward: float = 0.37,
    *,
    seed: int = 0,
    ambassadors: int = 1,
) -> Graph:
    """Leskovec et al.'s forest-fire growth model (undirected variant).

    Each new vertex picks ``ambassadors`` random existing vertices, links
    to them, and "burns" outward: from each burned vertex it links to a
    geometrically-distributed number of that vertex's neighbors (mean
    ``p_forward / (1 - p_forward)``), recursively.  Produces the
    densifying, shrinking-diameter graphs the paper's related work ([13])
    describes — the natural growth process for exercising the dynamic
    maintenance algorithms.
    """
    if not 0.0 <= p_forward < 1.0:
        raise ValueError(f"p_forward must be in [0, 1), got {p_forward}")
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    rng = random.Random(seed)
    graph = Graph(vertices=[0])
    for new_vertex in range(1, n):
        graph.add_vertex(new_vertex)
        existing = new_vertex  # vertices 0..new_vertex-1 exist
        targets = {
            rng.randrange(existing)
            for _ in range(min(ambassadors, existing))
        }
        burned: set[int] = set()
        frontier = list(targets)
        while frontier:
            vertex = frontier.pop()
            if vertex in burned:
                continue
            burned.add(vertex)
            graph.add_edge(new_vertex, vertex, exist_ok=True)
            # Geometric number of forward links from this vertex.
            links = 0
            while rng.random() < p_forward:
                links += 1
            neighbors = [
                w
                for w in graph.neighbors(vertex)
                if w != new_vertex and w not in burned
            ]
            rng.shuffle(neighbors)
            frontier.extend(neighbors[:links])
    return graph


def growth_snapshots(
    n: int,
    snapshot_count: int,
    *,
    p_forward: float = 0.37,
    seed: int = 0,
) -> List[Graph]:
    """Snapshots of a forest-fire graph growing to ``n`` vertices.

    Returns ``snapshot_count`` cumulative snapshots taken at evenly spaced
    vertex counts — ready to wrap in a
    :class:`~repro.graph.snapshots.SnapshotStream` for dynamic workloads.
    """
    if snapshot_count < 1:
        raise ValueError("need at least one snapshot")
    full = forest_fire(n, p_forward, seed=seed)
    order = sorted(full.vertices())
    cuts = [
        max(1, round(n * (i + 1) / snapshot_count)) for i in range(snapshot_count)
    ]
    return [full.subgraph(order[:cut]) for cut in cuts]


def random_edge_sample(
    graph: Graph, fraction: float, *, seed: int = 0
) -> List[Tuple[Vertex, Vertex]]:
    """Sample ``fraction`` of the graph's edges uniformly without replacement.

    Used by the Table III benchmark ("randomly add/delete 1% of edges").
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    edges = sorted(graph.edges(), key=repr)
    count = int(round(fraction * len(edges)))
    rng.shuffle(edges)
    return edges[:count]


def random_non_edges(
    graph: Graph, count: int, *, seed: int = 0, triangle_closing: bool = False
) -> List[Tuple[Vertex, Vertex]]:
    """Sample ``count`` vertex pairs that are currently not edges.

    With ``triangle_closing`` set, pairs are sampled among endpoints of open
    wedges, so each insertion is guaranteed to create at least one triangle —
    the interesting case for the dynamic maintenance benchmark.
    """
    rng = random.Random(seed)
    vertices = sorted(graph.vertices(), key=repr)
    if len(vertices) < 2:
        return []
    result: List[Tuple[Vertex, Vertex]] = []
    chosen: set = set()
    attempts = 0
    max_attempts = max(1000, count * 200)
    while len(result) < count and attempts < max_attempts:
        attempts += 1
        if triangle_closing:
            center = rng.choice(vertices)
            neighbors = sorted(graph.neighbors(center), key=repr)
            if len(neighbors) < 2:
                continue
            u, w = rng.sample(neighbors, 2)
        else:
            u, w = rng.sample(vertices, 2)
        if u == w or graph.has_edge(u, w):
            continue
        from .edge import canonical_edge

        key = canonical_edge(u, w)
        if key in chosen:
            continue
        chosen.add(key)
        result.append(key)
    return result
