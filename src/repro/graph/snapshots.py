"""Dynamic graph snapshot streams.

A :class:`SnapshotStream` is an ordered sequence of graph snapshots together
with the edge deltas between consecutive snapshots.  It is the input shape
used by the Dual View Plot workflow (paper Algorithm 3, Fig 8) and by the
template-pattern detectors on evolving graphs (Figs 9-11): each step exposes
*original* vs *new* edges, which is exactly the black/red distinction of the
paper's Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from .edge import Edge, Vertex
from .io import graph_diff
from .undirected import Graph


@dataclass(frozen=True)
class SnapshotDelta:
    """Edge/vertex changes between two consecutive snapshots."""

    added_edges: Tuple[Edge, ...]
    removed_edges: Tuple[Edge, ...]
    new_vertices: Tuple[Vertex, ...]

    @property
    def is_empty(self) -> bool:
        return not (self.added_edges or self.removed_edges or self.new_vertices)


class SnapshotStream:
    """An immutable ordered sequence of graph snapshots.

    Examples
    --------
    >>> g0 = Graph(edges=[(1, 2)])
    >>> g1 = Graph(edges=[(1, 2), (2, 3), (1, 3)])
    >>> stream = SnapshotStream([g0, g1])
    >>> stream.delta(1).added_edges
    ((1, 3), (2, 3))
    """

    def __init__(self, snapshots: Sequence[Graph]) -> None:
        if not snapshots:
            raise ValueError("a SnapshotStream needs at least one snapshot")
        self._snapshots: List[Graph] = [g.copy() for g in snapshots]

    def __len__(self) -> int:
        return len(self._snapshots)

    def __getitem__(self, index: int) -> Graph:
        return self._snapshots[index]

    def __iter__(self) -> Iterator[Graph]:
        return iter(self._snapshots)

    def delta(self, index: int) -> SnapshotDelta:
        """Changes from snapshot ``index - 1`` to snapshot ``index``.

        ``delta(0)`` treats the empty graph as the predecessor, so every edge
        and vertex of the first snapshot counts as new.
        """
        if not 0 <= index < len(self._snapshots):
            raise IndexError(f"snapshot index {index} out of range")
        new = self._snapshots[index]
        old = self._snapshots[index - 1] if index > 0 else Graph()
        added, removed = graph_diff(old, new)
        new_vertices = tuple(
            sorted((v for v in new.vertices() if not old.has_vertex(v)), key=repr)
        )
        return SnapshotDelta(
            added_edges=tuple(added),
            removed_edges=tuple(removed),
            new_vertices=new_vertices,
        )

    def pairs(self) -> Iterator[Tuple[Graph, Graph, SnapshotDelta]]:
        """Iterate over ``(old, new, delta)`` for consecutive snapshots."""
        for index in range(1, len(self._snapshots)):
            yield self._snapshots[index - 1], self._snapshots[index], self.delta(index)


def union_graph(old: Graph, new: Graph) -> Graph:
    """Union of two snapshots — the arena in which template patterns live.

    The template detectors (Figs 9-11) classify edges of ``old ∪ new`` as
    *original* (present in ``old``) or *new* (only in ``new``); patterns such
    as Bridge Cliques need both classes present simultaneously.
    """
    merged = Graph()
    for vertex in old.vertices():
        merged.add_vertex(vertex)
    for vertex in new.vertices():
        merged.add_vertex(vertex)
    for u, v in old.edges():
        merged.add_edge(u, v, exist_ok=True)
    for u, v in new.edges():
        merged.add_edge(u, v, exist_ok=True)
    return merged


def classify_edges(old: Graph, new: Graph) -> dict[Edge, str]:
    """Label every edge of ``old ∪ new`` as ``"original"`` or ``"new"``.

    An edge present in ``old`` is original (whether or not it survived into
    ``new``); an edge only in ``new`` is new.  This mirrors the paper's
    black/red colouring in Figure 4.
    """
    labels: dict[Edge, str] = {}
    for edge in old.edges():
        labels[edge] = "original"
    for edge in new.edges():
        labels.setdefault(edge, "new")
    return labels


def classify_vertices(old: Graph, new: Graph) -> dict[Vertex, str]:
    """Label every vertex of ``old ∪ new`` as ``"original"`` or ``"new"``."""
    labels: dict[Vertex, str] = {}
    for vertex in old.vertices():
        labels[vertex] = "original"
    for vertex in new.vertices():
        labels.setdefault(vertex, "new")
    return labels


def apply_delta(graph: Graph, delta: SnapshotDelta) -> Graph:
    """Return a copy of ``graph`` with ``delta`` applied (for replay tests)."""
    result = graph.copy()
    for vertex in delta.new_vertices:
        result.add_vertex(vertex)
    for u, v in delta.removed_edges:
        result.remove_edge(u, v, missing_ok=True)
    for u, v in delta.added_edges:
        result.add_edge(u, v, exist_ok=True)
    return result
