"""Graph substrate: dynamic undirected graphs, triangles, generators, I/O.

Public surface::

    from repro.graph import Graph, canonical_edge, enumerate_triangles

Everything the Triangle K-Core algorithms need from a graph lives here; no
external graph library is required (networkx conversion is optional, see
:mod:`repro.graph.convert`).
"""

from .edge import (
    Edge,
    Triangle,
    Vertex,
    apex,
    canonical_edge,
    canonical_triangle,
    other_edges,
    triangle_edges,
)
from .generators import (
    PlantedClique,
    PlantedGraph,
    barabasi_albert,
    configuration_model,
    erdos_renyi,
    forest_fire,
    growth_snapshots,
    kronecker,
    planted_cliques,
    powerlaw_cluster,
    random_edge_sample,
    random_non_edges,
    relaxed_caveman,
    rmat,
    watts_strogatz,
)
from .io import (
    graph_diff,
    read_adjacency_csv,
    read_diff,
    read_edge_list,
    read_snapshots,
    write_diff,
    write_edge_list,
    write_snapshots,
)
from .snapshots import (
    SnapshotDelta,
    SnapshotStream,
    apply_delta,
    classify_edges,
    classify_vertices,
    union_graph,
)
from .triangles import (
    count_triangles,
    edge_triangle_index,
    enumerate_triangles,
    global_clustering_coefficient,
    local_clustering,
    new_triangles_for_edge,
    triangle_degree,
    triangle_supports,
    triangles_of_edge,
)
from .triangle_store import TriangleStore
from .undirected import Graph, complete_graph

__all__ = [
    "Edge",
    "Graph",
    "PlantedClique",
    "PlantedGraph",
    "SnapshotDelta",
    "SnapshotStream",
    "Triangle",
    "TriangleStore",
    "Vertex",
    "apex",
    "apply_delta",
    "barabasi_albert",
    "canonical_edge",
    "canonical_triangle",
    "classify_edges",
    "classify_vertices",
    "complete_graph",
    "configuration_model",
    "count_triangles",
    "edge_triangle_index",
    "enumerate_triangles",
    "erdos_renyi",
    "forest_fire",
    "global_clustering_coefficient",
    "graph_diff",
    "growth_snapshots",
    "kronecker",
    "local_clustering",
    "new_triangles_for_edge",
    "other_edges",
    "planted_cliques",
    "powerlaw_cluster",
    "random_edge_sample",
    "random_non_edges",
    "read_adjacency_csv",
    "read_diff",
    "read_edge_list",
    "read_snapshots",
    "relaxed_caveman",
    "rmat",
    "triangle_degree",
    "triangle_edges",
    "triangle_supports",
    "triangles_of_edge",
    "union_graph",
    "watts_strogatz",
    "write_diff",
    "write_edge_list",
    "write_snapshots",
]
