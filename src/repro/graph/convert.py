"""Conversion between :class:`repro.graph.Graph` and networkx.

networkx is an *optional* dependency used for cross-checking (its
``k_truss`` is an independent implementation of the same decomposition the
paper computes) and for users who want to hand results to the wider Python
graph ecosystem.  The import is deferred so the core library works without
networkx installed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .undirected import Graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx


def to_networkx(graph: Graph) -> "networkx.Graph":
    """Convert to a ``networkx.Graph`` (vertices and edges only)."""
    import networkx as nx

    result = nx.Graph()
    result.add_nodes_from(graph.vertices())
    result.add_edges_from(graph.edges())
    return result


def from_networkx(nx_graph: "networkx.Graph") -> Graph:
    """Convert from a ``networkx.Graph``; parallel edges/self-loops dropped."""
    graph = Graph(vertices=nx_graph.nodes())
    for u, v in nx_graph.edges():
        if u != v:
            graph.add_edge(u, v, exist_ok=True)
    return graph
