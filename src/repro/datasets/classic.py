"""Classic real-world graphs (via networkx's bundled datasets).

The Table I stand-ins are synthetic; these three tiny *real* graphs
anchor the library against data no generator produced:

* ``karate`` — Zachary's karate club (34 vertices / 78 edges);
* ``lesmis`` — Les Misérables character co-occurrence (77 / 254);
* ``davis`` — Davis Southern Women events bipartite projection-free
  bipartite graph (32 / 89; triangle-free, a useful degenerate case).

networkx is an optional dependency of the datasets package only; the
loaders raise :class:`~repro.exceptions.DatasetError` with a clear message
when it is unavailable.
"""

from __future__ import annotations

from ..exceptions import DatasetError
from .base import Dataset, register


def _require_networkx():
    try:
        import networkx
    except ImportError as error:  # pragma: no cover - env dependent
        raise DatasetError(
            "the classic datasets need networkx (pip install networkx)"
        ) from error
    return networkx


@register("karate")
def load_karate() -> Dataset:
    """Zachary's karate club, with the eventual faction as vertex groups."""
    nx = _require_networkx()
    from ..graph.convert import from_networkx

    nx_graph = nx.karate_club_graph()
    graph = from_networkx(nx_graph)
    groups = {
        node: data.get("club", "unknown")
        for node, data in nx_graph.nodes(data=True)
    }
    return Dataset(
        name="karate",
        graph=graph,
        description=(
            "Zachary's karate club (real data; the classic community "
            "benchmark)"
        ),
        paper_vertices=34,
        paper_edges=78,
        vertex_groups=groups,
    )


@register("lesmis")
def load_lesmis() -> Dataset:
    """Les Misérables character co-occurrence network (Knuth)."""
    nx = _require_networkx()
    from ..graph.convert import from_networkx

    graph = from_networkx(nx.les_miserables_graph())
    return Dataset(
        name="lesmis",
        graph=graph,
        description="Les Miserables co-occurrence network (real data)",
        paper_vertices=77,
        paper_edges=254,
    )


@register("davis")
def load_davis() -> Dataset:
    """Davis Southern Women bipartite graph — triangle-free by construction.

    A real-world degenerate case: every edge has kappa 0, every density
    plot is flat, and the dynamic algorithms exercise their no-triangle
    paths.
    """
    nx = _require_networkx()
    from ..graph.convert import from_networkx

    nx_graph = nx.davis_southern_women_graph()
    graph = from_networkx(nx_graph)
    groups = {}
    for node, data in nx_graph.nodes(data=True):
        groups[node] = str(data.get("bipartite", "unknown"))
    return Dataset(
        name="davis",
        graph=graph,
        description=(
            "Davis Southern Women bipartite attendance graph (real data; "
            "triangle-free)"
        ),
        paper_vertices=32,
        paper_edges=89,
        vertex_groups=groups,
    )
