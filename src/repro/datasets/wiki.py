"""Wiki-style snapshot pair for the Dual View case study (paper Fig 8).

Two consecutive snapshots of an article-reference graph, with the three
evolution events the paper highlights planted on top of a scale-free
background:

* **green triangle** — a 10-article clique and a 5-article clique (the
  latter containing "Astrology"); in the second snapshot new links from
  "Astrology" merge it into an 11-vertex clique ("a new Wiki page and the
  corresponding Wiki links were established thereby forming a larger
  clique").
* **red rectangle** — two 7-article cliques on one topic merge into a
  single 10-article clique (vertices drawn from both originals).
* **orange ellipse** — two 6-article cliques merge into a 9-article clique.

Both merge events "indicate an expanding trend on specific topics".
"""

from __future__ import annotations

import random
from typing import List

from ..graph.edge import Vertex
from ..graph.generators import barabasi_albert
from ..graph.undirected import Graph
from .base import Dataset, register

ASTRONOMY_CLIQUE = [
    "Astronomy", "Telescope", "Galaxy", "Nebula", "Supernova", "Quasar",
    "Pulsar", "Black hole", "Cosmology", "Redshift",
]
ASTROLOGY_CLIQUE = ["Astrology", "Zodiac", "Horoscope", "Tarot", "Divination"]

TOPIC_A_CLIQUE1 = [
    "Machine learning", "Neural network", "Perceptron", "Backpropagation",
    "Gradient descent", "Overfitting", "Regularization",
]
TOPIC_A_CLIQUE2 = [
    "Statistics", "Regression", "Bayes theorem", "Likelihood",
    "Hypothesis test", "Variance", "Estimator",
]
TOPIC_A_MERGED = TOPIC_A_CLIQUE1[:5] + TOPIC_A_CLIQUE2[:5]

TOPIC_B_CLIQUE1 = [
    "Graph theory", "Planar graph", "Euler path", "Hamiltonian path",
    "Graph coloring", "Matching",
]
TOPIC_B_CLIQUE2 = [
    "Topology", "Manifold", "Homeomorphism", "Compactness", "Continuity",
    "Metric space",
]
TOPIC_B_MERGED = TOPIC_B_CLIQUE1[:5] + TOPIC_B_CLIQUE2[:4]


def _add_clique(graph: Graph, members: List[Vertex]) -> None:
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            graph.add_edge(u, v, exist_ok=True)


@register("wiki_snapshots")
def load_wiki_snapshots(
    *,
    background_vertices: int = 3000,
    background_m: int = 3,
    seed: int = 47,
) -> Dataset:
    """Two wiki snapshots with the Fig 8 evolution events planted."""
    rng = random.Random(seed)
    background = barabasi_albert(background_vertices, background_m, seed=seed)
    name = {v: f"Article {v:05d}" for v in background.vertices()}

    def fresh_background() -> Graph:
        graph = Graph()
        for u, v in background.edges():
            graph.add_edge(name[u], name[v], exist_ok=True)
        return graph

    # ---------------- snapshot 1 ---------------- #
    snapshot1 = fresh_background()
    _add_clique(snapshot1, ASTRONOMY_CLIQUE)
    _add_clique(snapshot1, ASTROLOGY_CLIQUE)
    _add_clique(snapshot1, TOPIC_A_CLIQUE1)
    _add_clique(snapshot1, TOPIC_A_CLIQUE2)
    _add_clique(snapshot1, TOPIC_B_CLIQUE1)
    _add_clique(snapshot1, TOPIC_B_CLIQUE2)
    planted = (
        ASTRONOMY_CLIQUE
        + ASTROLOGY_CLIQUE
        + TOPIC_A_CLIQUE1
        + TOPIC_A_CLIQUE2
        + TOPIC_B_CLIQUE1
        + TOPIC_B_CLIQUE2
    )
    background_names = sorted(name.values())
    for article in planted:
        snapshot1.add_edge(article, rng.choice(background_names), exist_ok=True)

    # ---------------- snapshot 2 ---------------- #
    snapshot2 = snapshot1.copy()
    # Green triangle: Astrology links into the astronomy clique -> 11-clique.
    for article in ASTRONOMY_CLIQUE:
        snapshot2.add_edge("Astrology", article, exist_ok=True)
    # Red rectangle: topic-A cliques merge into a 10-clique.
    _add_clique(snapshot2, TOPIC_A_MERGED)
    # Orange ellipse: topic-B cliques merge into a 9-clique.
    _add_clique(snapshot2, TOPIC_B_MERGED)
    # Background churn: some fresh references appear between snapshots.
    for _ in range(background_vertices // 20):
        u = rng.choice(background_names)
        v = rng.choice(background_names)
        if u != v:
            snapshot2.add_edge(u, v, exist_ok=True)

    return Dataset(
        name="wiki_snapshots",
        graph=snapshot2,
        description=(
            "two wiki-reference snapshots with a clique-growth event and "
            "two clique-merge events (paper Fig 8; Table I: Wiki, 176265 "
            "vertices / 1010204 edges, scaled down)"
        ),
        paper_vertices=176265,
        paper_edges=1010204,
        snapshots=[snapshot1, snapshot2],
        snapshot_labels=["t", "t+1"],
    )
