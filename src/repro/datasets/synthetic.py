"""Small datasets: the paper's "Synthetic" and "Stocks" stand-ins.

* ``synthetic`` — 60 vertices / ~308 edges with planted cliques of several
  sizes in a noisy background; the same regime as the paper's warm-up
  dataset (their Figure 6 first panel shows a handful of crisp plateaus).
* ``stocks`` — 275 vertices / ~1680 edges built the way stock-correlation
  graphs are built in practice: simulate sector-correlated daily returns,
  compute the Pearson correlation matrix, keep edges above a threshold
  chosen to land near the paper's edge count.  Sectors become clique-like
  blocks, mirroring the known structure of the S&P correlation graph.
"""

from __future__ import annotations

import random

from ..graph.generators import planted_cliques
from ..graph.undirected import Graph
from .base import Dataset, register


@register("synthetic")
def load_synthetic(*, seed: int = 7) -> Dataset:
    """60-vertex graph with planted 10/8/7/6-cliques over sparse noise."""
    planted = planted_cliques(
        60,
        [10, 8, 7, 6],
        background_p=0.12,
        seed=seed,
    )
    return Dataset(
        name="synthetic",
        graph=planted.graph,
        description=(
            "planted 10/8/7/6-vertex cliques in a sparse Erdos-Renyi "
            "background (paper Table I: Synthetic, 60 vertices / 308 edges)"
        ),
        paper_vertices=60,
        paper_edges=308,
    )


def _simulate_returns(
    num_stocks: int, num_days: int, num_sectors: int, rng: random.Random
) -> list[list[float]]:
    """Sector-factor model: r_i(t) = beta * sector(t) + noise."""
    sector_of = [i % num_sectors for i in range(num_stocks)]
    returns: list[list[float]] = []
    sector_series = [
        [rng.gauss(0.0, 1.0) for _ in range(num_days)] for _ in range(num_sectors)
    ]
    market = [rng.gauss(0.0, 1.0) for _ in range(num_days)]
    for i in range(num_stocks):
        beta_sector = 0.8 + 0.3 * rng.random()
        beta_market = 0.3 + 0.2 * rng.random()
        series = [
            beta_sector * sector_series[sector_of[i]][t]
            + beta_market * market[t]
            + rng.gauss(0.0, 0.9)
            for t in range(num_days)
        ]
        returns.append(series)
    return returns


def _pearson(a: list[float], b: list[float]) -> float:
    n = len(a)
    mean_a = sum(a) / n
    mean_b = sum(b) / n
    cov = sum((x - mean_a) * (y - mean_b) for x, y in zip(a, b))
    var_a = sum((x - mean_a) ** 2 for x in a)
    var_b = sum((y - mean_b) ** 2 for y in b)
    if var_a == 0 or var_b == 0:
        return 0.0
    return cov / (var_a * var_b) ** 0.5


@register("stocks")
def load_stocks(
    *,
    num_stocks: int = 275,
    num_days: int = 120,
    num_sectors: int = 18,
    target_edges: int = 1680,
    seed: int = 11,
) -> Dataset:
    """Correlation-threshold graph over simulated sector-driven returns.

    The threshold is picked so the edge count lands at ``target_edges``
    (matching Table I's 1680), which naturally yields clique-like sectors.
    """
    rng = random.Random(seed)
    returns = _simulate_returns(num_stocks, num_days, num_sectors, rng)
    scored = []
    for i in range(num_stocks):
        for j in range(i + 1, num_stocks):
            scored.append((_pearson(returns[i], returns[j]), i, j))
    scored.sort(reverse=True)
    graph = Graph(vertices=(f"STK{i:03d}" for i in range(num_stocks)))
    for correlation, i, j in scored[:target_edges]:
        graph.add_edge(f"STK{i:03d}", f"STK{j:03d}")
    return Dataset(
        name="stocks",
        graph=graph,
        description=(
            "correlation-threshold graph over simulated sector-correlated "
            "returns (paper Table I: Stocks, 275 vertices / 1680 edges)"
        ),
        paper_vertices=275,
        paper_edges=1680,
    )
