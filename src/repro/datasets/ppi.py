"""Protein-protein interaction stand-in with labelled complexes.

Reproduces the structure both PPI case studies rely on:

* **Fig 7** — three approximate cliques findable from the density plot:
  clique 1 = a dense 9-vertex module (the DN-Graph of Wang et al.),
  clique 2 = an exact 10-vertex clique, and clique 3 = 10 vertices with one
  missing edge (it therefore plots at height 9; the paper notes the missing
  APC4-CDC16 edge).
* **Fig 12** — complexes as vertex groups with bridge proteins: PRE1 (of
  the 20S proteasome) densely wired into the 19/22S regulator complex, and
  GLC7 / RNA14 each wired into the mRNA cleavage and polyadenylation
  specificity factor (CPF) complex, creating two overlapping inter-complex
  bridge cliques.

The remaining ~4.7k proteins form a scale-free, highly clustered
background (Holme-Kim triad formation, matching the yeast interactome's
clustering) so the plot has the paper's long low-density tail and CSV's
per-edge neighborhood work is non-trivial.  Real protein names are used for the
planted actors so the case-study output reads like the paper's.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..graph.edge import Vertex
from ..graph.generators import powerlaw_cluster
from ..graph.undirected import Graph
from .base import Dataset, register

#: Fig 7 clique 1 — the module the paper says matches the DN-Graph in [3].
CLIQUE1_PROTEINS = [
    "LSM2", "LSM3", "LSM4", "LSM5", "LSM6", "LSM7", "LSM8", "PAT1", "DCP1",
]

#: Fig 7 clique 2 — exact 10-vertex clique.
CLIQUE2_PROTEINS = [
    "RPT1", "RPT2", "RPT3", "RPT4", "RPT5", "RPT6", "RPN1", "RPN2", "RPN3",
    "RPN10",
]

#: Fig 7 clique 3 — 10 vertices, the APC4-CDC16 edge missing.
CLIQUE3_PROTEINS = [
    "APC1", "APC2", "APC4", "APC5", "APC9", "APC11", "CDC16", "CDC23",
    "CDC26", "CDC27",
]
CLIQUE3_MISSING_EDGE = ("APC4", "CDC16")

#: Fig 12 complexes (paper §VII-F).
COMPLEX_20S = ["PRE1", "PRE2", "PRE3", "PRE4", "PRE5", "PRE6", "PUP1", "PUP2"]
COMPLEX_REGULATOR = [
    "RPN11", "RPN12", "RPN9", "RPT1b", "RPN5", "RPN6", "RPT3b", "RPN8",
]
COMPLEX_CPF = [
    "PAP1", "CFT2", "CFT1", "PTA1", "MPE1", "YSH1", "YTH1", "REF2", "FIP1",
]
COMPLEX_GAC = ["GLC7", "GAC1"]
COMPLEX_CF = ["RNA14", "RNA15", "PCF11", "CLP1", "HRP1"]

#: Bridge proteins and the complex members they reach (paper's findings).
BRIDGE_WIRING = {
    "PRE1": ["RPN11", "RPN12", "RPN9", "RPT1b", "RPN5", "RPN6", "RPT3b", "RPN8"],
    "GLC7": ["PAP1", "CFT2", "CFT1", "PTA1", "MPE1", "YSH1", "YTH1", "REF2"],
    "RNA14": ["PAP1", "CFT2", "CFT1", "PTA1", "MPE1", "YSH1", "YTH1", "FIP1"],
}


def _add_clique(graph: Graph, members: List[Vertex]) -> None:
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            graph.add_edge(u, v, exist_ok=True)


@register("ppi")
def load_ppi(
    *,
    background_vertices: int = 4600,
    background_m: int = 3,
    seed: int = 23,
) -> Dataset:
    """Build the PPI stand-in (~4.7k vertices / ~15k edges, like Table I)."""
    rng = random.Random(seed)

    graph = Graph()
    groups: Dict[Vertex, str] = {}

    # Fig 7 planted cliques.
    _add_clique(graph, CLIQUE1_PROTEINS)
    _add_clique(graph, CLIQUE2_PROTEINS)
    _add_clique(graph, CLIQUE3_PROTEINS)
    graph.remove_edge(*CLIQUE3_MISSING_EDGE)
    for protein in CLIQUE1_PROTEINS:
        groups[protein] = "Lsm complex"
    for protein in CLIQUE2_PROTEINS:
        groups[protein] = "26S proteasome base"
    for protein in CLIQUE3_PROTEINS:
        groups[protein] = "anaphase promoting complex"

    # Fig 12 complexes: each complex is a dense module.
    for label, members in (
        ("20S proteasome", COMPLEX_20S),
        ("19/22S regulator", COMPLEX_REGULATOR),
        ("mRNA cleavage and polyadenylation specificity factor", COMPLEX_CPF),
        ("Gac1p/Glc7p", COMPLEX_GAC),
        ("mRNA cleavage factor", COMPLEX_CF),
    ):
        _add_clique(graph, members)
        for protein in members:
            groups[protein] = label

    # Inter-complex bridge wiring (the red edges of Fig 12(b)).
    for bridge_protein, targets in BRIDGE_WIRING.items():
        for target in targets:
            graph.add_edge(bridge_protein, target, exist_ok=True)

    # Scale-free background interactome; modules of moderate density.
    background = powerlaw_cluster(
        background_vertices, background_m, 0.7, seed=seed
    )
    name = {v: f"YPR{v:04d}" for v in background.vertices()}
    for u, v in background.edges():
        graph.add_edge(name[u], name[v], exist_ok=True)
    for v in background.vertices():
        groups.setdefault(name[v], f"module-{v % 97:02d}")

    # Sparse random wiring between the planted actors and the background so
    # everything is one interactome (degree-1 attachments: they cannot
    # create triangles that would distort the planted densities).
    planted = sorted(set(groups) - {name[v] for v in background.vertices()}, key=repr)
    background_names = sorted((name[v] for v in background.vertices()), key=repr)
    for protein in planted:
        partner = rng.choice(background_names)
        graph.add_edge(protein, partner, exist_ok=True)

    return Dataset(
        name="ppi",
        graph=graph,
        description=(
            "yeast-interactome stand-in: labelled complexes, planted Fig 7 "
            "cliques and Fig 12 bridge proteins over a scale-free background "
            "(paper Table I: PPI, 4741 vertices / 15147 edges)"
        ),
        paper_vertices=4741,
        paper_edges=15147,
        vertex_groups=groups,
    )
