"""DBLP-style evolving collaboration graph (yearly snapshots).

Collaboration graphs are unions of small cliques: each paper connects all
of its authors.  The stand-in generates five yearly snapshots (2000-2004)
of such cliques over a persistent author population, then plants the three
events the paper's case studies drill into:

* **Fig 9 (New Form)** — six authors (Studer, Aberer, Illarramendi,
  Kashyap, Staab, De Santis) who never collaborated before co-author one
  paper in 2004, creating a 6-vertex clique made purely of new edges.
* **Fig 10 (Bridge)** — in 2003 two independent groups exist (Srivastava /
  Cormode / Muthukrishnan / Korn on data streams; Johnson / Spatscheck on
  networking); in 2004 all six co-author "Holistic UDAFs at Streaming
  Speeds", bridging the groups into a 6-clique.
* **Fig 11 (New Join)** — Wang / Maier / Shapiro co-author in 2000; in 2001
  six authors absent from the 2000 snapshot join them on one paper, forming
  a 9-vertex clique around the original 3-clique.

Snapshot semantics follow the paper: the year-Y graph contains the edges of
collaborations active in year Y (plus a persistence fraction from earlier
years, as real DBLP aggregation does).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..graph.edge import Vertex
from ..graph.undirected import Graph
from .base import Dataset, register

YEARS = ["2000", "2001", "2002", "2003", "2004"]

NEW_FORM_AUTHORS = [
    "Rudi Studer", "Karl Aberer", "Arantza Illarramendi", "Vipul Kashyap",
    "Steffen Staab", "Luca De Santis",
]
BRIDGE_GROUP_STREAMS = [
    "Divesh Srivastava", "Graham Cormode", "S. Muthukrishnan", "Flip Korn",
]
BRIDGE_GROUP_NETWORK = ["Theodore Johnson", "Oliver Spatscheck"]
NEW_JOIN_SEED_AUTHORS = ["Quan Wang", "David Maier", "Leonard D. Shapiro"]
NEW_JOIN_JOINERS = [
    "Paul Benninghoff", "Keith Billings", "Yubo Fan", "Kavita Hatwal",
    "Yu Zhang", "Hsiao-min Wu",
]


def _clique_edges(members: Sequence[Vertex]) -> List[tuple]:
    return [
        (u, v) for i, u in enumerate(members) for v in members[i + 1 :]
    ]


def _collaboration_pool(
    rng: random.Random, authors: List[str], pool_size: int, num_years: int
) -> List[tuple]:
    """Persistent collaboration groups: ``(members, first_year, last_year)``.

    Real collaboration graphs evolve by groups persisting over several
    years; resampling fresh groups annually would flood the snapshots with
    accidental New Form / Bridge events and drown the planted case-study
    structures.  Members cluster in index windows so repeat collaborations
    share authors.
    """
    pool: List[tuple] = []
    for _ in range(pool_size):
        size = rng.choice((2, 2, 3, 3, 3, 4, 4, 5))
        anchor = rng.randrange(len(authors))
        window = [
            authors[(anchor + offset) % len(authors)]
            for offset in range(-8, 9)
        ]
        members = rng.sample(window, size)
        first = rng.randrange(num_years)
        duration = 1
        while duration < num_years and rng.random() < 0.55:
            duration += 1
        pool.append((members, first, min(first + duration - 1, num_years - 1)))
    return pool


@register("dblp")
def load_dblp(
    *,
    num_authors: int = 6200,
    pool_size: int = 7600,
    seed: int = 31,
) -> Dataset:
    """Five yearly snapshots (~6.4k authors, ~12k edges per snapshot)."""
    rng = random.Random(seed)
    background_authors = [f"Author {i:04d}" for i in range(num_authors)]
    pool = _collaboration_pool(rng, background_authors, pool_size, len(YEARS))

    snapshots: List[Graph] = []
    for year_index, year in enumerate(YEARS):
        graph = Graph()
        # Background collaborations active this year.
        for members, first, last in pool:
            if first <= year_index <= last:
                for u, v in _clique_edges(members):
                    graph.add_edge(u, v, exist_ok=True)

        # --- Planted events -------------------------------------------- #
        if year == "2000":
            for u, v in _clique_edges(NEW_JOIN_SEED_AUTHORS):
                graph.add_edge(u, v, exist_ok=True)
        if year == "2001":
            # New Join: original trio + six first-time joiners, one paper.
            for u, v in _clique_edges(NEW_JOIN_SEED_AUTHORS + NEW_JOIN_JOINERS):
                graph.add_edge(u, v, exist_ok=True)
        if year == "2003":
            for u, v in _clique_edges(BRIDGE_GROUP_STREAMS):
                graph.add_edge(u, v, exist_ok=True)
            for u, v in _clique_edges(BRIDGE_GROUP_NETWORK):
                graph.add_edge(u, v, exist_ok=True)
            # The New Form authors exist but have separate collaborations.
            for author in NEW_FORM_AUTHORS:
                partner = background_authors[
                    rng.randrange(len(background_authors))
                ]
                graph.add_edge(author, partner, exist_ok=True)
        if year == "2004":
            # Bridge: the six authors write one paper together.
            for u, v in _clique_edges(BRIDGE_GROUP_STREAMS + BRIDGE_GROUP_NETWORK):
                graph.add_edge(u, v, exist_ok=True)
            # New Form: first-ever collaboration of the six.
            for u, v in _clique_edges(NEW_FORM_AUTHORS):
                graph.add_edge(u, v, exist_ok=True)
        snapshots.append(graph)

    return Dataset(
        name="dblp",
        graph=snapshots[-1],
        description=(
            "yearly collaboration snapshots with planted New Form / Bridge "
            "/ New Join events (paper Table I: DBLP, 6445 vertices / 11848 "
            "edges)"
        ),
        paper_vertices=6445,
        paper_edges=11848,
        snapshots=snapshots,
        snapshot_labels=list(YEARS),
    )


def snapshot_pair(dataset: Dataset, old_label: str, new_label: str) -> tuple:
    """Pick two labelled snapshots from an evolving dataset."""
    index = {label: i for i, label in enumerate(dataset.snapshot_labels)}
    return dataset.snapshots[index[old_label]], dataset.snapshots[index[new_label]]
