"""Scaled stand-ins for the paper's large social/web graphs.

Astro-Author, Epinions, Amazon, Wiki (static), Flickr and LiveJournal are
all heavy-tailed graphs with community structure; the algorithms under test
only see topology, so deterministic generators with matched *shape* (and
laptop-scale size) preserve every relative comparison the paper makes.  The
``scale`` keyword grows or shrinks each graph; defaults keep the whole
Table II sweep under a minute.

Paper sizes are recorded so benchmark tables can print "paper size" next to
"our size".
"""

from __future__ import annotations

from ..graph.generators import barabasi_albert, relaxed_caveman, rmat
from ..graph.undirected import Graph
from .base import Dataset, register


def _merge(*graphs: Graph) -> Graph:
    merged = Graph()
    offset = 0
    for graph in graphs:
        mapping = {v: v + offset for v in graph.vertices()}
        for v in graph.vertices():
            merged.add_vertex(mapping[v])
        for u, v in graph.edges():
            merged.add_edge(mapping[u], mapping[v], exist_ok=True)
        offset += max(graph.vertices(), default=-1) + 1
    return merged


@register("astro")
def load_astro(*, scale: float = 1.0, seed: int = 53) -> Dataset:
    """Co-authorship shape: dense collaboration caves + scale-free hubs."""
    caves = relaxed_caveman(
        max(2, int(60 * scale)), 12, 0.18, seed=seed
    )
    hubs = barabasi_albert(max(5, int(1200 * scale)), 4, seed=seed + 1)
    graph = _merge(caves, hubs)
    return Dataset(
        name="astro",
        graph=graph,
        description=(
            "co-authorship stand-in: clique-rich collaboration communities "
            "plus hub authors (paper Table I: Astro-Author, 17903 vertices "
            "/ 190972 edges, scaled down)"
        ),
        paper_vertices=17903,
        paper_edges=190972,
    )


@register("epinions")
def load_epinions(*, scale: float = 1.0, seed: int = 59) -> Dataset:
    """Trust-network shape: scale-free, moderate clustering."""
    graph = barabasi_albert(max(10, int(4000 * scale)), 5, seed=seed)
    return Dataset(
        name="epinions",
        graph=graph,
        description=(
            "trust-network stand-in: preferential attachment (paper "
            "Table I: Epinions, 75879 vertices / 405741 edges, scaled down)"
        ),
        paper_vertices=75879,
        paper_edges=405741,
    )


@register("amazon")
def load_amazon(*, scale: float = 1.0, seed: int = 61) -> Dataset:
    """Co-purchase shape: R-MAT self-similar communities.

    The skew parameters are softened from the Graph500 defaults so the
    max-degree-to-|V| ratio matches the real graph's (Graph500 skew at
    laptop scale produces hubs adjacent to ~20% of all vertices, which no
    Table I dataset exhibits).
    """
    graph = rmat(
        max(6, int(12 + (scale - 1))), 4, a=0.45, b=0.1833, c=0.1833, seed=seed
    )
    return Dataset(
        name="amazon",
        graph=graph,
        description=(
            "co-purchase stand-in: R-MAT (paper Table I: Amazon, 262111 "
            "vertices / 899792 edges, scaled down)"
        ),
        paper_vertices=262111,
        paper_edges=899792,
    )


@register("wiki")
def load_wiki_static(*, scale: float = 1.0, seed: int = 67) -> Dataset:
    """Static wiki-reference shape: scale-free with hub articles."""
    graph = barabasi_albert(max(10, int(5000 * scale)), 6, seed=seed)
    return Dataset(
        name="wiki",
        graph=graph,
        description=(
            "article-reference stand-in: preferential attachment (paper "
            "Table I: Wiki, 176265 vertices / 1010204 edges, scaled down)"
        ),
        paper_vertices=176265,
        paper_edges=1010204,
    )


@register("flickr")
def load_flickr(*, scale: float = 1.0, seed: int = 71) -> Dataset:
    """Photo-social shape: R-MAT, heavier edge factor."""
    graph = rmat(
        max(6, int(13 + (scale - 1))), 6, a=0.45, b=0.1833, c=0.1833, seed=seed
    )
    return Dataset(
        name="flickr",
        graph=graph,
        description=(
            "photo-social stand-in: R-MAT (paper Table I: Flickr, "
            "1,715,255 vertices / 15,555,041 edges, scaled down)"
        ),
        paper_vertices=1_715_255,
        paper_edges=15_555_041,
    )


@register("livejournal")
def load_livejournal(*, scale: float = 1.0, seed: int = 73) -> Dataset:
    """Blog-social shape: the largest stand-in."""
    graph = rmat(
        max(6, int(14 + (scale - 1))), 6, a=0.45, b=0.1833, c=0.1833, seed=seed
    )
    return Dataset(
        name="livejournal",
        graph=graph,
        description=(
            "blog-social stand-in: R-MAT (paper Table I: LiveJournal, "
            "4,887,571 vertices / 32,851,237 edges, scaled down)"
        ),
        paper_vertices=4_887_571,
        paper_edges=32_851_237,
    )
