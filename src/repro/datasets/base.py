"""Dataset objects and the named registry.

Every dataset of the paper's Table I has a synthetic stand-in here (see
DESIGN.md §3 for the substitution rationale).  A :class:`Dataset` carries
the graph plus whatever ground truth its case study needs (complex labels
for PPI, yearly snapshots for DBLP, consecutive snapshots for Wiki).

Datasets are generated deterministically on demand — nothing is stored on
disk — and are scaled to laptop size; ``paper_vertices`` / ``paper_edges``
record the original sizes so the Table I benchmark can print both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..exceptions import DatasetError
from ..graph.edge import Vertex
from ..graph.undirected import Graph


@dataclass
class Dataset:
    """A named graph dataset with provenance and optional extras."""

    name: str
    graph: Graph
    description: str
    paper_vertices: int
    paper_edges: int
    #: vertex -> group label (PPI complexes); empty when not applicable
    vertex_groups: Dict[Vertex, str] = field(default_factory=dict)
    #: ordered snapshots for dynamic case studies; empty when static
    snapshots: List[Graph] = field(default_factory=list)
    #: labels aligned with ``snapshots`` ("2003", "2004", ...)
    snapshot_labels: List[str] = field(default_factory=list)

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )


Loader = Callable[..., Dataset]

_REGISTRY: Dict[str, Loader] = {}


def register(name: str) -> Callable[[Loader], Loader]:
    """Decorator registering a loader under ``name``."""

    def wrap(loader: Loader) -> Loader:
        if name in _REGISTRY:
            raise DatasetError(f"dataset {name!r} registered twice")
        _REGISTRY[name] = loader
        return loader

    return wrap


def load(name: str, **kwargs) -> Dataset:
    """Instantiate the named dataset (deterministic for fixed kwargs)."""
    try:
        loader = _REGISTRY[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return loader(**kwargs)


def names() -> List[str]:
    """Registered dataset names, sorted."""
    return sorted(_REGISTRY)
