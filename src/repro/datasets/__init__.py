"""Synthetic stand-ins for every Table I dataset (see DESIGN.md §3).

Usage::

    from repro.datasets import load, names
    ppi = load("ppi")
    print(ppi.graph, ppi.vertex_groups["PRE1"])

Importing this package registers all loaders.
"""

from .base import Dataset, load, names, register
from . import classic as _classic  # noqa: F401 - registration side effect
from . import dblp as _dblp  # noqa: F401
from . import ppi as _ppi  # noqa: F401
from . import social as _social  # noqa: F401
from . import synthetic as _synthetic  # noqa: F401
from . import wiki as _wiki  # noqa: F401
from .dblp import (
    BRIDGE_GROUP_NETWORK,
    BRIDGE_GROUP_STREAMS,
    NEW_FORM_AUTHORS,
    NEW_JOIN_JOINERS,
    NEW_JOIN_SEED_AUTHORS,
    snapshot_pair,
)
from .ppi import (
    CLIQUE1_PROTEINS,
    CLIQUE2_PROTEINS,
    CLIQUE3_MISSING_EDGE,
    CLIQUE3_PROTEINS,
    COMPLEX_20S,
    COMPLEX_CPF,
    COMPLEX_REGULATOR,
)
from .wiki import (
    ASTROLOGY_CLIQUE,
    ASTRONOMY_CLIQUE,
    TOPIC_A_MERGED,
    TOPIC_B_MERGED,
)

__all__ = [
    "ASTROLOGY_CLIQUE",
    "ASTRONOMY_CLIQUE",
    "BRIDGE_GROUP_NETWORK",
    "BRIDGE_GROUP_STREAMS",
    "CLIQUE1_PROTEINS",
    "CLIQUE2_PROTEINS",
    "CLIQUE3_MISSING_EDGE",
    "CLIQUE3_PROTEINS",
    "COMPLEX_20S",
    "COMPLEX_CPF",
    "COMPLEX_REGULATOR",
    "Dataset",
    "NEW_FORM_AUTHORS",
    "NEW_JOIN_JOINERS",
    "NEW_JOIN_SEED_AUTHORS",
    "TOPIC_A_MERGED",
    "TOPIC_B_MERGED",
    "load",
    "names",
    "register",
    "snapshot_pair",
]
