"""Wire protocol of the Triangle K-Core query service.

One place defines what travels over the socket so the server
(:mod:`repro.service.server`), the handlers
(:mod:`repro.service.handlers`) and the typed client
(:mod:`repro.service.client`) can never disagree:

* the **service schema tag** (``repro.service/1``) and the error-code
  vocabulary;
* the **response envelope**: every JSON body carries ``"version"`` — the
  authoritative graph's monotonically increasing
  :attr:`~repro.graph.undirected.Graph.version` at answer time — so a
  client can assert read-your-writes ordering across requests;
* a minimal, strict **HTTP/1.1 codec**: an asyncio request parser with
  hard header/body limits and a response renderer.  The service speaks
  plain HTTP so any client works, but only the small subset it needs
  (no chunked bodies, no multipart, no TLS).

Malformed input is rejected with :class:`ProtocolError` carrying the
right status code; the connection stays alive unless the framing itself
is unrecoverable.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..exceptions import ReproError

#: Version tag for service payloads; bump on wire-schema changes.
SERVICE_SCHEMA = "repro.service/1"

# Error codes (the machine-readable half of every error payload).
ERR_BAD_REQUEST = "bad_request"
ERR_NOT_FOUND = "not_found"
ERR_METHOD_NOT_ALLOWED = "method_not_allowed"
ERR_PAYLOAD_TOO_LARGE = "payload_too_large"
ERR_RATE_LIMITED = "rate_limited"
ERR_OVERLOADED = "overloaded"
ERR_TIMED_OUT = "timed_out"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_INTERNAL = "internal"
# Replication-tier codes (see docs/SERVICE.md, "Replication").
ERR_STALE = "stale_replica"  # min_version fence not reached in time
ERR_READ_ONLY = "read_only"  # POST /edits sent to a replica
ERR_UPSTREAM = "upstream_unavailable"  # router found no live backend

#: Hard framing limits (strict: exceeding them is a protocol error).
MAX_REQUEST_LINE_BYTES = 8192
MAX_HEADER_BYTES = 16384
MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class ServiceError(ReproError):
    """A request that cannot be answered, as an HTTP status + error code.

    Raised by handlers and converted to a JSON error payload by the
    server; also raised client-side (see
    :class:`repro.service.client.ServiceClientError`).
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


class ProtocolError(ServiceError):
    """The HTTP framing itself is invalid (bad request line, huge body)."""

    def __init__(self, status: int, message: str) -> None:
        code = {
            413: ERR_PAYLOAD_TOO_LARGE,
            431: ERR_BAD_REQUEST,
        }.get(status, ERR_BAD_REQUEST)
        super().__init__(status, code, message)


def error_payload(
    code: str, message: str, *, version: Optional[int] = None
) -> Dict[str, object]:
    """The JSON body of every error response."""
    payload: Dict[str, object] = {
        "error": {"code": code, "message": message},
        "schema": SERVICE_SCHEMA,
    }
    if version is not None:
        payload["version"] = version
    return payload


# --------------------------------------------------------------------- #
# HTTP request parsing (server side)
# --------------------------------------------------------------------- #


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    path: str
    query: Dict[str, List[str]]
    headers: Dict[str, str]
    body: bytes
    #: Raw request target as received (for logging / fuzz assertions).
    target: str = ""

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """First value of query parameter ``name`` (or ``default``)."""
        values = self.query.get(name)
        return values[0] if values else default

    def json_body(self) -> object:
        """Decode the body as JSON, raising 400-grade errors on garbage."""
        if not self.body:
            raise ServiceError(400, ERR_BAD_REQUEST, "request body is empty")
        try:
            return json.loads(self.body.decode("utf-8"))
        except UnicodeDecodeError as error:
            raise ServiceError(
                400, ERR_BAD_REQUEST, f"body is not UTF-8: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise ServiceError(
                400, ERR_BAD_REQUEST, f"body is not valid JSON: {error}"
            ) from error

    @property
    def wants_close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"


async def read_http_request(
    reader: asyncio.StreamReader,
    *,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> Optional[HttpRequest]:
    """Parse one HTTP/1.1 request off ``reader``.

    Returns ``None`` on a cleanly closed connection (EOF before the first
    byte); raises :class:`ProtocolError` on malformed framing.  Bodies are
    only read when ``Content-Length`` says so — chunked encoding is
    rejected as unsupported.
    """
    try:
        request_line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError(400, "connection closed mid request line") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(431, "request line too long") from None
    if len(request_line) > MAX_REQUEST_LINE_BYTES:
        raise ProtocolError(431, "request line too long")
    try:
        parts = request_line.decode("latin-1").strip().split()
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all bytes
        raise ProtocolError(400, "undecodable request line") from None
    if len(parts) != 3:
        raise ProtocolError(400, f"malformed request line: {request_line!r}")
    method, target, http_version = parts
    if not http_version.startswith("HTTP/1."):
        raise ProtocolError(400, f"unsupported protocol {http_version!r}")

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "connection closed mid headers") from None
        except asyncio.LimitOverrunError:
            raise ProtocolError(431, "header line too long") from None
        if line in (b"\r\n", b"\n"):
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise ProtocolError(431, "headers too large")
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator or not name.strip():
            raise ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError(400, "chunked transfer encoding is not supported")
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise ProtocolError(400, f"bad Content-Length {raw_length!r}") from None
        if length < 0:
            raise ProtocolError(400, f"bad Content-Length {raw_length!r}")
        if length > max_body_bytes:
            raise ProtocolError(
                413, f"body of {length} bytes exceeds limit {max_body_bytes}"
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "connection closed mid body") from None

    split = urlsplit(target)
    return HttpRequest(
        method=method.upper(),
        path=split.path or "/",
        query=parse_qs(split.query, keep_blank_values=True),
        headers=headers,
        body=body,
        target=target,
    )


@dataclass
class HttpResponse:
    """One parsed response: status, headers, raw body (router upstream)."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name.lower(), default)

    @property
    def will_close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"


async def read_http_response(
    reader: asyncio.StreamReader,
    *,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> HttpResponse:
    """Parse one HTTP/1.1 response off ``reader`` (router → backend leg).

    The mirror image of :func:`read_http_request`, with the same strict
    framing: responses must carry ``Content-Length`` (every response this
    service renders does); chunked encoding and EOF-delimited bodies are
    rejected with :class:`ProtocolError`.
    """
    try:
        status_line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError:
        raise ProtocolError(502, "backend closed before the status line") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(502, "backend status line too long") from None
    parts = status_line.decode("latin-1").strip().split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ProtocolError(502, f"malformed status line: {status_line!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise ProtocolError(502, f"malformed status code: {parts[1]!r}") from None

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError:
            raise ProtocolError(502, "backend closed mid headers") from None
        except asyncio.LimitOverrunError:
            raise ProtocolError(502, "backend header line too long") from None
        if line in (b"\r\n", b"\n"):
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise ProtocolError(502, "backend headers too large")
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator or not name.strip():
            raise ProtocolError(502, f"malformed backend header: {line!r}")
        headers[name.strip().lower()] = value.strip()

    raw_length = headers.get("content-length")
    if raw_length is None:
        raise ProtocolError(502, "backend response lacks Content-Length")
    try:
        length = int(raw_length)
    except ValueError:
        raise ProtocolError(502, f"bad Content-Length {raw_length!r}") from None
    if length < 0 or length > max_body_bytes:
        raise ProtocolError(502, f"bad Content-Length {raw_length!r}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError(502, "backend closed mid body") from None
    return HttpResponse(status=status, headers=headers, body=body)


# --------------------------------------------------------------------- #
# HTTP response rendering
# --------------------------------------------------------------------- #


def render_http_response(
    status: int,
    payload: Mapping[str, object],
    *,
    keep_alive: bool = True,
    retry_after: Optional[float] = None,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    """Serialize one JSON response to raw HTTP/1.1 bytes."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    reason = _STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if retry_after is not None:
        # Integer seconds per RFC 9110; never under-promise the wait.
        lines.append(f"Retry-After: {max(0, math.ceil(retry_after))}")
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


# --------------------------------------------------------------------- #
# typed client-side views of the response payloads
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class KappaAnswer:
    """``GET /kappa`` — one edge's current kappa."""

    u: object
    v: object
    kappa: int
    version: int


@dataclass(frozen=True)
class CommunityAnswer:
    """``GET /community`` — one vertex's triangle-connected community."""

    vertex: object
    level: int
    members: Tuple[object, ...]
    version: int
    degraded: bool = False
    answered_at_version: Optional[int] = None


@dataclass(frozen=True)
class EditOutcome:
    """``POST /edits`` — what one edit batch did to the served state."""

    version: int
    ops: int
    applied: int
    rejected: Dict[str, int]
    created: int
    deleted: int
    promoted: int
    demoted: int
    max_kappa: int

    @property
    def touched(self) -> int:
        return self.created + self.deleted + self.promoted + self.demoted


@dataclass(frozen=True)
class HealthInfo:
    """``GET /healthz`` — liveness plus the served graph's shape."""

    status: str
    version: int
    vertices: int
    edges: int
    max_kappa: int
    uptime_seconds: float
    draining: bool = False


@dataclass(frozen=True)
class TemplateAnswer:
    """``GET /templates/<name>`` — Algorithm 4 vs the startup baseline."""

    pattern: str
    version: int
    baseline_version: int
    characteristic_triangles: int
    special_edges: int
    cliques: Tuple[Tuple[int, Tuple[object, ...]], ...]
    degraded: bool = False


@dataclass(frozen=True)
class HierarchyAnswer:
    """``GET /hierarchy`` — the nested community forest as plain dicts."""

    version: int
    max_level: int
    roots: Tuple[dict, ...] = field(default_factory=tuple)
    degraded: bool = False
