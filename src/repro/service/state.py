"""Authoritative in-process state behind the query service.

One :class:`ServiceState` owns everything a long-lived server needs:

* a warm :class:`~repro.engine.Engine` (any registered backend) whose
  artifact cache and instrumentation are shared with offline callers;
* a :class:`~repro.core.dynamic.DynamicTriangleKCore` maintainer as the
  **single source of truth** — every ``POST /edits`` batch is applied to
  it under a single-writer lock with Rule 0 incremental repairs, so the
  per-edge kappa map is always exact at the current
  :attr:`~repro.graph.undirected.Graph.version`;
* version-stamped caches of the *derived* artifacts (community index,
  hierarchy payload, template detections) with an explicit staleness
  escape hatch: when the server is lagging (queue pressure), a read may
  be answered from the last materialized cache, marked ``degraded`` and
  carrying ``answered_at_version`` so clients can see exactly how far
  behind the answer is.  Kappa reads never degrade — the maintainer is
  updated synchronously with each write.

The state is deliberately independent of the HTTP layer so tests (and
embedders) can drive it directly.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..core.community import CommunityIndex
from ..core.hierarchy import CommunityHierarchy, CommunityNode
from ..engine import Engine
from ..graph.edge import Vertex, canonical_edge
from ..graph.undirected import Graph
from ..testing.editscript import (
    OUTCOME_NOOP,
    OUTCOME_OK,
    EditScript,
    apply_coalesced,
    coalesce,
)
from .protocol import (
    ERR_BAD_REQUEST,
    ERR_NOT_FOUND,
    SERVICE_SCHEMA,
    ServiceError,
)

#: Endpoint names metrics are keyed by (also the routing vocabulary).
ENDPOINTS = (
    "healthz",
    "kappa",
    "community",
    "hierarchy",
    "templates",
    "stats",
    "edits",
    "other",
)


class TokenBucket:
    """Per-client token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, *, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def allow(self, now: float) -> bool:
        """Consume one token if available; refill by elapsed time first."""
        if now > self.updated:
            self.tokens = min(
                self.burst, self.tokens + (now - self.updated) * self.rate
            )
            self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until one token will be available."""
        deficit = 1.0 - self.tokens
        return max(0.0, deficit / self.rate) if self.rate > 0 else 60.0


class LatencyReservoir:
    """Bounded sample reservoir with exact percentiles over recent requests.

    Keeps the most recent ``capacity`` samples (a sliding window, not a
    decaying sketch) — the right trade-off for a tail-latency dashboard
    that should reflect *current* behaviour, in O(capacity) memory.
    """

    __slots__ = ("_samples", "count", "total_seconds")

    def __init__(self, capacity: int = 2048) -> None:
        self._samples: Deque[float] = deque(maxlen=capacity)
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1
        self.total_seconds += seconds

    def percentile_ms(self, fraction: float) -> float:
        """The ``fraction`` quantile of recent samples, in milliseconds."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return round(ordered[index] * 1000.0, 3)

    def summary(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean_ms": round(
                (self.total_seconds / self.count) * 1000.0, 3
            )
            if self.count
            else 0.0,
            "p50_ms": self.percentile_ms(0.50),
            "p95_ms": self.percentile_ms(0.95),
            "p99_ms": self.percentile_ms(0.99),
        }


class ServiceMetrics:
    """Request counters, per-endpoint latency, queue and rejection gauges."""

    def __init__(self) -> None:
        self.started_at = time.monotonic()
        self.requests: Dict[str, LatencyReservoir] = {
            name: LatencyReservoir() for name in ENDPOINTS
        }
        self.errors: Dict[str, int] = {name: 0 for name in ENDPOINTS}
        self.rejected: Dict[str, int] = {
            "rate_limited": 0,
            "overloaded": 0,
            "timed_out": 0,
            "shutting_down": 0,
            "protocol": 0,
        }
        self.queue_depth = 0
        self.queue_peak = 0
        self.queue_max = 0
        self.connections_open = 0
        self.connections_total = 0
        self.degraded_reads = 0

    def note_queued(self) -> None:
        self.queue_depth += 1
        self.queue_peak = max(self.queue_peak, self.queue_depth)

    def note_dequeued(self) -> None:
        self.queue_depth = max(0, self.queue_depth - 1)

    def note_request(self, endpoint: str, seconds: float, *, error: bool) -> None:
        name = endpoint if endpoint in self.requests else "other"
        self.requests[name].record(seconds)
        if error:
            self.errors[name] += 1

    def note_rejected(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started_at

    def as_dict(self) -> Dict[str, object]:
        """The ``service`` stats section (additive to engine stats /2)."""
        per_endpoint = {
            name: {**reservoir.summary(), "errors": self.errors[name]}
            for name, reservoir in self.requests.items()
            if reservoir.count or self.errors[name]
        }
        return {
            "schema": SERVICE_SCHEMA,
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "total_requests": sum(r.count for r in self.requests.values()),
            "requests": per_endpoint,
            "rejected": dict(self.rejected),
            "queue": {
                "depth": self.queue_depth,
                "peak": self.queue_peak,
                "max": self.queue_max,
            },
            "connections": {
                "open": self.connections_open,
                "total": self.connections_total,
            },
            "degraded_reads": self.degraded_reads,
        }


def _tree_payload(node: CommunityNode) -> dict:
    """One hierarchy node as a JSON-native dict (recursive)."""
    return {
        "level": node.level,
        "first_level": node.first_level,
        "size": node.size,
        "vertices": sorted(node.vertices, key=repr),
        "children": [_tree_payload(child) for child in node.children],
    }


class ServiceState:
    """Warm engine + authoritative dynamic maintainer + derived caches.

    Parameters
    ----------
    graph:
        The startup graph.  A private copy becomes the maintained state;
        the original is kept (frozen) as the template baseline.
    backend:
        Engine backend for the startup decomposition and offline-style
        queries (any registered name or ``"auto"``).
    engine:
        Bring-your-own engine (tests); built from ``backend``/``workers``
        otherwise.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        engine: Optional[Engine] = None,
        edit_strategy: str = "auto",
    ) -> None:
        if edit_strategy not in ("incremental", "recompute", "auto", "batch"):
            raise ValueError(
                f"edit_strategy must be incremental/recompute/auto/batch, "
                f"got {edit_strategy!r}"
            )
        self.engine = engine if engine is not None else Engine(
            default_backend=backend or "auto", workers=workers
        )
        self.backend = backend or self.engine.default_backend
        self.edit_strategy = edit_strategy
        #: Which seat this state occupies in a replicated tier
        #: (``standalone`` / ``writer`` / ``replica``); echoed in
        #: ``/healthz`` so operators can tell processes apart.
        self.role = "standalone"
        #: Startup snapshot, frozen: the "original graph" of Algorithm 4.
        self.baseline = graph.copy()
        self.baseline_version = self.baseline.version
        # One decomposition through the chosen backend seeds the
        # maintainer (shared-state hook: no duplicate warm-up work).
        self.maintainer = self.engine.maintainer(
            graph, copy=True, seed_backend=self.backend
        )
        self.metrics = ServiceMetrics()
        self.started_at = time.monotonic()
        #: Single-writer lock: edits are applied atomically with respect
        #: to each other even if the state is driven from several threads
        #: (the asyncio server serializes anyway; embedders may not).
        self._write_lock = threading.Lock()
        self._edits_applied = 0
        self._edit_batches = 0
        # Derived-artifact caches, each stamped with the graph version
        # they were materialized at.
        self._index_cache: Optional[Tuple[int, CommunityIndex]] = None
        self._hierarchy_cache: Optional[Tuple[int, dict]] = None
        self._template_cache: Dict[str, Tuple[int, dict]] = {}

    # ------------------------------------------------------------------ #
    # identity / versioning
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> Graph:
        """The maintained (authoritative) graph — treat as read-only."""
        return self.maintainer.graph

    @property
    def version(self) -> int:
        """Monotonic version of the served state (echoed in responses)."""
        return self.graph.version

    def resolve_vertex(self, token: str) -> Vertex:
        """Interpret a query-string token as a vertex of the served graph.

        Tries the literal string first, then an integer reading — the
        same ambiguity rule as the CLI's ``probe`` subcommand.
        """
        if self.graph.has_vertex(token):
            return token
        try:
            return int(token)
        except ValueError:
            return token

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def health(self, *, draining: bool = False) -> Dict[str, object]:
        return {
            "status": "draining" if draining else "ok",
            "schema": SERVICE_SCHEMA,
            "role": self.role,
            "version": self.version,
            "answered_at_version": self.version,
            "vertices": self.graph.num_vertices,
            "edges": self.graph.num_edges,
            "max_kappa": self.maintainer.max_kappa,
            "uptime_seconds": round(self.metrics.uptime_seconds(), 3),
            "backend": self.backend,
            "draining": draining,
        }

    def kappa(self, u_token: str, v_token: str) -> Dict[str, object]:
        """Exact kappa of one edge (authoritative; never degraded)."""
        u = self.resolve_vertex(u_token)
        v = self.resolve_vertex(v_token)
        edge = canonical_edge(u, v)
        value = self.maintainer.kappa.get(edge)
        if value is None:
            raise ServiceError(
                404,
                ERR_NOT_FOUND,
                f"edge ({u!r}, {v!r}) is not in the served graph",
            )
        return {
            "u": edge[0],
            "v": edge[1],
            "kappa": value,
            "version": self.version,
            # Kappa never degrades: the maintainer is synchronous with the
            # local write/fold path, so the answer is always at-version.
            "answered_at_version": self.version,
        }

    def _community_index(self, *, allow_stale: bool) -> Tuple[CommunityIndex, int]:
        """The community index, rebuilt at the current version unless a
        stale one is explicitly acceptable.  Returns (index, its version)."""
        cached = self._index_cache
        if cached is not None:
            cached_version, index = cached
            if cached_version == self.version:
                return index, cached_version
            if allow_stale:
                return index, cached_version
        # Built over a frozen snapshot of the graph: a stale serve must
        # stay self-consistent (snapshot-time neighbors against
        # snapshot-time kappa) while the live graph mutates in place
        # under the incremental/batch edit strategies.
        index = CommunityIndex(
            self.graph.copy(), self.maintainer.result(), engine=self.engine
        )
        self._index_cache = (self.version, index)
        return index, self.version

    def community(
        self,
        vertex_token: str,
        k: Optional[int] = None,
        *,
        allow_stale: bool = False,
    ) -> Dict[str, object]:
        """Densest (or level-``k``) triangle-connected community of a vertex."""
        vertex = self.resolve_vertex(vertex_token)
        if not self.graph.has_vertex(vertex):
            raise ServiceError(
                404, ERR_NOT_FOUND, f"vertex {vertex!r} is not in the served graph"
            )
        index, at_version = self._community_index(allow_stale=allow_stale)
        degraded = at_version != self.version
        if degraded:
            self.metrics.degraded_reads += 1
        if k is None:
            level, members = index.densest_community_of_vertex(vertex)
        else:
            if k < 1:
                raise ServiceError(
                    400, ERR_BAD_REQUEST, f"k must be >= 1, got {k}"
                )
            communities = index.community_of_vertex(vertex, k)
            level = k if communities else 0
            members = communities[0] if communities else set()
        return {
            "vertex": vertex,
            "level": level,
            "members": sorted(members, key=repr),
            "version": self.version,
            "degraded": degraded,
            "answered_at_version": at_version,
        }

    def hierarchy(self, *, allow_stale: bool = False) -> Dict[str, object]:
        """The nested community forest as a JSON tree."""
        cached = self._hierarchy_cache
        if cached is not None and (
            cached[0] == self.version or allow_stale
        ):
            at_version, payload = cached
        else:
            result = self.maintainer.result()
            hierarchy = CommunityHierarchy(
                self.graph, result, engine=self.engine
            )
            payload = {
                "max_level": result.max_kappa,
                "roots": [_tree_payload(root) for root in hierarchy.roots],
            }
            at_version = self.version
            self._hierarchy_cache = (at_version, payload)
        degraded = at_version != self.version
        if degraded:
            self.metrics.degraded_reads += 1
        return {
            **payload,
            "version": self.version,
            "degraded": degraded,
            "answered_at_version": at_version,
        }

    def templates(
        self, name: str, *, top: int = 5, allow_stale: bool = False
    ) -> Dict[str, object]:
        """Algorithm 4 between the startup baseline and the live graph."""
        from ..templates import BUILTIN_TEMPLATES, detect_on_snapshots

        if name not in BUILTIN_TEMPLATES:
            raise ServiceError(
                404,
                ERR_NOT_FOUND,
                f"unknown template {name!r}; expected one of "
                f"{sorted(BUILTIN_TEMPLATES)}",
            )
        cached = self._template_cache.get(name)
        if cached is not None and (cached[0] == self.version or allow_stale):
            at_version, payload = cached
        else:
            detection = detect_on_snapshots(
                self.baseline,
                self.graph,
                BUILTIN_TEMPLATES[name],
                engine=self.engine,
            )
            cliques = []
            for index, (kappa, vertices) in enumerate(
                detection.densest_cliques()
            ):
                if index >= top:
                    break
                cliques.append([kappa, sorted(vertices, key=repr)])
            payload = {
                "pattern": name,
                "baseline_version": self.baseline_version,
                "characteristic_triangles": len(
                    detection.characteristic_triangles
                ),
                "special_edges": len(detection.special_edges),
                "cliques": cliques,
            }
            at_version = self.version
            self._template_cache[name] = (at_version, payload)
        degraded = at_version != self.version
        if degraded:
            self.metrics.degraded_reads += 1
        return {
            **payload,
            "version": self.version,
            "degraded": degraded,
            "answered_at_version": at_version,
        }

    def stats(self) -> Dict[str, object]:
        """Engine stats /2 payload with the ``service`` section attached."""
        payload = self.engine.stats_dict()
        payload["version"] = self.version
        return payload

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def apply_edits(
        self, script: EditScript, *, strategy: Optional[str] = None
    ) -> Dict[str, object]:
        """Apply one edit batch atomically; return what it did.

        Ops use the PR 2 total semantics: structurally invalid ops
        (duplicate add, self loop, remove of an absent edge/vertex) are
        counted per outcome and skipped — they never corrupt state or
        abort the rest of the batch.

        ``strategy`` picks how kappa is repaired: ``"incremental"``
        applies Rule 0 per-op repairs through the maintainer,
        ``"batch"`` coalesces the script to its net edge diff and runs
        one affected-region pass per op cluster (the opt-in choice for
        bursty multi-op streams, where it beats per-op repair by 5-35x),
        ``"recompute"`` replays the script structurally and runs one
        fresh decomposition (cheapest at very high churn), ``"auto"``
        (default) mirrors the maintainer's measured tiering — recompute
        at or above the churn crossover
        (:attr:`DynamicTriangleKCore.AUTO_RECOMPUTE_CHURN`), per-op
        repair below it.

        The incremental and batch paths never snapshot the kappa map:
        the reported ``delta`` counts come straight from the
        maintainer's :class:`~repro.core.dynamic.KappaDelta` recorder.
        Only the recompute path (which swaps the maintainer wholesale)
        still pays the O(|E|) before-snapshot.
        """
        from ..core.dynamic import DynamicTriangleKCore

        strategy = strategy or self.edit_strategy
        if strategy not in ("incremental", "recompute", "auto", "batch"):
            raise ServiceError(
                400,
                ERR_BAD_REQUEST,
                "strategy must be incremental/recompute/auto/batch, "
                f"got {strategy!r}",
            )
        with self._write_lock:
            prev_version = self.version
            maintainer = self.maintainer
            if strategy == "auto":
                churn = len(script) / max(self.graph.num_edges, 1)
                if churn >= DynamicTriangleKCore.AUTO_RECOMPUTE_CHURN:
                    strategy = "recompute"
                else:
                    strategy = "incremental"
            if strategy == "recompute":
                before_kappa = dict(maintainer.kappa)
                applied, rejected = self._replay_by_recompute(script)
                maintainer = self.maintainer
                after_kappa = maintainer.kappa
                created = sum(1 for e in after_kappa if e not in before_kappa)
                deleted = sum(1 for e in before_kappa if e not in after_kappa)
                promoted = demoted = 0
                for edge, value in after_kappa.items():
                    old = before_kappa.get(edge)
                    if old is None:
                        continue
                    if value > old:
                        promoted += 1
                    elif value < old:
                        demoted += 1
            else:
                co = coalesce(maintainer.graph, script)
                delta = apply_coalesced(maintainer, co, strategy=strategy)
                applied = co.applied
                rejected = co.rejected
                created = len(delta.created)
                deleted = len(delta.deleted)
                promoted = len(delta.promoted)
                demoted = len(delta.demoted)
                if delta.stats.strategy == "batch":
                    self.engine.stats.record_batch(
                        delta.stats.region_edges,
                        delta.stats.settle_iterations,
                        delta.stats.bound_prune_hits,
                    )
            self._edits_applied += applied
            self._edit_batches += 1
            return {
                "version": self.version,
                "prev_version": prev_version,
                "strategy": strategy,
                "ops": len(script),
                "applied": applied,
                "rejected": rejected,
                "delta": {
                    "created": created,
                    "deleted": deleted,
                    "promoted": promoted,
                    "demoted": demoted,
                },
                "max_kappa": maintainer.max_kappa,
            }

    def _replay_by_recompute(
        self, script: EditScript
    ) -> Tuple[int, Dict[str, int]]:
        """Recompute path: replay the script structurally, decompose once.

        The final graph goes through the engine's static backend (cache,
        instrumentation and all) and a fresh maintainer is seeded from
        that result, replacing the old one atomically.  The new graph's
        version is advanced past the old one so the monotonic-version
        contract survives the swap.
        """
        from ..core.dynamic import DynamicTriangleKCore
        from ..testing.editscript import apply_op

        old_version = self.version
        target = self.graph.copy()
        rejected: Dict[str, int] = {}
        applied = 0
        for op in script:
            outcome = apply_op(target, op)
            if outcome in (OUTCOME_OK, OUTCOME_NOOP):
                applied += 1
            else:
                rejected[outcome] = rejected.get(outcome, 0) + 1
        if target.version <= old_version:
            target.bump_version(old_version - target.version + 1)
        backend = self.engine.resolve(self.backend, target)
        if backend == "dynamic":
            backend = "reference"
        result = self.engine.decompose(target, backend=backend)
        self.maintainer = DynamicTriangleKCore(
            target, copy=False, seed_result=result
        )
        return applied, rejected

    # ------------------------------------------------------------------ #
    # stats wiring
    # ------------------------------------------------------------------ #

    def register_stats_section(self) -> None:
        """Expose service metrics through ``engine.stats_dict()``."""

        def provider() -> Dict[str, object]:
            payload = self.metrics.as_dict()
            payload["graph"] = {
                "vertices": self.graph.num_vertices,
                "edges": self.graph.num_edges,
                "version": self.version,
                "max_kappa": self.maintainer.max_kappa,
            }
            payload["edits"] = {
                "batches": self._edit_batches,
                "applied_ops": self._edits_applied,
            }
            return payload

        self.engine.register_stats_section("service", provider, replace=True)
