"""Endpoint handlers: parse one :class:`HttpRequest`, answer from state.

Handlers are synchronous pure-ish functions ``(state, request, context) ->
(status, payload)``; the server's dispatcher invokes them serially, which
is what makes reads consistent and writes single-writer without any
per-structure locking.  All user-input validation lives here; handlers
signal failures by raising :class:`~repro.service.protocol.ServiceError`,
which the server renders as a JSON error body with the right status.

``context.allow_stale`` is the server's degradation signal: when the
request queue is deeper than the configured threshold, derived-artifact
reads (community / hierarchy / templates) may be answered from the last
materialized cache (marked ``degraded`` in the payload) instead of
rebuilding at the current version.  ``/kappa`` is always exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..testing.editscript import EditScript
from .protocol import (
    ERR_BAD_REQUEST,
    ERR_METHOD_NOT_ALLOWED,
    ERR_NOT_FOUND,
    HttpRequest,
    ServiceError,
)
from .state import ServiceState

#: (status, JSON payload) — what every handler returns.
HandlerResult = Tuple[int, Dict[str, object]]


@dataclass
class RequestContext:
    """Per-request server-side signals threaded into handlers."""

    allow_stale: bool = False
    draining: bool = False


def _require_param(request: HttpRequest, name: str) -> str:
    value = request.param(name)
    if value is None or value == "":
        raise ServiceError(
            400, ERR_BAD_REQUEST, f"missing required query parameter {name!r}"
        )
    return value


def _int_param(request: HttpRequest, name: str) -> Optional[int]:
    value = request.param(name)
    if value is None or value == "":
        return None
    try:
        return int(value)
    except ValueError:
        raise ServiceError(
            400, ERR_BAD_REQUEST, f"query parameter {name!r} must be an integer"
        ) from None


def handle_healthz(
    state: ServiceState, request: HttpRequest, context: RequestContext
) -> HandlerResult:
    return 200, state.health(draining=context.draining)


def handle_kappa(
    state: ServiceState, request: HttpRequest, context: RequestContext
) -> HandlerResult:
    u = _require_param(request, "u")
    v = _require_param(request, "v")
    return 200, state.kappa(u, v)


def handle_community(
    state: ServiceState, request: HttpRequest, context: RequestContext
) -> HandlerResult:
    vertex = _require_param(request, "vertex")
    k = _int_param(request, "k")
    return 200, state.community(vertex, k, allow_stale=context.allow_stale)


def handle_hierarchy(
    state: ServiceState, request: HttpRequest, context: RequestContext
) -> HandlerResult:
    return 200, state.hierarchy(allow_stale=context.allow_stale)


def handle_templates(
    state: ServiceState, request: HttpRequest, context: RequestContext
) -> HandlerResult:
    name = request.path[len("/templates/"):]
    if not name or "/" in name:
        raise ServiceError(
            404, ERR_NOT_FOUND, f"malformed template path {request.path!r}"
        )
    top = _int_param(request, "top")
    kwargs = {} if top is None else {"top": top}
    return 200, state.templates(
        name, allow_stale=context.allow_stale, **kwargs
    )


def handle_stats(
    state: ServiceState, request: HttpRequest, context: RequestContext
) -> HandlerResult:
    return 200, state.stats()


def handle_edits(
    state: ServiceState, request: HttpRequest, context: RequestContext
) -> HandlerResult:
    document = request.json_body()
    if not isinstance(document, dict):
        raise ServiceError(
            400, ERR_BAD_REQUEST, "body must be an EditScript JSON object"
        )
    try:
        script = EditScript.from_json_obj(document)
    except (ValueError, TypeError) as error:
        raise ServiceError(
            400, ERR_BAD_REQUEST, f"malformed edit script: {error}"
        ) from error
    strategy = document.get("strategy")
    if strategy is not None and not isinstance(strategy, str):
        raise ServiceError(400, ERR_BAD_REQUEST, "strategy must be a string")
    return 200, state.apply_edits(script, strategy=strategy)


#: Routing table: endpoint name -> (method, matcher, handler).
Handler = Callable[[ServiceState, HttpRequest, RequestContext], HandlerResult]

_EXACT_ROUTES: Dict[Tuple[str, str], Tuple[str, Handler]] = {
    ("GET", "/healthz"): ("healthz", handle_healthz),
    ("GET", "/kappa"): ("kappa", handle_kappa),
    ("GET", "/community"): ("community", handle_community),
    ("GET", "/hierarchy"): ("hierarchy", handle_hierarchy),
    ("GET", "/stats"): ("stats", handle_stats),
    ("POST", "/edits"): ("edits", handle_edits),
}

#: Paths that exist with a different method (for 405-vs-404 decisions).
_KNOWN_PATHS = {path for (_method, path) in _EXACT_ROUTES} | {"/edits"}


def route(request: HttpRequest) -> Tuple[str, Handler]:
    """Resolve a request to ``(endpoint name, handler)``.

    Raises :class:`ServiceError` 404 for unknown paths and 405 for known
    paths hit with the wrong method.
    """
    key = (request.method, request.path)
    if key in _EXACT_ROUTES:
        return _EXACT_ROUTES[key]
    if request.path.startswith("/templates/"):
        if request.method == "GET":
            return "templates", handle_templates
        raise ServiceError(
            405,
            ERR_METHOD_NOT_ALLOWED,
            f"{request.method} is not allowed on {request.path}",
        )
    if request.path in _KNOWN_PATHS:
        raise ServiceError(
            405,
            ERR_METHOD_NOT_ALLOWED,
            f"{request.method} is not allowed on {request.path}",
        )
    raise ServiceError(
        404, ERR_NOT_FOUND, f"no such endpoint: {request.method} {request.path}"
    )
