"""Typed synchronous client for the Triangle K-Core query service.

Built on :mod:`http.client` (stdlib, blocking, one keep-alive connection
per instance) so scripts, benchmarks and tests need no third-party HTTP
stack.  Every method returns one of the typed answer dataclasses from
:mod:`repro.service.protocol`; service-side failures surface as
:class:`ServiceClientError` (or :class:`ServiceOverloadError` for
backpressure responses, which carry ``retry_after``).

The client is **not** thread-safe — use one instance per thread (the
load generator in ``benchmarks/bench_service.py`` does exactly that).

Example
-------
>>> client = ServiceClient("127.0.0.1", 8321)          # doctest: +SKIP
>>> client.kappa(0, 1).kappa                           # doctest: +SKIP
3
>>> client.edits([("add", 7, 8)]).version              # doctest: +SKIP
42
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..exceptions import ReproError
from ..testing.editscript import EditOp, EditScript
from .protocol import (
    CommunityAnswer,
    EditOutcome,
    HealthInfo,
    HierarchyAnswer,
    KappaAnswer,
    TemplateAnswer,
)

#: Anything `edits()` accepts: a script, ops, or raw ``(kind, u[, v])`` rows.
EditsLike = Union[EditScript, Iterable[Union[EditOp, Sequence[object]]]]


class ServiceClientError(ReproError):
    """A non-2xx service response, carrying the parsed error envelope."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.retry_after = retry_after


class ServiceOverloadError(ServiceClientError):
    """A backpressure rejection (429 or 503) — retry after ``retry_after``."""


def _as_script(edits: EditsLike) -> EditScript:
    if isinstance(edits, EditScript):
        return edits
    ops: List[EditOp] = []
    for row in edits:
        if isinstance(row, EditOp):
            ops.append(row)
        else:
            ops.append(EditOp.from_json_obj(list(row)))
    return EditScript(ops)


class ServiceClient:
    """One keep-alive connection to a running service.

    Parameters
    ----------
    host, port:
        Where the service listens.
    timeout:
        Socket timeout in seconds for each request/response exchange.
    retries:
        How many times to transparently reconnect-and-retry when the
        server closed a kept-alive connection between requests (a normal
        hazard of HTTP keep-alive, not an error).  Only connection-level
        failures are retried — HTTP error *responses* never are, except
        through the explicit backoff knobs below.
    backoff_retries:
        How many times to retry a request rejected with a *transient*
        backpressure response (503 with code ``overloaded`` or
        ``timed_out`` by default — see ``backoff_codes``) before
        propagating :class:`ServiceOverloadError`.  Each retry sleeps
        the server's ``Retry-After`` when one was sent, otherwise a
        bounded exponential delay (``backoff_base`` doubling up to
        ``backoff_max``).  Default 0: fail fast, exactly the pre-backoff
        behaviour.
    backoff_base / backoff_max:
        First and largest exponential delay in seconds.
    backoff_codes:
        Error codes eligible for backoff.  429 ``rate_limited`` is
        deliberately not included by default — a rate-limited caller
        retrying in a tight loop is the problem, not the cure; opt in
        explicitly if a shared bucket makes retries appropriate.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        *,
        timeout: float = 30.0,
        retries: int = 1,
        backoff_retries: int = 0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        backoff_codes: Tuple[str, ...] = ("overloaded", "timed_out"),
    ) -> None:
        if backoff_retries < 0:
            raise ValueError(
                f"backoff_retries must be >= 0, got {backoff_retries}"
            )
        if backoff_base <= 0 or backoff_max < backoff_base:
            raise ValueError(
                f"need 0 < backoff_base <= backoff_max, got "
                f"{backoff_base!r}/{backoff_max!r}"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_retries = backoff_retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.backoff_codes = tuple(backoff_codes)
        #: Highest ``version`` seen in any response — pass it back as
        #: ``min_version`` on reads for read-your-writes through a
        #: router/replica tier.
        self.last_version = 0
        #: Sleeps performed by the backoff loop (seconds, appended per
        #: retry) — observability for tests and load generators.
        self.backoff_sleeps: List[float] = []
        # Injection point so unit tests can run without real sleeping.
        self._sleep = time.sleep
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        *,
        body: Optional[Dict[str, object]] = None,
    ) -> Tuple[int, Dict[str, object]]:
        """One exchange with transient-backpressure backoff; returns
        ``(status, decoded JSON payload)``.

        Escape hatch for endpoints the typed methods don't cover (and
        the conformance tests' way of hitting malformed routes).  When
        ``backoff_retries`` is 0 (default) this is a single exchange;
        otherwise 503 ``overloaded``/``timed_out`` rejections (see
        ``backoff_codes``) are retried with bounded exponential delays,
        honouring the server's ``Retry-After`` when present.
        """
        attempts = self.backoff_retries + 1
        delay = self.backoff_base
        for attempt in range(attempts):
            try:
                return self._exchange(method, path, body=body)
            except ServiceOverloadError as error:
                if (
                    attempt == attempts - 1
                    or error.code not in self.backoff_codes
                ):
                    raise
                # The server's own estimate wins; otherwise back off
                # exponentially, never beyond backoff_max per attempt.
                wait = (
                    error.retry_after
                    if error.retry_after is not None
                    else delay
                )
                wait = min(wait, self.backoff_max)
                self.backoff_sleeps.append(wait)
                self._sleep(wait)
                delay = min(delay * 2, self.backoff_max)
        raise AssertionError("unreachable")  # pragma: no cover

    def _exchange(
        self,
        method: str,
        path: str,
        *,
        body: Optional[Dict[str, object]] = None,
    ) -> Tuple[int, Dict[str, object]]:
        """One raw request/response cycle (connection retries only)."""
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        attempts = self.retries + 1
        for attempt in range(attempts):
            connection = self._connect()
            try:
                connection.request(method, path, body=payload, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                socket.timeout,
                OSError,
            ) as error:
                self.close()
                if attempt == attempts - 1:
                    raise ServiceClientError(
                        0, "connection", f"{method} {path} failed: {error}"
                    ) from error
        try:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ServiceClientError(
                response.status, "bad_payload", f"undecodable body: {error!r}"
            ) from error
        if response.will_close:
            self.close()
        if response.status >= 400:
            info = document.get("error") if isinstance(document, dict) else None
            info = info if isinstance(info, dict) else {}
            retry_after = _float_or_none(response.getheader("Retry-After"))
            cls = (
                ServiceOverloadError
                if response.status in (429, 503)
                else ServiceClientError
            )
            raise cls(
                response.status,
                str(info.get("code", "unknown")),
                str(info.get("message", raw[:200])),
                retry_after=retry_after,
            )
        if not isinstance(document, dict):
            raise ServiceClientError(
                response.status, "bad_payload", "expected a JSON object body"
            )
        seen = document.get("version")
        if isinstance(seen, int) and seen > self.last_version:
            self.last_version = seen
        return response.status, document

    def _get(
        self, path: str, *, min_version: Optional[int] = None
    ) -> Dict[str, object]:
        return self.request("GET", _fenced(path, min_version))[1]

    # ------------------------------------------------------------------ #
    # typed endpoints
    # ------------------------------------------------------------------ #

    def healthz(self, *, min_version: Optional[int] = None) -> HealthInfo:
        doc = self._get("/healthz", min_version=min_version)
        return HealthInfo(
            status=str(doc["status"]),
            version=int(doc["version"]),
            vertices=int(doc["vertices"]),
            edges=int(doc["edges"]),
            max_kappa=int(doc["max_kappa"]),
            uptime_seconds=float(doc["uptime_seconds"]),
            draining=bool(doc.get("draining", False)),
        )

    def kappa(
        self, u: object, v: object, *, min_version: Optional[int] = None
    ) -> KappaAnswer:
        doc = self._get(
            f"/kappa?u={_quote(u)}&v={_quote(v)}", min_version=min_version
        )
        return KappaAnswer(
            u=doc["u"],
            v=doc["v"],
            kappa=int(doc["kappa"]),
            version=int(doc["version"]),
        )

    def community(
        self,
        vertex: object,
        k: Optional[int] = None,
        *,
        min_version: Optional[int] = None,
    ) -> CommunityAnswer:
        path = f"/community?vertex={_quote(vertex)}"
        if k is not None:
            path += f"&k={int(k)}"
        doc = self._get(path, min_version=min_version)
        return CommunityAnswer(
            vertex=doc["vertex"],
            level=int(doc["level"]),
            members=tuple(doc["members"]),
            version=int(doc["version"]),
            degraded=bool(doc.get("degraded", False)),
            answered_at_version=doc.get("answered_at_version"),
        )

    def hierarchy(self, *, min_version: Optional[int] = None) -> HierarchyAnswer:
        doc = self._get("/hierarchy", min_version=min_version)
        return HierarchyAnswer(
            version=int(doc["version"]),
            max_level=int(doc["max_level"]),
            roots=tuple(doc["roots"]),
            degraded=bool(doc.get("degraded", False)),
        )

    def templates(
        self,
        name: str,
        *,
        top: Optional[int] = None,
        min_version: Optional[int] = None,
    ) -> TemplateAnswer:
        path = f"/templates/{name}"
        if top is not None:
            path += f"?top={int(top)}"
        doc = self._get(path, min_version=min_version)
        return TemplateAnswer(
            pattern=str(doc["pattern"]),
            version=int(doc["version"]),
            baseline_version=int(doc["baseline_version"]),
            characteristic_triangles=int(doc["characteristic_triangles"]),
            special_edges=int(doc["special_edges"]),
            cliques=tuple(
                (int(kappa), tuple(vertices)) for kappa, vertices in doc["cliques"]
            ),
            degraded=bool(doc.get("degraded", False)),
        )

    def stats(self) -> Dict[str, object]:
        """The raw engine stats /2 payload (with the ``service`` section)."""
        return self._get("/stats")

    def edits(
        self, edits: EditsLike, *, strategy: Optional[str] = None
    ) -> EditOutcome:
        """POST one edit batch; returns what it did to the served state.

        ``strategy`` overrides the server's default repair strategy for
        this batch: ``"incremental"``, ``"batch"`` (one affected-region
        pass for the whole script), ``"recompute"``, or ``"auto"``.
        """
        body = _as_script(edits).to_json_obj()
        if strategy is not None:
            body["strategy"] = strategy
        doc = self.request("POST", "/edits", body=body)[1]
        delta = doc.get("delta")
        delta = delta if isinstance(delta, dict) else {}
        return EditOutcome(
            version=int(doc["version"]),
            ops=int(doc["ops"]),
            applied=int(doc["applied"]),
            rejected={str(k): int(v) for k, v in dict(doc["rejected"]).items()},
            created=int(delta.get("created", 0)),
            deleted=int(delta.get("deleted", 0)),
            promoted=int(delta.get("promoted", 0)),
            demoted=int(delta.get("demoted", 0)),
            max_kappa=int(doc["max_kappa"]),
        )


def _quote(token: object) -> str:
    from urllib.parse import quote

    return quote(str(token), safe="")


def _fenced(path: str, min_version: Optional[int]) -> str:
    """Append a ``min_version`` read fence to a request path."""
    if min_version is None:
        return path
    separator = "&" if "?" in path else "?"
    return f"{path}{separator}min_version={int(min_version)}"


def _float_or_none(raw: Optional[str]) -> Optional[float]:
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        return None
