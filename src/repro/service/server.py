"""The asyncio HTTP server: admission control, dispatch, graceful drain.

Architecture (pure stdlib, one process)::

    connections --> admission --> bounded queue --> serial dispatcher
                    (rate limit,                   (handlers run one at
                     queue cap,                     a time: reads are
                     drain gate)                    consistent, writes
                                                    single-writer)

Every request is admitted (or rejected *immediately* with 429/503 —
overload produces fast failures, never unbounded latency) and then
answered by one dispatcher task that executes handlers serially.  On a
single CPU-bound Python process a worker pool would add interleaving
without adding throughput; the serial dispatcher gives the same capacity
with strictly simpler consistency: a read admitted after a write
*observes* that write (read-your-writes), and ``Graph.version`` echoed in
every response makes the ordering checkable client-side.

Backpressure knobs:

* ``max_queue`` — pending-request cap; beyond it new requests get 503
  with ``Retry-After`` instead of queueing (bounded worst-case latency);
* ``rate_limit``/``rate_burst`` — per-client token bucket, 429 on empty
  (``/healthz`` is exempt so monitoring never starves);
* ``request_timeout`` — a request that waited in queue longer than this
  is answered 503 ``timed_out`` without running (load shedding);
* ``degrade_after`` — queue depth beyond which derived-artifact reads
  may be served from the last materialized cache, marked ``degraded``.

``SIGTERM``/``SIGINT`` trigger a clean drain: the listener closes, every
already-admitted request is answered, late requests get 503
``shutting_down`` with ``Connection: close``, then the process exits 0.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import threading
import time
import traceback
from typing import Dict, Optional, Tuple

from ..graph.undirected import Graph
from .handlers import RequestContext, route
from .protocol import (
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    ERR_RATE_LIMITED,
    ERR_SHUTTING_DOWN,
    ERR_STALE,
    ERR_TIMED_OUT,
    HttpRequest,
    ProtocolError,
    ServiceError,
    error_payload,
    read_http_request,
    render_http_response,
)
from .state import ServiceState, TokenBucket

#: How many distinct client buckets to keep before pruning the idlest.
_MAX_CLIENT_BUCKETS = 4096


class VersionGate:
    """Wait-for-version primitive behind ``min_version`` read fences.

    Connection tasks park on :meth:`wait` until the served state reaches
    a target version; whoever advances the state (the dispatcher after a
    write, a replica's replication tail after a fold) calls
    :meth:`notify` with the new version.  Waiting happens *before* a
    request enters the serial dispatch queue, so a fenced read can never
    deadlock against the very write that would satisfy it.
    """

    __slots__ = ("_waiters",)

    def __init__(self) -> None:
        # [(target_version, future), ...] — resolved with an outcome tag.
        self._waiters: list = []

    async def wait(self, target: int, *, timeout: Optional[float]) -> str:
        """Park until ``notify(v >= target)``; returns the outcome tag
        (``reached`` / ``timeout`` / ``draining``)."""
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append((target, future))
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            return "timeout"
        finally:
            if not future.done():
                future.cancel()
            self._waiters = [
                (t, f) for (t, f) in self._waiters if f is not future
            ]

    def notify(self, version: int) -> None:
        """Release every waiter whose target version has been reached."""
        if not self._waiters:
            return
        still_waiting = []
        for target, future in self._waiters:
            if target <= version:
                if not future.done():
                    future.set_result("reached")
            else:
                still_waiting.append((target, future))
        self._waiters = still_waiting

    def release_all(self, outcome: str = "draining") -> None:
        """Resolve every waiter with ``outcome`` (server drain)."""
        for _target, future in self._waiters:
            if not future.done():
                future.set_result(outcome)
        self._waiters = []


class ServiceServer:
    """One listening socket + bounded queue + serial dispatcher.

    Parameters
    ----------
    state:
        The :class:`ServiceState` to serve (its stats section is
        registered on the engine at :meth:`start`).
    max_queue:
        Admission cap on requests waiting for the dispatcher.
    rate_limit / rate_burst:
        Per-client token bucket (requests/second and burst capacity);
        ``None`` disables rate limiting.
    request_timeout:
        Queue-age load-shedding threshold in seconds (``None`` disables).
    idle_timeout:
        Keep-alive connections idle longer than this are closed.
    degrade_after:
        Queue depth at which derived reads may serve stale caches;
        ``None`` disables degradation (always rebuild at head version).
    fence_timeout:
        How long a read carrying ``min_version=V`` may wait for the
        served state to reach version ``V`` before being answered 503
        ``stale_replica`` (the bounded-staleness read fence).
    handler_delay:
        Artificial seconds of dispatcher sleep per request — a **testing
        hook** to make queue pressure reproducible; leave at 0.0.
    """

    def __init__(
        self,
        state: ServiceState,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queue: int = 128,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[float] = None,
        request_timeout: Optional[float] = 10.0,
        idle_timeout: float = 60.0,
        degrade_after: Optional[int] = None,
        fence_timeout: float = 5.0,
        handler_delay: float = 0.0,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if rate_limit is not None and rate_limit <= 0:
            raise ValueError(f"rate_limit must be > 0, got {rate_limit}")
        self.state = state
        self.host = host
        self._requested_port = port
        self.max_queue = max_queue
        self.rate_limit = rate_limit
        self.rate_burst = (
            rate_burst
            if rate_burst is not None
            else (max(1.0, rate_limit) if rate_limit else 1.0)
        )
        self.request_timeout = request_timeout
        self.idle_timeout = idle_timeout
        self.degrade_after = degrade_after
        self.fence_timeout = fence_timeout
        self.handler_delay = handler_delay
        self.state.metrics.queue_max = max_queue
        #: ``min_version`` read-fence support (see docs/SERVICE.md).
        self.version_gate = VersionGate()

        self._server: Optional[asyncio.base_events.Server] = None
        self._queue: "asyncio.Queue[Tuple[HttpRequest, asyncio.Future, float]]" = (
            asyncio.Queue()
        )
        self._dispatcher_task: Optional[asyncio.Task] = None
        # task -> [writer, busy]; busy means a response is being produced
        # or written, so drain() must not close the transport under it.
        self._connections: Dict[asyncio.Task, list] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._draining = False
        self._drained = asyncio.Event()
        self._shutdown_requested = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The bound port (only valid after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.state.register_stats_section()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self._dispatcher_task = asyncio.create_task(self._dispatch_loop())

    def request_shutdown(self) -> None:
        """Begin a graceful drain (idempotent; safe from signal handlers)."""
        self._shutdown_requested.set()

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_shutdown`, then drain and return."""
        await self._shutdown_requested.wait()
        await self.drain()

    def notify_version(self) -> None:
        """Release read fences matured by an out-of-band state advance.

        The dispatcher calls :meth:`VersionGate.notify` after every
        handled request; components that advance the state from *outside*
        the dispatcher — the replication tail folding writer commits into
        a replica — must call this after each fold.  Must run on the
        server's event loop.
        """
        self.version_gate.notify(self.state.version)

    async def drain(self) -> None:
        """Stop accepting, answer everything admitted, stop the dispatcher."""
        self._draining = True
        # Parked min_version waiters must not outlive the dispatcher;
        # they are answered 503 shutting_down like any late request.
        self.version_gate.release_all()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Everything already in the queue is answered; the sentinel wakes
        # the dispatcher after the last real item.
        await self._queue.put(None)  # type: ignore[arg-type]
        if self._dispatcher_task is not None:
            await self._dispatcher_task
        # Idle keep-alive connections would otherwise sit in a read until
        # the loop tears them down (a cancelled task the streams module
        # logs about); close their transports so the handlers see EOF and
        # finish on their own.  Connections still flushing a final answer
        # get a short grace first.
        deadline = time.monotonic() + 5.0
        while (
            any(entry[1] for entry in self._connections.values())
            and time.monotonic() < deadline
        ):
            await asyncio.sleep(0.005)
        for entry in list(self._connections.values()):
            entry[0].close()
        if self._connections:
            await asyncio.gather(
                *list(self._connections), return_exceptions=True
            )
        self._drained.set()

    # ------------------------------------------------------------------ #
    # per-connection loop
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics = self.state.metrics
        metrics.connections_open += 1
        metrics.connections_total += 1
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) else "unknown"
        entry = [writer, False]
        task = asyncio.current_task()
        if task is not None:
            self._connections[task] = entry
        try:
            while True:
                entry[1] = False
                try:
                    request = await asyncio.wait_for(
                        read_http_request(reader), timeout=self.idle_timeout
                    )
                except asyncio.TimeoutError:
                    break
                except ProtocolError as error:
                    metrics.note_rejected("protocol")
                    writer.write(
                        render_http_response(
                            error.status,
                            error_payload(error.code, error.message),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                if request is None:
                    break
                entry[1] = True
                keep_alive = not request.wants_close
                body, close_after = await self._admit_and_answer(
                    request, client
                )
                try:
                    writer.write(body)
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    break
                if close_after or not keep_alive:
                    break
        finally:
            if task is not None:
                self._connections.pop(task, None)
            metrics.connections_open -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _admit_and_answer(
        self, request: HttpRequest, client: str
    ) -> Tuple[bytes, bool]:
        """Admission control; returns (response bytes, close-connection?)."""
        metrics = self.state.metrics
        version = self.state.version
        if self._draining:
            metrics.note_rejected("shutting_down")
            return (
                render_http_response(
                    503,
                    error_payload(
                        ERR_SHUTTING_DOWN,
                        "server is draining; connection will close",
                        version=version,
                    ),
                    keep_alive=False,
                ),
                True,
            )
        if self.rate_limit is not None and request.path != "/healthz":
            bucket = self._bucket_for(client)
            if not bucket.allow(time.monotonic()):
                metrics.note_rejected("rate_limited")
                return (
                    render_http_response(
                        429,
                        error_payload(
                            ERR_RATE_LIMITED,
                            f"client {client} exceeded "
                            f"{self.rate_limit:g} requests/second",
                            version=version,
                        ),
                        retry_after=bucket.retry_after(),
                    ),
                    False,
                )
        raw_fence = request.param("min_version")
        if raw_fence is not None:
            try:
                want = int(raw_fence)
            except ValueError:
                want = -1
            if want < 0:
                return (
                    render_http_response(
                        400,
                        error_payload(
                            ERR_BAD_REQUEST,
                            f"min_version must be a non-negative integer, "
                            f"got {raw_fence!r}",
                            version=version,
                        ),
                    ),
                    False,
                )
            if self.state.version < want:
                outcome = await self.version_gate.wait(
                    want, timeout=self.fence_timeout
                )
                if outcome == "draining":
                    metrics.note_rejected("shutting_down")
                    return (
                        render_http_response(
                            503,
                            error_payload(
                                ERR_SHUTTING_DOWN,
                                "server is draining; connection will close",
                                version=self.state.version,
                            ),
                            keep_alive=False,
                        ),
                        True,
                    )
                if outcome == "timeout":
                    metrics.note_rejected("stale")
                    return (
                        render_http_response(
                            503,
                            error_payload(
                                ERR_STALE,
                                f"state is at version {self.state.version}, "
                                f"min_version={want} not reached within "
                                f"{self.fence_timeout:g}s",
                                version=self.state.version,
                            ),
                            retry_after=self.fence_timeout,
                        ),
                        False,
                    )
        if self._queue.qsize() >= self.max_queue:
            metrics.note_rejected("overloaded")
            return (
                render_http_response(
                    503,
                    error_payload(
                        ERR_OVERLOADED,
                        f"request queue is full ({self.max_queue} pending)",
                        version=version,
                    ),
                    retry_after=1.0,
                ),
                False,
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        metrics.note_queued()
        await self._queue.put((request, future, time.monotonic()))
        status, payload, retry_after = await future
        return (
            render_http_response(
                status, payload, retry_after=retry_after
            ),
            False,
        )

    def _bucket_for(self, client: str) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= _MAX_CLIENT_BUCKETS:
                # Drop the stalest buckets (coarse, rare).
                for key in sorted(
                    self._buckets, key=lambda k: self._buckets[k].updated
                )[: _MAX_CLIENT_BUCKETS // 2]:
                    del self._buckets[key]
            bucket = TokenBucket(
                self.rate_limit or 1.0, self.rate_burst, now=time.monotonic()
            )
            self._buckets[client] = bucket
        return bucket

    # ------------------------------------------------------------------ #
    # dispatcher
    # ------------------------------------------------------------------ #

    async def _dispatch_loop(self) -> None:
        metrics = self.state.metrics
        while True:
            item = await self._queue.get()
            if item is None:
                break
            request, future, enqueued = item
            metrics.note_dequeued()
            if self.handler_delay:
                await asyncio.sleep(self.handler_delay)
            if future.cancelled():
                continue
            now = time.monotonic()
            if (
                self.request_timeout is not None
                and now - enqueued > self.request_timeout
            ):
                metrics.note_rejected("timed_out")
                future.set_result(
                    (
                        503,
                        error_payload(
                            ERR_TIMED_OUT,
                            f"request waited {now - enqueued:.2f}s in queue "
                            f"(limit {self.request_timeout:g}s)",
                            version=self.state.version,
                        ),
                        1.0,
                    )
                )
                continue
            context = RequestContext(
                allow_stale=(
                    self.degrade_after is not None
                    and self._queue.qsize() >= self.degrade_after
                ),
                draining=self._draining,
            )
            endpoint = "other"
            error = False
            try:
                endpoint, handler = route(request)
                status, payload = handler(self.state, request, context)
                retry_after: Optional[float] = None
            except ServiceError as exc:
                status = exc.status
                payload = error_payload(
                    exc.code, exc.message, version=self.state.version
                )
                retry_after = exc.retry_after
                error = True
            except Exception:
                traceback.print_exc(file=sys.stderr)
                status = 500
                payload = error_payload(
                    ERR_INTERNAL,
                    "unhandled error while answering the request",
                    version=self.state.version,
                )
                retry_after = None
                error = True
            metrics.note_request(
                endpoint, time.monotonic() - enqueued, error=error
            )
            if not future.cancelled():
                future.set_result((status, payload, retry_after))
            # A write may have advanced the state; release matured
            # min_version fences (no-op when nobody is waiting).
            self.version_gate.notify(self.state.version)


# --------------------------------------------------------------------- #
# blocking entry point (CLI) and background helper (tests / examples)
# --------------------------------------------------------------------- #


async def _run_async(
    server: ServiceServer, *, announce=None, install_signals: bool = True
) -> None:
    if install_signals:
        # Before start/announce: the instant the port is printed, a
        # supervisor may already be sending SIGTERM.
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                signal.signal(
                    signum, lambda *_args: server.request_shutdown()
                )
    await server.start()
    if announce is not None:
        announce(server)
    await server.serve_forever()


def run_server(server: ServiceServer, *, announce=None) -> None:
    """Serve until SIGTERM/SIGINT, drain cleanly, then return.

    ``announce(server)`` is called once the port is bound (the CLI prints
    the listening URL from it; tests parse that line).
    """
    asyncio.run(_run_async(server, announce=announce, install_signals=True))


class BackgroundServer:
    """A service server running on an event loop in a daemon thread.

    The in-process harness used by tests, examples, and notebooks::

        with BackgroundServer(graph) as server:
            client = ServiceClient("127.0.0.1", server.port)
            client.kappa(0, 1)

    ``state``/server knobs pass through to :class:`ServiceState` and
    :class:`ServiceServer`.  ``stop()`` performs the same graceful drain
    as SIGTERM and joins the thread.
    """

    def __init__(
        self,
        graph: Optional[Graph] = None,
        *,
        state: Optional[ServiceState] = None,
        backend: Optional[str] = None,
        server_cls: type = None,  # type: ignore[assignment]
        **server_kwargs,
    ) -> None:
        if (graph is None) == (state is None):
            raise ValueError("pass exactly one of graph= or state=")
        self.state = state if state is not None else ServiceState(
            graph, backend=backend
        )
        #: Server class to instantiate — the replication tier passes its
        #: WriterServer/ReplicaServer subclasses through here.
        self._server_cls = server_cls if server_cls is not None else ServiceServer
        self._server_kwargs = server_kwargs
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._failed: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[ServiceServer] = None
        self.port: Optional[int] = None

    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            raise RuntimeError("already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="triangle-kcore-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread failed to start in time")
        if self._failed is not None:
            raise RuntimeError(
                f"service thread failed to start: {self._failed!r}"
            ) from self._failed
        return self

    def _thread_main(self) -> None:
        async def main() -> None:
            server = self._server_cls(self.state, **self._server_kwargs)
            try:
                await server.start()
            except BaseException as error:
                self._failed = error
                self._ready.set()
                raise
            self.server = server
            self.port = server.port
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await server.serve_forever()

        try:
            asyncio.run(main())
        except BaseException as error:  # noqa: BLE001 - surfaced via start()
            if not self._ready.is_set():
                self._failed = error
                self._ready.set()

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain + thread join (idempotent)."""
        if self._thread is None:
            return
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("service thread did not stop in time")
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
