"""A long-lived Triangle K-Core query service (pure stdlib).

The package turns the offline library into a server process: load a
graph once, keep one warm :class:`~repro.engine.Engine` plus a
:class:`~repro.core.dynamic.DynamicTriangleKCore` maintainer as
authoritative state, and answer kappa/community/hierarchy/template
queries over HTTP/JSON while ingesting live edit batches.

Layers (each usable on its own):

* :mod:`repro.service.protocol` — wire schema, strict HTTP codec,
  typed answer dataclasses;
* :mod:`repro.service.state` — :class:`ServiceState`, the authoritative
  state + derived-artifact caches + metrics (no networking);
* :mod:`repro.service.handlers` — endpoint functions and routing;
* :mod:`repro.service.server` — the asyncio server with backpressure
  (bounded queue, token buckets, load shedding) and graceful drain;
* :mod:`repro.service.client` — the typed blocking client.

Start a server from the CLI (``triangle-kcore serve --dataset dblp``),
or in-process::

    from repro.service import BackgroundServer, ServiceClient

    with BackgroundServer(graph) as server:
        client = ServiceClient("127.0.0.1", server.port)
        print(client.kappa(0, 1))

See ``docs/SERVICE.md`` for the endpoint reference, the consistency
model, and capacity planning guidance.
"""

from .client import (
    ServiceClient,
    ServiceClientError,
    ServiceOverloadError,
)
from .protocol import (
    SERVICE_SCHEMA,
    CommunityAnswer,
    EditOutcome,
    HealthInfo,
    HierarchyAnswer,
    KappaAnswer,
    ProtocolError,
    ServiceError,
    TemplateAnswer,
)
from .server import BackgroundServer, ServiceServer, run_server
from .state import ServiceMetrics, ServiceState, TokenBucket

__all__ = [
    "SERVICE_SCHEMA",
    "BackgroundServer",
    "CommunityAnswer",
    "EditOutcome",
    "HealthInfo",
    "HierarchyAnswer",
    "KappaAnswer",
    "ProtocolError",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloadError",
    "ServiceServer",
    "ServiceState",
    "TemplateAnswer",
    "TokenBucket",
    "run_server",
]
