"""Built-in template patterns.

The paper's three case-study patterns (Figure 4) plus two complementary
patterns that fall out of the same machinery (Stable, Densifying).

Each pattern is a :class:`~repro.templates.spec.TemplateSpec` whose
predicates transcribe the paper's §V definitions:

* **New Form Clique** — formed entirely by new edges among original
  vertices; its characteristic triangle has 3 new edges and 3 original
  vertices (Fig 4(d)); no other triangle type can occur.
* **Bridge Clique** — merges two previously-disconnected cliques; its
  characteristic triangle has 3 original vertices, 2 new edges and 1
  original edge (Fig 4(e)); triangles made of 3 original edges are also
  possible (the paper's △BCD example).
* **New Join Clique** — an original clique joined by new vertices; the
  characteristic triangle contains one new vertex and an original edge
  between two original vertices (Fig 4(f)); triangles of all-new edges
  (among the new vertices) and of all-original edges (the old clique) are
  possible.
"""

from __future__ import annotations

from .spec import (
    NEW,
    ORIGINAL,
    TemplateSpec,
    TriangleView,
    no_possible_triangles,
)


def _new_form_characteristic(view: TriangleView) -> bool:
    """3 new edges, 3 original vertices (Fig 4(d))."""
    return view.count_edges(NEW) == 3 and view.count_vertices(ORIGINAL) == 3


NEW_FORM = TemplateSpec(
    name="New Form Clique",
    characteristic=_new_form_characteristic,
    possible=no_possible_triangles,
)


def _bridge_characteristic(view: TriangleView) -> bool:
    """3 original vertices, 2 new edges, 1 original edge (Fig 4(e))."""
    return (
        view.count_vertices(ORIGINAL) == 3
        and view.count_edges(NEW) == 2
        and view.count_edges(ORIGINAL) == 1
    )


def _bridge_possible(view: TriangleView) -> bool:
    """Triangles of 3 original edges can sit inside a bridge clique."""
    return view.count_edges(ORIGINAL) == 3


BRIDGE = TemplateSpec(
    name="Bridge Clique",
    characteristic=_bridge_characteristic,
    possible=_bridge_possible,
)


def _new_join_characteristic(view: TriangleView) -> bool:
    """One new vertex joined to an original 2-vertex clique (Fig 4(f)).

    The new vertex contributes two new edges; the third edge is an original
    edge between original vertices.
    """
    return (
        view.count_vertices(NEW) == 1
        and view.count_vertices(ORIGINAL) == 2
        and view.count_edges(NEW) == 2
        and view.count_edges(ORIGINAL) == 1
    )


def _new_join_possible(view: TriangleView) -> bool:
    """All-new-edge triangles (new members) or all-original triangles
    (the pre-existing clique) — the paper's △ABC / △DEF examples."""
    return view.count_edges(NEW) == 3 or view.count_edges(ORIGINAL) == 3


NEW_JOIN = TemplateSpec(
    name="New Join Clique",
    characteristic=_new_join_characteristic,
    possible=_new_join_possible,
)


def _stable_characteristic(view: TriangleView) -> bool:
    """3 original edges and vertices: structure that predates the change."""
    return view.count_edges(ORIGINAL) == 3 and view.count_vertices(ORIGINAL) == 3


STABLE = TemplateSpec(
    name="Stable Clique",
    characteristic=_stable_characteristic,
    possible=no_possible_triangles,
)
"""Cliques made entirely of original edges — the persistent backbone.

Not one of the paper's three case studies, but the natural complement: on
an evolving graph, comparing the Stable Clique distribution against the
New Form distribution separates what a network *is* from what it is
*becoming*.  On a static graph with attribute labels it selects the
intra-attribute cliques (the paper's Fig 12 uses exactly the inverse
labelling).
"""


def _densifying_characteristic(view: TriangleView) -> bool:
    """Exactly one new edge closing a triangle among original vertices."""
    return (
        view.count_edges(NEW) == 1
        and view.count_edges(ORIGINAL) == 2
        and view.count_vertices(ORIGINAL) == 3
    )


def _densifying_possible(view: TriangleView) -> bool:
    return view.count_edges(ORIGINAL) == 3


DENSIFYING = TemplateSpec(
    name="Densifying Clique",
    characteristic=_densifying_characteristic,
    possible=_densifying_possible,
)
"""Near-cliques completed by single new edges.

Each characteristic triangle is an old open wedge closed by one new edge —
a community knitting itself tighter rather than merging with another or
recruiting outsiders.  A high Densifying reading with a low Bridge reading
distinguishes consolidation from expansion in an evolving network.
"""


BUILTIN_TEMPLATES = {
    "new_form": NEW_FORM,
    "bridge": BRIDGE,
    "new_join": NEW_JOIN,
    "stable": STABLE,
    "densifying": DENSIFYING,
}
