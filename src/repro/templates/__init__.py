"""Template pattern cliques (paper Algorithm 4): specs, library, detector."""

from .detect import TemplateDetection, detect_on_snapshots, detect_template_cliques
from .library import (
    BRIDGE,
    BUILTIN_TEMPLATES,
    DENSIFYING,
    NEW_FORM,
    NEW_JOIN,
    STABLE,
)
from .spec import (
    NEW,
    ORIGINAL,
    Labeling,
    TemplateSpec,
    TriangleView,
    labeling_from_partition,
    labeling_from_snapshots,
    no_possible_triangles,
)

__all__ = [
    "BRIDGE",
    "BUILTIN_TEMPLATES",
    "DENSIFYING",
    "Labeling",
    "NEW",
    "NEW_FORM",
    "NEW_JOIN",
    "ORIGINAL",
    "STABLE",
    "TemplateDetection",
    "TemplateSpec",
    "TriangleView",
    "detect_on_snapshots",
    "detect_template_cliques",
    "labeling_from_partition",
    "labeling_from_snapshots",
    "no_possible_triangles",
]
