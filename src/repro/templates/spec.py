"""Template pattern specifications (paper §V, Algorithm 4).

A *template pattern clique* is defined by two triangle predicates:

* **characteristic triangles** — 3-vertex cliques of the pattern such that
  every vertex of any pattern clique is covered by at least one of them
  (the paper's requirements 1-2).  Their vertices and edges seed the special
  subgraph.
* **possible triangles** — the other triangle types that may occur inside a
  pattern clique; evaluated only among vertices already marked special.

Predicates look at a triangle through its edge and vertex labels.  Labels
are plain strings — ``"new"`` / ``"original"`` for evolving graphs (the
paper's red/black in Figure 4), or any attribute-derived labels for static
graphs (the PPI Bridge variant labels inter-complex edges "new").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple

from ..exceptions import TemplateError
from ..graph.edge import Edge, Triangle, Vertex, canonical_edge, triangle_edges
from ..graph.undirected import Graph

NEW = "new"
ORIGINAL = "original"


@dataclass(frozen=True)
class TriangleView:
    """A triangle plus its labels, as seen by template predicates.

    ``edge_labels`` and ``vertex_labels`` are aligned with
    ``triangle_edges(triangle)`` and ``triangle`` respectively.
    """

    triangle: Triangle
    edge_labels: Tuple[str, str, str]
    vertex_labels: Tuple[str, str, str]

    def count_edges(self, label: str) -> int:
        """How many of the triangle's edges carry ``label``."""
        return sum(1 for l in self.edge_labels if l == label)

    def count_vertices(self, label: str) -> int:
        """How many of the triangle's vertices carry ``label``."""
        return sum(1 for l in self.vertex_labels if l == label)


TrianglePredicate = Callable[[TriangleView], bool]


@dataclass(frozen=True)
class TemplateSpec:
    """A user-defined template pattern.

    Attributes
    ----------
    name:
        Human-readable pattern name ("New Form Clique", ...).
    characteristic:
        Predicate selecting characteristic triangles (Algorithm 4 step 1).
    possible:
        Predicate selecting the additional triangle types allowed inside
        pattern cliques (step 4); evaluated only on triangles whose three
        vertices are already special.  Use ``no_possible_triangles`` when
        the pattern admits none (New Form).
    """

    name: str
    characteristic: TrianglePredicate
    possible: TrianglePredicate


def no_possible_triangles(view: TriangleView) -> bool:
    """Predicate for patterns without extra triangle types."""
    return False


class Labeling:
    """Edge and vertex labels over a graph.

    Built either from explicit mappings or from a pair of snapshots (see
    :func:`labeling_from_snapshots`).  Unlabelled items default to
    ``ORIGINAL`` — convenient for static graphs where only the interesting
    minority is tagged.
    """

    def __init__(
        self,
        edge_labels: Mapping[Edge, str] | None = None,
        vertex_labels: Mapping[Vertex, str] | None = None,
        *,
        default: str = ORIGINAL,
    ) -> None:
        self._edges: Dict[Edge, str] = dict(edge_labels or {})
        self._vertices: Dict[Vertex, str] = dict(vertex_labels or {})
        self._default = default

    def edge_label(self, u: Vertex, v: Vertex) -> str:
        return self._edges.get(canonical_edge(u, v), self._default)

    def vertex_label(self, vertex: Vertex) -> str:
        return self._vertices.get(vertex, self._default)

    def view(self, triangle: Triangle) -> TriangleView:
        """Assemble the labelled view of a canonical triangle."""
        edges = triangle_edges(triangle)
        return TriangleView(
            triangle=triangle,
            edge_labels=tuple(self._edges.get(e, self._default) for e in edges),
            vertex_labels=tuple(
                self._vertices.get(v, self._default) for v in triangle
            ),
        )


def labeling_from_snapshots(old_graph: Graph, new_graph: Graph) -> Labeling:
    """Label the union of two snapshots: present-in-old => original.

    This realizes the paper's black/red convention of Figure 4 for evolving
    graphs (OG -> NG).
    """
    from ..graph.snapshots import classify_edges, classify_vertices

    return Labeling(
        edge_labels=classify_edges(old_graph, new_graph),
        vertex_labels=classify_vertices(old_graph, new_graph),
    )


def labeling_from_partition(
    graph: Graph, partition: Mapping[Vertex, object]
) -> Labeling:
    """Label edges crossing a vertex partition as ``"new"``.

    The paper's static PPI variant (Fig 12): an edge is "new" when it joins
    two different complexes, vertices keep their default label.  Vertices
    missing from ``partition`` raise :class:`TemplateError` — silently
    treating them as one extra complex would fabricate bridges.
    """
    missing = [v for v in graph.vertices() if v not in partition]
    if missing:
        raise TemplateError(
            f"partition misses {len(missing)} vertices, e.g. "
            f"{sorted(missing, key=repr)[:3]}"
        )
    edge_labels = {
        (u, v): (NEW if partition[u] != partition[v] else ORIGINAL)
        for u, v in graph.edges()
    }
    return Labeling(edge_labels=edge_labels)
