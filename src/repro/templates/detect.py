"""Algorithm 4: detecting template pattern cliques.

Pipeline (paper §V):

1. enumerate all triangles of the arena graph; the ones satisfying the
   spec's *characteristic* predicate mark their edges and vertices special
   (steps 1-3);
2. triangles whose three vertices are special and that satisfy the
   *possible* predicate mark their edges special too (steps 4-6);
3. build the special subgraph :math:`G_{spe}` (step 7) and run Algorithm 1
   on it (step 8);
4. score edges: special edges get ``kappa + 2`` inside :math:`G_{spe}`,
   everything else 0 (steps 9-13);
5. the caller plots the distribution with the ordinary density-plot
   machinery (step 14) or enumerates the densest pattern cliques directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine import resolve_engine
from ..graph.edge import Edge, Triangle, Vertex, triangle_edges
from ..graph.triangles import enumerate_triangles
from ..graph.undirected import Graph
from ..core.extract import dense_communities
from ..core.triangle_kcore import TriangleKCoreResult
from ..viz.density_plot import DensityPlot, density_plot_from_scores
from .spec import Labeling, TemplateSpec


@dataclass
class TemplateDetection:
    """Everything Algorithm 4 produces for one pattern on one graph."""

    spec_name: str
    arena: Graph
    special_vertices: Set[Vertex]
    special_edges: Set[Edge]
    characteristic_triangles: List[Triangle]
    possible_triangles: List[Triangle]
    special_graph: Graph
    result: TriangleKCoreResult
    scores: Dict[Edge, int] = field(default_factory=dict)

    def plot(self, *, title: str = "", y_mode: str = "reachability") -> DensityPlot:
        """Step 14: the pattern's clique-distribution density plot.

        Plotted over the full arena graph so pattern cliques stand out
        against the zeroed background, exactly like the paper's Figs 9-12.
        """
        return density_plot_from_scores(
            self.arena,
            self.scores,
            title=title or f"{self.spec_name} distribution",
            y_mode=y_mode,
        )

    def densest_cliques(
        self, *, min_kappa: int = 1
    ) -> Iterator[Tuple[int, Set[Vertex]]]:
        """Pattern cliques densest-first as ``(kappa, vertex set)`` pairs.

        ``kappa + 2`` approximates the pattern clique's vertex count; the
        case studies report the first item (the paper's red-circled clique).
        """
        return dense_communities(self.special_graph, self.result, min_kappa=min_kappa)

    @property
    def max_clique_size_estimate(self) -> int:
        """``max kappa + 2`` over special edges (0 when nothing matched)."""
        if not self.result.kappa:
            return 0
        return self.result.max_kappa + 2


def detect_template_cliques(
    arena: Graph,
    labeling: Labeling,
    spec: TemplateSpec,
    *,
    backend: Optional[str] = None,
    engine: Optional[object] = None,
) -> TemplateDetection:
    """Run Algorithm 4 for ``spec`` on ``arena`` with the given labels.

    ``arena`` is the graph where patterns live — for evolving graphs the
    union of both snapshots (so deleted-but-original edges still count as
    context), for static graphs the graph itself.
    """
    characteristic: List[Triangle] = []
    deferred: List[Triangle] = []
    special_vertices: Set[Vertex] = set()
    special_edges: Set[Edge] = set()

    # Steps 1-3: characteristic triangles mark vertices and edges special.
    for triangle in enumerate_triangles(arena):
        view = labeling.view(triangle)
        if spec.characteristic(view):
            characteristic.append(triangle)
            special_vertices.update(triangle)
            special_edges.update(triangle_edges(triangle))
        else:
            deferred.append(triangle)

    # Steps 4-6: possible triangles among special vertices mark edges.
    possible: List[Triangle] = []
    for triangle in deferred:
        if not all(v in special_vertices for v in triangle):
            continue
        if spec.possible(labeling.view(triangle)):
            possible.append(triangle)
            special_edges.update(triangle_edges(triangle))

    # Step 7: the special subgraph (special vertices even when isolated).
    special_graph = Graph(vertices=special_vertices)
    for u, v in special_edges:
        special_graph.add_edge(u, v, exist_ok=True)

    # Step 8: Algorithm 1 on the special subgraph.  G_spe is built fresh on
    # every call, so skip the cache but keep engine dispatch/instrumentation.
    result = resolve_engine(engine).decompose(
        special_graph, backend=backend, use_cache=False
    )

    # Steps 9-13: per-edge scores over the whole arena.
    scores: Dict[Edge, int] = {}
    for edge in arena.edges():
        if edge in special_edges:
            scores[edge] = result.kappa[edge] + 2
        else:
            scores[edge] = 0

    return TemplateDetection(
        spec_name=spec.name,
        arena=arena,
        special_vertices=special_vertices,
        special_edges=special_edges,
        characteristic_triangles=sorted(characteristic),
        possible_triangles=sorted(possible),
        special_graph=special_graph,
        result=result,
        scores=scores,
    )


def detect_on_snapshots(
    old_graph: Graph,
    new_graph: Graph,
    spec: TemplateSpec,
    *,
    backend: Optional[str] = None,
    engine: Optional[object] = None,
) -> TemplateDetection:
    """Convenience: Algorithm 4 on an evolving graph (OG -> NG).

    The arena is the union graph and the labeling follows the paper's
    black/red convention (original = present in OG).
    """
    from ..graph.snapshots import union_graph
    from .spec import labeling_from_snapshots

    arena = union_graph(old_graph, new_graph)
    labeling = labeling_from_snapshots(old_graph, new_graph)
    return detect_template_cliques(
        arena, labeling, spec, backend=backend, engine=engine
    )
