"""``repro.engine`` — the unified decomposition engine.

One instrumented, cached, backend-dispatched path for every
:math:`\\kappa(e)` consumer.  See :mod:`repro.engine.engine` for the
design; the short version:

* :class:`Engine` — backend registry (``reference``/``csr``/``parallel``/
  ``auto`` plus the snapshot-oriented ``dynamic`` strategy), a
  version-keyed artifact cache over
  :attr:`Graph.version <repro.graph.undirected.Graph.version>`,
  :meth:`Engine.map_decompose <repro.engine.engine.Engine.map_decompose>`
  batch service, and :class:`EngineStats` instrumentation;
* :func:`get_default_engine` / :func:`set_default_engine` /
  :func:`resolve_engine` — the module-level default every consumer API
  falls back to when no ``engine=`` handle is threaded;
* :func:`decompose` — one-call convenience over the default engine.
"""

from .engine import (
    BACKENDS,
    BackendFn,
    Engine,
    decompose,
    get_default_engine,
    resolve_engine,
    set_default_engine,
)
from .stats import STATS_SCHEMA, EngineStats

__all__ = [
    "BACKENDS",
    "BackendFn",
    "Engine",
    "EngineStats",
    "STATS_SCHEMA",
    "decompose",
    "get_default_engine",
    "resolve_engine",
    "set_default_engine",
]
