"""The unified decomposition engine: one dispatched, cached, instrumented path.

Every consumer of :math:`\\kappa(e)` — template detection, Dual View
Plots, timelines, robustness sweeps, community/local/hierarchy queries,
baselines, the CLI — routes through an :class:`Engine` instead of calling
:func:`~repro.core.triangle_kcore.triangle_kcore_decomposition` directly.
The engine owns three concerns those layers previously re-implemented (or
simply lacked):

**Backend registry.**  ``"reference"``, ``"csr"``, ``"csr-vec"``,
``"parallel"``, ``"parallel-vec"``, ``"external"`` (out-of-core spill —
see :mod:`repro.fast.external`) and ``"auto"`` dispatch exactly as
before (the composition policy lives in :mod:`repro.fast` — see
DESIGN.md "Kernel layering"), plus a ``"dynamic"`` strategy: the first decomposition warms a
:class:`~repro.core.dynamic.DynamicTriangleKCore`, and every subsequent
call answers by diffing the requested graph against the maintainer's state
and applying the delta incrementally (Algorithm 2) — the shape snapshot
streams and what-if analyses want.  Custom backends can be registered.

**Artifact cache.**  Decomposition results, triangle supports, triangle
lists and counts are memoized per graph *structural state*, keyed by
``(id(graph), graph.version)`` — the monotonically-increasing mutation
counter on :class:`~repro.graph.undirected.Graph`.  A mutation bumps the
version, so a stale artifact can never be served; an unmutated graph's
repeat decomposition is a dictionary lookup.  Object identity is guarded
with a weak reference, so a recycled ``id()`` after garbage collection
cannot alias a dead graph's artifacts.

**Instrumentation.**  Per-stage wall time, triangle/peel/bucket-op
counters and cache hit/miss statistics accumulate in
:class:`~repro.engine.stats.EngineStats`; ``stats_dict()`` returns the
structured payload the CLI's ``--stats`` flag emits.

A module-level default engine (:func:`get_default_engine`) serves callers
that do not thread an explicit engine handle; every consumer API accepts
``engine=`` to override it.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from ..exceptions import ReproError
from ..graph.edge import Edge, Triangle, Vertex
from ..graph.undirected import Graph
from ..core.dynamic import DynamicTriangleKCore, KappaDelta
from ..core.triangle_kcore import TriangleKCoreResult, triangle_kcore_decomposition
from .stats import EngineStats

#: A backend implementation: ``(engine, graph, store_membership) -> result``.
BackendFn = Callable[["Engine", Graph, bool], TriangleKCoreResult]


class _GraphEntry:
    """Cached artifacts for one structural state of one live graph."""

    __slots__ = ("ref", "version", "artifacts")

    def __init__(self, graph: Graph) -> None:
        self.ref = weakref.ref(graph)
        self.version = graph.version
        self.artifacts: Dict[tuple, object] = {}


def _decompose_reference(
    engine: "Engine", graph: Graph, store_membership: bool
) -> TriangleKCoreResult:
    counters: Dict[str, int] = {}
    with engine.stats.stage("decompose.reference"):
        result = triangle_kcore_decomposition(
            graph,
            backend="reference",
            store_membership=store_membership,
            counters=counters,
        )
    engine.stats.merge_counters(counters)
    return result


def _decompose_csr_family(
    engine: "Engine", graph: Graph, store_membership: bool, backend: str
) -> TriangleKCoreResult:
    """``"csr"``/``"csr-vec"``: in-process kernels + selected peel executor."""
    if store_membership:
        raise ValueError(
            f"backend={backend!r} does not support membership bookkeeping; "
            "use backend='reference' (or 'auto')"
        )
    from ..fast import backend_executor, csr_decomposition

    counters: Dict[str, int] = {}
    peel_stats: Dict[str, object] = {}
    with engine.stats.stage(f"decompose.{backend}"):
        result = csr_decomposition(
            graph,
            counters=counters,
            executor=backend_executor(backend),
            peel_stats=peel_stats,
        )
    engine.stats.merge_counters(counters)
    engine.stats.record_peel(peel_stats)
    return result


def _decompose_csr(
    engine: "Engine", graph: Graph, store_membership: bool
) -> TriangleKCoreResult:
    return _decompose_csr_family(engine, graph, store_membership, "csr")


def _decompose_csr_vec(
    engine: "Engine", graph: Graph, store_membership: bool
) -> TriangleKCoreResult:
    return _decompose_csr_family(engine, graph, store_membership, "csr-vec")


def _decompose_parallel_family(
    engine: "Engine", graph: Graph, store_membership: bool, backend: str
) -> TriangleKCoreResult:
    """``"parallel"``/``"parallel-vec"``: sharded enumeration + peel."""
    if store_membership:
        raise ValueError(
            f"backend={backend!r} does not support membership bookkeeping; "
            "use backend='reference' (or 'auto')"
        )
    from ..fast import backend_executor
    from ..fast.parallel import ParallelInfo, parallel_decomposition

    counters: Dict[str, int] = {}
    peel_stats: Dict[str, object] = {}
    info: ParallelInfo = {}
    with engine.stats.stage(f"decompose.{backend}"):
        result = parallel_decomposition(
            graph,
            workers=engine.workers,
            counters=counters,
            info=info,
            executor=backend_executor(backend),
            peel_stats=peel_stats,
        )
    engine.stats.merge_counters(counters)
    engine.stats.record_parallel(
        info.get("workers", 1),
        info.get("shard_seconds", []),
        str(info.get("transport", "inprocess")),
        int(info.get("bytes_shipped", 0)),
    )
    engine.stats.record_peel(peel_stats)
    return result


def _decompose_parallel(
    engine: "Engine", graph: Graph, store_membership: bool
) -> TriangleKCoreResult:
    return _decompose_parallel_family(engine, graph, store_membership, "parallel")


def _decompose_parallel_vec(
    engine: "Engine", graph: Graph, store_membership: bool
) -> TriangleKCoreResult:
    return _decompose_parallel_family(
        engine, graph, store_membership, "parallel-vec"
    )


def _decompose_external(
    engine: "Engine", graph: Graph, store_membership: bool
) -> TriangleKCoreResult:
    """``"external"``: out-of-core partitioned spill + reconciliation peel."""
    if store_membership:
        raise ValueError(
            "backend='external' does not support membership bookkeeping; "
            "use backend='reference' (or 'auto')"
        )
    from ..fast.external import ExternalInfo, external_decomposition

    counters: Dict[str, int] = {}
    peel_stats: Dict[str, object] = {}
    info: ExternalInfo = {}
    with engine.stats.stage("decompose.external"):
        result = external_decomposition(
            graph,
            spill_dir=engine.spill_dir,
            memory_budget=engine.memory_budget,
            counters=counters,
            peel_stats=peel_stats,
            info=info,
        )
    engine.stats.merge_counters(counters)
    engine.stats.record_external(
        info.get("partitions", 1),
        info.get("passes", 0),
        info.get("bytes_mapped", 0),
        info.get("bound_prune_hits", 0),
    )
    engine.stats.record_peel(peel_stats)
    return result


def _decompose_dynamic(
    engine: "Engine", graph: Graph, store_membership: bool
) -> TriangleKCoreResult:
    if store_membership:
        raise ValueError(
            "backend='dynamic' does not support membership bookkeeping; "
            "use backend='reference' (or 'auto')"
        )
    return engine._dynamic_decompose(graph)


_BUILTIN_BACKENDS: Dict[str, BackendFn] = {
    "reference": _decompose_reference,
    "csr": _decompose_csr,
    "csr-vec": _decompose_csr_vec,
    "parallel": _decompose_parallel,
    "parallel-vec": _decompose_parallel_vec,
    "external": _decompose_external,
    "dynamic": _decompose_dynamic,
}

#: Backend names the engine accepts out of the box (order: CLI display).
#: Derived from the registry so the two can never drift apart.
BACKENDS = ("auto",) + tuple(_BUILTIN_BACKENDS)


class Engine:
    """Backend dispatch + version-keyed artifact cache + instrumentation.

    Parameters
    ----------
    default_backend:
        Backend used when a call does not name one.  Any registered name
        or ``"auto"``.
    max_cached_graphs:
        How many distinct graphs keep artifacts simultaneously (LRU
        eviction).  ``0`` disables the cache entirely — every call
        recomputes, which the differential-testing oracles use to stay
        independent of each other.
    dynamic_strategy:
        Update strategy the ``"dynamic"`` backend hands to
        :meth:`~repro.core.dynamic.DynamicTriangleKCore.apply`:
        ``"incremental"``, ``"batch"`` (one affected-region pass for the
        whole edit batch), ``"recompute"``, or ``"auto"`` (default —
        incremental below the measured churn crossover, one recompute
        above it).
    workers:
        Worker-process count for the ``"parallel"`` backend, and the
        input to ``"auto"``'s parallel-escalation policy.  ``None``
        (default) means one per CPU; ``1`` disables pool spawning
        entirely (the parallel backend then runs its in-process
        short-circuit and ``"auto"`` never escalates past ``"csr"``).
    spill_dir:
        Spill directory for the ``"external"`` backend.  ``None``
        (default) uses a private temporary directory per decomposition,
        removed afterwards; naming one keeps the spilled columns around
        between calls (and across processes).
    memory_budget:
        Resident-memory budget in bytes for the ``"external"`` backend's
        partition sizing, and the input to ``"auto"``'s out-of-core
        escalation: when the estimated CSR payload of a graph exceeds the
        budget, ``"auto"`` resolves to ``"external"``.  ``None``
        (default) disables budget-based escalation.

    Examples
    --------
    >>> from repro.graph.undirected import complete_graph
    >>> engine = Engine()
    >>> g = complete_graph(5)
    >>> engine.decompose(g).max_kappa
    3
    >>> engine.decompose(g) is engine.decompose(g)   # cached: same object
    True
    >>> _ = g.add_edge(0, 99), g.add_edge(1, 99)     # mutation invalidates
    >>> engine.decompose(g).kappa_of(0, 99)
    1
    """

    def __init__(
        self,
        *,
        default_backend: str = "auto",
        max_cached_graphs: int = 8,
        dynamic_strategy: str = "auto",
        workers: Optional[int] = None,
        spill_dir: Optional[str] = None,
        memory_budget: Optional[int] = None,
    ) -> None:
        if max_cached_graphs < 0:
            raise ValueError(
                f"max_cached_graphs must be >= 0, got {max_cached_graphs}"
            )
        if dynamic_strategy not in ("incremental", "recompute", "auto",
                                    "batch"):
            raise ValueError(
                "dynamic_strategy must be incremental/recompute/auto/batch, "
                f"got {dynamic_strategy!r}"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if memory_budget is not None and memory_budget < 1:
            raise ValueError(
                f"memory_budget must be >= 1 byte, got {memory_budget}"
            )
        self._registry: Dict[str, BackendFn] = dict(_BUILTIN_BACKENDS)
        self._stats_sections: Dict[str, Callable[[], Dict[str, object]]] = {}
        self._cache: "OrderedDict[int, _GraphEntry]" = OrderedDict()
        self._max_cached_graphs = max_cached_graphs
        self.dynamic_strategy = dynamic_strategy
        self.workers = workers
        self.spill_dir = spill_dir
        self.memory_budget = memory_budget
        self.stats = EngineStats()
        #: Warm maintainer behind the "dynamic" backend (one per engine).
        self._dynamic: Optional[DynamicTriangleKCore] = None
        #: (graph weakref, version, maintainer) behind :meth:`perturbed`.
        self._perturb_base: Optional[
            Tuple["weakref.ref[Graph]", int, DynamicTriangleKCore]
        ] = None
        self.default_backend = default_backend  # validated by the property

    # ------------------------------------------------------------------ #
    # backend registry
    # ------------------------------------------------------------------ #

    @property
    def default_backend(self) -> str:
        return self._default_backend

    @default_backend.setter
    def default_backend(self, name: str) -> None:
        if name != "auto" and name not in self._registry:
            raise ValueError(
                f"unknown backend {name!r}; expected one of {self.backends()}"
            )
        self._default_backend = name

    def backends(self) -> Tuple[str, ...]:
        """Every dispatchable name: ``"auto"`` plus the registry."""
        return ("auto",) + tuple(
            name for name in self._registry if name != "auto"
        )

    def register_backend(
        self, name: str, fn: BackendFn, *, replace: bool = False
    ) -> None:
        """Register a custom decomposition backend under ``name``.

        ``fn(engine, graph, store_membership)`` must return a
        :class:`TriangleKCoreResult` whose kappa map equals Algorithm 1's
        on ``graph`` — the cache will serve its artifacts interchangeably
        for that name.
        """
        if name == "auto":
            raise ValueError("'auto' is the dispatch policy, not a backend")
        if name in self._registry and not replace:
            raise ValueError(
                f"backend {name!r} already registered (pass replace=True)"
            )
        self._registry[name] = fn

    def resolve(
        self, backend: Optional[str], graph: Graph, *, store_membership: bool = False
    ) -> str:
        """Resolve a requested backend name to a concrete registry entry.

        ``None`` means the engine default; ``"auto"`` picks reference/csr
        by the :mod:`repro.fast` size policy (and degrades to reference
        when membership bookkeeping is requested).
        """
        name = self.default_backend if backend is None else backend
        if name == "auto":
            from ..fast import resolve_backend

            return resolve_backend(
                "auto",
                graph,
                needs_reference=store_membership,
                workers=self.workers,
                memory_budget=self.memory_budget,
            )
        if name not in self._registry:
            raise ValueError(
                f"unknown backend {name!r}; expected one of {self.backends()}"
            )
        return name

    # ------------------------------------------------------------------ #
    # artifact cache
    # ------------------------------------------------------------------ #

    def _entry(self, graph: Graph) -> Optional[_GraphEntry]:
        """Live, version-current cache entry for ``graph`` (else None)."""
        entry = self._cache.get(id(graph))
        if entry is None:
            return None
        if entry.ref() is not graph or entry.version != graph.version:
            # Mutated since caching, or a recycled id() from a dead graph:
            # either way every stored artifact is void.
            del self._cache[id(graph)]
            return None
        return entry

    def _cache_get(self, graph: Graph, key: tuple) -> Optional[object]:
        if self._max_cached_graphs == 0:
            return None
        entry = self._entry(graph)
        if entry is None:
            return None
        artifact = entry.artifacts.get(key)
        if artifact is not None:
            self._cache.move_to_end(id(graph))
        return artifact

    def _cache_put(self, graph: Graph, key: tuple, artifact: object) -> None:
        if self._max_cached_graphs == 0:
            return
        entry = self._entry(graph)
        if entry is None:
            entry = _GraphEntry(graph)
            self._cache[id(graph)] = entry
        entry.artifacts[key] = artifact
        self._cache.move_to_end(id(graph))
        while len(self._cache) > self._max_cached_graphs:
            self._cache.popitem(last=False)

    def invalidate(self, graph: Optional[Graph] = None) -> None:
        """Drop cached artifacts for ``graph`` (or everything when None).

        Never *required* for correctness — version keying already fences
        mutations — but useful to release memory deterministically.
        """
        if graph is None:
            self._cache.clear()
        else:
            self._cache.pop(id(graph), None)

    def cached_artifact_count(self) -> int:
        """Total artifacts currently held (all graphs); for tests/metrics."""
        return sum(len(entry.artifacts) for entry in self._cache.values())

    # ------------------------------------------------------------------ #
    # decomposition API
    # ------------------------------------------------------------------ #

    def decompose(
        self,
        graph: Graph,
        *,
        backend: Optional[str] = None,
        store_membership: bool = False,
        use_cache: bool = True,
    ) -> TriangleKCoreResult:
        """Algorithm 1 on ``graph`` via the resolved backend, memoized.

        The returned object is shared with the cache — treat it as
        immutable (every public consumer already does).
        """
        name = self.resolve(backend, graph, store_membership=store_membership)
        key = ("decompose", name, store_membership)
        if use_cache:
            cached = self._cache_get(graph, key)
            if cached is not None:
                self.stats.bump("cache_hits")
                return cached  # type: ignore[return-value]
            self.stats.bump("cache_misses")
        self.stats.bump("decompositions")
        self.stats.record_backend(name)
        result = self._registry[name](self, graph, store_membership)
        if use_cache:
            self._cache_put(graph, key, result)
        return result

    def map_decompose(
        self,
        graphs: "Iterable[Graph]",
        *,
        backend: Optional[str] = None,
        store_membership: bool = False,
        workers: Optional[int] = None,
        use_cache: bool = True,
    ) -> List[TriangleKCoreResult]:
        """Decompose many graphs, one result per input, in input order.

        Each graph is served through :meth:`decompose` — and therefore
        through the version-keyed artifact cache, so duplicate (identical
        object, unmutated) graphs in the batch cost one decomposition and
        ``len - 1`` cache hits.  ``backend`` resolves per graph exactly as
        in :meth:`decompose` (``"auto"`` may pick differently for graphs
        of different sizes within one batch).

        ``workers`` overrides the engine's worker count for the duration
        of the batch — the knob for "decompose this list with the
        parallel backend at N workers" without constructing a second
        engine.  The pool itself is per-decomposition; graphs are *not*
        fanned out against each other (results would then race for the
        warm dynamic maintainer and the stats counters — per-graph
        sharding already owns the parallelism).
        """
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        saved_workers = self.workers
        if workers is not None:
            self.workers = workers
        self.stats.bump("batch_calls")
        try:
            results: List[TriangleKCoreResult] = []
            with self.stats.stage("decompose.batch"):
                for graph in graphs:
                    results.append(
                        self.decompose(
                            graph,
                            backend=backend,
                            store_membership=store_membership,
                            use_cache=use_cache,
                        )
                    )
        finally:
            self.workers = saved_workers
        self.stats.bump("batch_graphs", len(results))
        return results

    def triangle_supports(
        self, graph: Graph, *, backend: Optional[str] = None, use_cache: bool = True
    ) -> Dict[Edge, int]:
        """Cached ``{edge: triangle support}`` (the pre-peel bounds)."""
        from ..graph.triangles import triangle_supports

        name = self.resolve(backend, graph)
        if name == "dynamic":  # supports are a static artifact
            name = "reference"
        key = ("supports", name)
        if use_cache:
            cached = self._cache_get(graph, key)
            if cached is not None:
                self.stats.bump("cache_hits")
                return cached  # type: ignore[return-value]
            self.stats.bump("cache_misses")
        with self.stats.stage(f"supports.{name}"):
            supports = triangle_supports(graph, backend=name)
        if use_cache:
            self._cache_put(graph, key, supports)
        return supports

    def triangles(
        self, graph: Graph, *, use_cache: bool = True
    ) -> Tuple[Triangle, ...]:
        """Cached tuple of canonical triangles of ``graph``."""
        from ..graph.triangles import enumerate_triangles

        key = ("triangles",)
        if use_cache:
            cached = self._cache_get(graph, key)
            if cached is not None:
                self.stats.bump("cache_hits")
                return cached  # type: ignore[return-value]
            self.stats.bump("cache_misses")
        with self.stats.stage("triangles.enumerate"):
            triangles = tuple(enumerate_triangles(graph))
        if use_cache:
            self._cache_put(graph, key, triangles)
        return triangles

    def count_triangles(
        self, graph: Graph, *, backend: Optional[str] = None, use_cache: bool = True
    ) -> int:
        """Cached total triangle count."""
        from ..graph.triangles import count_triangles

        name = self.resolve(backend, graph)
        if name == "dynamic":
            name = "reference"
        key = ("triangle_count",)
        if use_cache:
            cached = self._cache_get(graph, key)
            if cached is not None:
                self.stats.bump("cache_hits")
                return cached  # type: ignore[return-value]
            self.stats.bump("cache_misses")
        with self.stats.stage(f"count.{name}"):
            count = count_triangles(graph, backend=name)
        if use_cache:
            self._cache_put(graph, key, count)
        return count

    # ------------------------------------------------------------------ #
    # dynamic strategy
    # ------------------------------------------------------------------ #

    def _dynamic_decompose(self, graph: Graph) -> TriangleKCoreResult:
        """Serve a decomposition by diff-applying against a warm maintainer."""
        from ..graph.io import graph_diff

        maintainer = self._dynamic
        if maintainer is None:
            with self.stats.stage("dynamic.warm"):
                maintainer = DynamicTriangleKCore(graph, copy=True)
            self._dynamic = maintainer
            self.stats.bump("dynamic_cold_starts")
        else:
            with self.stats.stage("dynamic.diff"):
                added, removed = graph_diff(maintainer.graph, graph)
            if added or removed:
                with self.stats.stage("dynamic.apply"):
                    update = maintainer.apply(
                        added=added,
                        removed=removed,
                        strategy=self.dynamic_strategy,
                    )
                self.stats.bump("dynamic_updates")
                self.stats.bump("dynamic_edges_applied", len(added) + len(removed))
                self.stats.bump(
                    "dynamic_candidates_examined", update.candidates_examined
                )
                self.stats.bump("dynamic_edges_changed", update.edges_changed)
                self.stats.bump("dynamic_levels_touched", update.levels_touched)
                if update.strategy == "batch":
                    self.stats.record_batch(
                        update.region_edges,
                        update.settle_iterations,
                        update.bound_prune_hits,
                    )
        with self.stats.stage("dynamic.snapshot"):
            return maintainer.result()

    def reset_dynamic(self) -> None:
        """Forget the warm dynamic maintainer (next call cold-starts)."""
        self._dynamic = None

    def maintainer(
        self,
        graph: Graph,
        *,
        copy: bool = True,
        store_triangles: bool = False,
        seed_backend: Optional[str] = None,
    ) -> DynamicTriangleKCore:
        """Build an instrumented-by-construction dynamic maintainer.

        The warm-up decomposition is timed under ``maintainer.warm`` and
        counted; the maintainer itself is returned un-wrapped (its own
        per-update :class:`~repro.core.dynamic.UpdateStats` stay the
        fine-grained instrument).

        ``seed_backend`` warms the maintainer from a decomposition served
        through :meth:`decompose` with that backend (so a registered fast
        backend — or the artifact cache — pays for the initial kappa map
        instead of the maintainer's private reference run).  This is the
        shared-state hook long-lived consumers such as
        :mod:`repro.service` use: one decomposition, reused for both the
        engine cache and the authoritative dynamic state.
        """
        seed_result = None
        if seed_backend is not None:
            name = self.resolve(seed_backend, graph)
            if name == "dynamic":  # the maintainer *is* the dynamic state
                name = "reference"
            seed_result = self.decompose(graph, backend=name)
        with self.stats.stage("maintainer.warm"):
            maintainer = DynamicTriangleKCore(
                graph,
                copy=copy,
                store_triangles=store_triangles,
                seed_result=seed_result,
            )
        self.stats.bump("maintainers_built")
        return maintainer

    def _perturb_maintainer(self, graph: Graph) -> DynamicTriangleKCore:
        """Warm maintainer mirroring ``graph``'s current structural state.

        Reused across perturbations of the same unmutated graph — the
        robustness-sweep access pattern — and rebuilt (via the version
        fence) the moment the base graph changes.
        """
        base = self._perturb_base
        if base is not None:
            ref, version, maintainer = base
            if ref() is graph and version == graph.version:
                return maintainer
        with self.stats.stage("perturb.warm"):
            maintainer = DynamicTriangleKCore(graph, copy=True)
        self._perturb_base = (weakref.ref(graph), graph.version, maintainer)
        self.stats.bump("perturb_cold_starts")
        return maintainer

    @contextmanager
    def perturbed(
        self,
        graph: Graph,
        *,
        added: Tuple[Tuple[Vertex, Vertex], ...] = (),
        removed: Tuple[Tuple[Vertex, Vertex], ...] = (),
    ) -> Iterator[DynamicTriangleKCore]:
        """What-if context: apply a diff, measure, revert — no recompute.

        Applies ``added``/``removed`` incrementally to the warm
        perturbation maintainer, yields it (read ``.kappa`` / ``.graph``
        for the perturbed state; treat both as read-only), and reverts the
        diff on exit — even when the body raises.
        """
        maintainer = self._perturb_maintainer(graph)
        added = tuple(added)
        removed = tuple(removed)
        with self.stats.stage("perturb.apply"):
            maintainer.apply(
                added=added, removed=removed, strategy=self.dynamic_strategy
            )
        self.stats.bump("perturbations")
        try:
            yield maintainer
        finally:
            with self.stats.stage("perturb.revert"):
                maintainer.apply(
                    added=removed, removed=added, strategy=self.dynamic_strategy
                )

    def diff_decompose(
        self,
        graph: Graph,
        *,
        added: Tuple[Tuple[Vertex, Vertex], ...] = (),
        removed: Tuple[Tuple[Vertex, Vertex], ...] = (),
    ) -> KappaDelta:
        """One-shot what-if delta: what would this diff do to kappa?

        Convenience over :meth:`perturbed` for callers that only want the
        :class:`~repro.core.dynamic.KappaDelta`, not the perturbed state.
        The base graph is left untouched (the diff is reverted).
        """
        maintainer = self._perturb_maintainer(graph)
        added = tuple(added)
        removed = tuple(removed)
        with self.stats.stage("perturb.apply"):
            delta = maintainer.diff_apply(
                added=added, removed=removed, strategy=self.dynamic_strategy
            )
        self.stats.bump("perturbations")
        with self.stats.stage("perturb.revert"):
            maintainer.apply(
                added=removed, removed=added, strategy=self.dynamic_strategy
            )
        return delta

    # ------------------------------------------------------------------ #
    # instrumentation
    # ------------------------------------------------------------------ #

    def register_stats_section(
        self,
        name: str,
        provider: Callable[[], Dict[str, object]],
        *,
        replace: bool = False,
    ) -> None:
        """Attach an extra named section to :meth:`stats_dict`.

        ``provider()`` is called on every ``stats_dict()`` and its return
        value is embedded under ``payload[name]``.  Sections are additive
        on top of the ``repro.engine.stats/6`` schema (every /5 key is
        untouched); a long-lived consumer — the service layer — uses this
        to publish its own telemetry through the one ``--stats`` pipe.
        Reserved schema keys cannot be shadowed.
        """
        reserved = {
            "schema",
            "counters",
            "backend_calls",
            "stage_seconds",
            "batch",
            "parallel",
            "peel",
            "external",
            "workspace",
            "default_backend",
            "cached_graphs",
            "cached_artifacts",
        }
        if name in reserved:
            raise ValueError(f"section name {name!r} shadows a schema key")
        if name in self._stats_sections and not replace:
            raise ValueError(
                f"stats section {name!r} already registered (pass replace=True)"
            )
        self._stats_sections[name] = provider

    def stats_dict(self) -> Dict[str, object]:
        """Structured instrumentation payload (see ``--stats`` on the CLI)."""
        payload = self.stats.as_dict()
        payload["default_backend"] = self.default_backend
        payload["cached_graphs"] = len(self._cache)
        payload["cached_artifacts"] = self.cached_artifact_count()
        for name, provider in self._stats_sections.items():
            payload[name] = provider()
        return payload

    def reset_stats(self) -> None:
        self.stats.reset()

    def __repr__(self) -> str:
        return (
            f"Engine(default_backend={self.default_backend!r}, "
            f"cached_graphs={len(self._cache)}, "
            f"backends={list(self.backends())})"
        )


# ---------------------------------------------------------------------- #
# module-level default engine
# ---------------------------------------------------------------------- #

_default_engine: Optional[Engine] = None


def get_default_engine() -> Engine:
    """The process-wide default engine (created lazily)."""
    global _default_engine
    if _default_engine is None:
        _default_engine = Engine()
    return _default_engine


def set_default_engine(engine: Optional[Engine]) -> None:
    """Replace the process-wide default engine (None resets to lazy-new)."""
    global _default_engine
    if engine is not None and not isinstance(engine, Engine):
        raise ReproError(f"expected an Engine, got {type(engine).__name__}")
    _default_engine = engine


def resolve_engine(engine: Optional[Engine]) -> Engine:
    """``engine`` if given, else the default — the consumer-layer helper."""
    return engine if engine is not None else get_default_engine()


def decompose(
    graph: Graph,
    *,
    backend: Optional[str] = None,
    store_membership: bool = False,
    engine: Optional[Engine] = None,
    use_cache: bool = True,
) -> TriangleKCoreResult:
    """Module-level convenience: decompose via ``engine`` or the default."""
    return resolve_engine(engine).decompose(
        graph,
        backend=backend,
        store_membership=store_membership,
        use_cache=use_cache,
    )
