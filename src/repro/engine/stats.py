"""Engine instrumentation: per-stage wall time, work counters, cache stats.

One :class:`EngineStats` instance rides along with each
:class:`~repro.engine.engine.Engine`.  All layers that route through the
engine — decompositions, the dynamic snapshot strategy, cache lookups —
report into it, so a single ``engine.stats_dict()`` (or the CLI's
``--stats`` flag) tells the whole story of a run: where the time went,
how much algorithmic work was done, and how often the artifact cache
saved a recompute.

The structured schema (``as_dict``)::

    {
      "schema": "repro.engine.stats/6",
      "counters":      {"decompositions": ..., "cache_hits": ...,
                        "triangles_enumerated": ..., "edges_peeled": ...,
                        "bucket_decrements": ..., "dynamic_updates": ...},
      "backend_calls": {"reference": ..., "csr": ..., "csr-vec": ...,
                        "parallel": ..., "parallel-vec": ...,
                        "external": ..., "dynamic": ...},
      "stage_seconds": {"decompose.reference": ..., "dynamic.diff": ...},
      "parallel":      {"decompositions": ..., "workers": ...,
                        "shards": ..., "shard_seconds": [...],
                        "transport": ..., "bytes_shipped": ...},
      "peel":          {"executor": ..., "runs": ..., "levels": ...,
                        "batched_decrements": ..., "bound_skips": ...},
      "external":      {"decompositions": ..., "partitions": ...,
                        "passes": ..., "bytes_mapped": ...,
                        "bound_prune_hits": ...},
      "batch":         {"applies": ..., "region_edges": ...,
                        "settle_iterations": ..., "bound_prune_hits": ...},
      "workspace":     {"commands": ..., "graphs": ..., "views": ...,
                        "views_created": ..., "view_refreshes": ...,
                        "view_invalidations": ..., "materializations": ...},
    }

Schema history: ``/1`` lacked the ``"parallel"`` section, ``/2`` lacked
the ``"batch"`` section, ``/3`` lacked the ``"peel"`` section and the
``"transport"``/``"bytes_shipped"`` keys of ``"parallel"``, ``/4``
lacked the ``"external"`` section, ``/5`` lacked the ``"workspace"``
section; every key of each older schema is present unchanged in the
next, so readers of the old schemas keep working (the compatibility
test pins this).

Counter values are exact, not sampled: the static counters are derived
from state Algorithm 1 computes anyway (see the ``counters`` hook on
:func:`repro.core.triangle_kcore.triangle_kcore_decomposition`), and the
dynamic counters aggregate the maintainer's own
:class:`~repro.core.dynamic.UpdateStats`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Sequence

#: Version tag for the structured stats payload; bump on schema changes.
STATS_SCHEMA = "repro.engine.stats/6"


class EngineStats:
    """Mutable instrumentation accumulator for one engine."""

    __slots__ = ("counters", "backend_calls", "stage_seconds", "parallel",
                 "peel", "external", "batch", "workspace")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.backend_calls: Dict[str, int] = {}
        self.stage_seconds: Dict[str, float] = {}
        #: Aggregate view of every "parallel"-backend decomposition: worker
        #: count of the most recent run, cumulative shard count, and the
        #: per-shard wall times of the most recent run (the engine's
        #: coarse analogue of ParallelInfo — see repro.fast.parallel).
        self.parallel: Dict[str, object] = {}
        #: Aggregate view of every kernel-backend peel: executor name of
        #: the most recent run, cumulative run count, and cumulative
        #: levels / batched decrements / bound skips (see PeelStats in
        #: repro.fast.peelers).
        self.peel: Dict[str, object] = {}
        #: Aggregate view of every "external"-backend decomposition:
        #: partition count of the most recent run plus cumulative
        #: partition-scan passes, bytes mapped, and admission-bound prune
        #: hits (see ExternalInfo in repro.fast.external).
        self.external: Dict[str, int] = {}
        #: Aggregate view of every batch-strategy dynamic update: apply
        #: count plus cumulative affected-region size, settle worklist
        #: iterations and bound-prune hits (see UpdateStats in
        #: repro.core.dynamic).
        self.batch: Dict[str, int] = {}
        #: Aggregate view of the interactive workspace riding on this
        #: engine: cumulative command / view-lifecycle counters plus
        #: current graph and view gauges (see repro.workspace).
        self.workspace: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def record_backend(self, name: str) -> None:
        """Count one dispatch into backend ``name``."""
        self.backend_calls[name] = self.backend_calls.get(name, 0) + 1

    def add_seconds(self, stage: str, seconds: float) -> None:
        """Accumulate wall time under ``stage``."""
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager timing one stage (accumulates across calls)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_seconds(name, time.perf_counter() - start)

    def merge_counters(self, counters: Dict[str, int]) -> None:
        """Fold a decomposition's ``counters`` hook output into the totals."""
        for name, value in counters.items():
            self.bump(name, value)

    def record_parallel(
        self,
        workers: int,
        shard_seconds: Sequence[float],
        transport: str = "inprocess",
        bytes_shipped: int = 0,
    ) -> None:
        """Record one ``"parallel"``-family decomposition.

        ``workers``/``shard_seconds``/``transport``/``bytes_shipped``
        describe the most recent run (they overwrite);
        ``decompositions``/``shards`` accumulate.  ``bytes_shipped`` is
        what actually crossed the process boundary per worker — the tiny
        shared-memory attach descriptor under the ``shm`` transport, the
        whole array payload under ``pickle``, 0 in process.
        """
        shard_list: List[float] = [round(s, 6) for s in shard_seconds]
        self.parallel["decompositions"] = (
            int(self.parallel.get("decompositions", 0)) + 1
        )
        self.parallel["workers"] = int(workers)
        self.parallel["shards"] = (
            int(self.parallel.get("shards", 0)) + len(shard_list)
        )
        self.parallel["shard_seconds"] = shard_list
        self.parallel["transport"] = str(transport)
        self.parallel["bytes_shipped"] = int(bytes_shipped)

    def record_peel(self, peel_stats: Dict[str, object]) -> None:
        """Fold one peel executor run (PeelStats) into the ``peel`` section.

        ``executor`` reflects the most recent run; ``runs``/``levels``/
        ``batched_decrements``/``bound_skips`` accumulate.
        """
        if not peel_stats:
            return
        self.peel["executor"] = str(peel_stats.get("executor", "scalar"))
        self.peel["runs"] = int(self.peel.get("runs", 0)) + 1
        for key in ("levels", "batched_decrements", "bound_skips"):
            self.peel[key] = int(self.peel.get(key, 0)) + int(
                peel_stats.get(key, 0)
            )

    def record_external(
        self,
        partitions: int,
        passes: int,
        bytes_mapped: int,
        bound_prune_hits: int,
    ) -> None:
        """Record one ``"external"``-backend decomposition.

        ``partitions`` reflects the most recent run (it overwrites);
        ``decompositions``/``passes``/``bytes_mapped``/
        ``bound_prune_hits`` accumulate.
        """
        self.external["decompositions"] = (
            self.external.get("decompositions", 0) + 1
        )
        self.external["partitions"] = int(partitions)
        self.external["passes"] = (
            self.external.get("passes", 0) + int(passes)
        )
        self.external["bytes_mapped"] = (
            self.external.get("bytes_mapped", 0) + int(bytes_mapped)
        )
        self.external["bound_prune_hits"] = (
            self.external.get("bound_prune_hits", 0) + int(bound_prune_hits)
        )

    def record_batch(
        self,
        region_edges: int,
        settle_iterations: int,
        bound_prune_hits: int,
    ) -> None:
        """Record one ``strategy="batch"`` dynamic update (all cumulative)."""
        self.batch["applies"] = self.batch.get("applies", 0) + 1
        self.batch["region_edges"] = (
            self.batch.get("region_edges", 0) + int(region_edges)
        )
        self.batch["settle_iterations"] = (
            self.batch.get("settle_iterations", 0) + int(settle_iterations)
        )
        self.batch["bound_prune_hits"] = (
            self.batch.get("bound_prune_hits", 0) + int(bound_prune_hits)
        )

    def record_workspace(
        self,
        *,
        graphs: int,
        views: int,
        commands: int = 0,
        views_created: int = 0,
        view_refreshes: int = 0,
        view_invalidations: int = 0,
        materializations: int = 0,
    ) -> None:
        """Record workspace activity.

        ``graphs``/``views`` are gauges (they overwrite with the current
        population); everything else accumulates.
        """
        self.workspace["graphs"] = int(graphs)
        self.workspace["views"] = int(views)
        for key, amount in (
            ("commands", commands),
            ("views_created", views_created),
            ("view_refreshes", view_refreshes),
            ("view_invalidations", view_invalidations),
            ("materializations", materializations),
        ):
            self.workspace[key] = self.workspace.get(key, 0) + int(amount)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    @property
    def cache_hits(self) -> int:
        return self.counters.get("cache_hits", 0)

    @property
    def cache_misses(self) -> int:
        return self.counters.get("cache_misses", 0)

    def as_dict(self) -> Dict[str, object]:
        """The structured instrumentation payload (JSON-serializable)."""
        return {
            "schema": STATS_SCHEMA,
            "counters": dict(sorted(self.counters.items())),
            "backend_calls": dict(sorted(self.backend_calls.items())),
            "stage_seconds": {
                stage: round(seconds, 6)
                for stage, seconds in sorted(self.stage_seconds.items())
            },
            "parallel": dict(self.parallel),
            "peel": dict(self.peel),
            "external": dict(sorted(self.external.items())),
            "batch": dict(sorted(self.batch.items())),
            "workspace": dict(sorted(self.workspace.items())),
        }

    def reset(self) -> None:
        """Zero every counter and timer."""
        self.counters.clear()
        self.backend_calls.clear()
        self.stage_seconds.clear()
        self.parallel.clear()
        self.peel.clear()
        self.external.clear()
        self.batch.clear()
        self.workspace.clear()

    def __repr__(self) -> str:
        return (
            f"EngineStats(decompositions="
            f"{self.counters.get('decompositions', 0)}, "
            f"hits={self.cache_hits}, misses={self.cache_misses})"
        )
