"""Triangle K-Core motifs within networks.

A full reproduction of *"Extracting, Analyzing and Visualizing Triangle
K-Core Motifs within Networks"* (Zhang & Parthasarathy, ICDE 2012):

* static Triangle K-Core decomposition (Algorithm 1),
* incremental maintenance under dynamic edge updates (Algorithms 2/5-7),
* CSV-style density plots and Dual View Plots (Algorithm 3),
* template-pattern clique detection (Algorithm 4),
* baselines (CSV, DN-Graph TriDN/BiTriDN) and synthetic dataset stand-ins.

Quickstart::

    from repro import Graph, triangle_kcore_decomposition

    g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
    result = triangle_kcore_decomposition(g)
    print(result.kappa_of(0, 1))   # 1: edge {0,1} is in one triangle
"""

from .core import (
    DynamicTriangleKCore,
    TriangleKCoreResult,
    kcore_decomposition,
    triangle_kcore_decomposition,
)
from .engine import Engine, get_default_engine, set_default_engine
from .exceptions import (
    DatasetError,
    DecompositionError,
    EdgeExistsError,
    EdgeNotFoundError,
    GraphError,
    ReproError,
    SelfLoopError,
    TemplateError,
    ValidationError,
    VertexNotFoundError,
)
from .graph import Graph, SnapshotStream, canonical_edge, canonical_triangle

__version__ = "1.6.0"

__all__ = [
    "DatasetError",
    "DecompositionError",
    "DynamicTriangleKCore",
    "EdgeExistsError",
    "EdgeNotFoundError",
    "Engine",
    "Graph",
    "GraphError",
    "ReproError",
    "SelfLoopError",
    "SnapshotStream",
    "TemplateError",
    "TriangleKCoreResult",
    "ValidationError",
    "VertexNotFoundError",
    "__version__",
    "canonical_edge",
    "canonical_triangle",
    "get_default_engine",
    "kcore_decomposition",
    "set_default_engine",
    "triangle_kcore_decomposition",
]
