# Development convenience targets.
#
#   make install    editable install (falls back to setup.py develop on
#                   environments without PEP 660 support)
#   make test       full unit/property/integration suite
#   make bench      regenerate every paper table & figure
#   make bench-engine  engine dispatch/cache/dynamic-timeline gates
#   make bench-parallel  parallel backend vs csr speedup gate
#   make bench-peel    vectorized vs scalar peel executor speedup gate
#   make bench-batch   batched maintenance vs per-op speedup gate
#   make bench-service  query-service closed-loop load generator
#   make bench-replication  read-scaling of 1 vs 2 replica processes
#   make bench-external  out-of-core decomposition under a capped RSS budget
#   make figures    alias for bench (outputs land in benchmarks/results/)
#   make examples   run all runnable examples
#   make artifacts  test + bench with logs captured at the repo root
#
# Every pytest/bench target exports PYTHONPATH=src so the targets work
# without an editable install (CI and fresh clones).

PYTHON ?= python3
export PYTHONPATH := src

.PHONY: install test bench bench-engine bench-parallel bench-peel bench-batch bench-service bench-replication bench-external figures examples artifacts clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-engine:
	$(PYTHON) -m pytest benchmarks/bench_engine_overhead.py -q

bench-parallel:
	$(PYTHON) benchmarks/bench_parallel_backend.py

bench-peel:
	$(PYTHON) benchmarks/bench_peel.py

bench-batch:
	$(PYTHON) benchmarks/bench_batch_update.py

bench-service:
	$(PYTHON) benchmarks/bench_service.py

bench-replication:
	$(PYTHON) benchmarks/bench_replication.py

bench-external:
	$(PYTHON) benchmarks/bench_scaling.py

figures: bench

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

artifacts:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
