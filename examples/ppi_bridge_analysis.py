#!/usr/bin/env python3
"""Static template patterns on biological data (paper Figure 12).

Labels inter-complex protein interactions as "new" edges and runs the
Bridge Clique detector to find proteins that tie two complexes together —
the paper's PRE1 / GLC7 / RNA14 findings.

Run with::

    python examples/ppi_bridge_analysis.py       # writes ppi_bridge.svg
"""

from repro.datasets import load
from repro.templates import BRIDGE, detect_template_cliques, labeling_from_partition
from repro.viz import density_plot_svg, graph_drawing_svg, save_svg


def main() -> None:
    ppi = load("ppi")
    print(f"interactome: {ppi.graph}")
    complexes = set(ppi.vertex_groups.values())
    print(f"complexes: {len(complexes)}")

    # "new" = inter-complex edge, "original" = intra-complex edge.
    labeling = labeling_from_partition(ppi.graph, ppi.vertex_groups)
    detection = detect_template_cliques(ppi.graph, labeling, BRIDGE)
    print(
        f"bridge structure: {len(detection.characteristic_triangles)} "
        f"characteristic triangles over {len(detection.special_vertices)} "
        "proteins"
    )

    print("\ntop bridge cliques (proteins spanning complexes):")
    pre1_region = None
    for index, (kappa, vertices) in enumerate(detection.densest_cliques()):
        if index >= 5:
            break
        groups = sorted({ppi.vertex_groups[v] for v in vertices})
        print(f"  #{index + 1}: ~{kappa + 2}-vertex bridge clique")
        for group in groups:
            members = sorted(v for v in vertices if ppi.vertex_groups[v] == group)
            print(f"      {group}: {', '.join(members)}")
        if pre1_region is None and "PRE1" in vertices:
            pre1_region = vertices

    # Figure 12(b): draw the PRE1 bridge with inter-complex edges in red.
    if pre1_region is not None:
        region = ppi.graph.subgraph(pre1_region)
        inter_complex = [
            (u, v)
            for u, v in region.edges()
            if ppi.vertex_groups[u] != ppi.vertex_groups[v]
        ]
        save_svg(
            graph_drawing_svg(region, highlight_edges=inter_complex),
            "ppi_bridge.svg",
        )
        print(
            f"\nwrote ppi_bridge.svg ({region.num_vertices} proteins, "
            f"{len(inter_complex)} inter-complex edges highlighted)"
        )

    save_svg(
        density_plot_svg(detection.plot(title="PPI bridge cliques")),
        "ppi_bridge_distribution.svg",
    )
    print("wrote ppi_bridge_distribution.svg")


if __name__ == "__main__":
    main()
