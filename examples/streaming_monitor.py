#!/usr/bin/env python3
"""Online density monitoring of a temporal interaction stream.

Simulates a message stream in which a coordinated group starts interacting
heavily partway through, and shows the sliding-window monitor raising an
alert the moment their clique-like structure forms — the paper's event-
detection motivation, running online on top of the incremental
maintenance algorithms.

Run with::

    python examples/streaming_monitor.py
"""

import random

from repro.analysis import SlidingWindowDensity


def interaction_stream(total_steps: int, seed: int = 7):
    """Background chatter among 60 actors; a 6-actor cell activates at
    t=400 and coordinates densely for 150 steps."""
    rng = random.Random(seed)
    cell = list(range(100, 106))
    for t in range(total_steps):
        if 400 <= t < 550 and t % 2 == 0:
            u, v = rng.sample(cell, 2)
        else:
            u, v = rng.sample(range(60), 2)
        yield u, v, t


def main() -> None:
    monitor = SlidingWindowDensity(window=120)
    alert_threshold = 3  # report when an approximate 5-clique forms
    alerted_at = None
    cleared_at = None

    for u, v, t in interaction_stream(800):
        monitor.observe(u, v, t)
        if alerted_at is None and monitor.alert_when(alert_threshold):
            alerted_at = t
            level, members = monitor.densest_community()
            print(f"t={t}: ALERT kappa={level} "
                  f"(~{level + 2}-clique) among {sorted(members)}")
        if alerted_at is not None and cleared_at is None:
            if not monitor.alert_when(alert_threshold):
                cleared_at = t
                print(f"t={t}: structure dissolved "
                      f"(window max kappa {monitor.max_kappa})")

    print(f"\nstream done: alert at t={alerted_at}, cleared at t={cleared_at}")
    print(f"final window: {monitor.num_edges} live edges, "
          f"max kappa {monitor.max_kappa}")
    assert alerted_at is not None and 400 <= alerted_at < 550
    assert cleared_at is not None and cleared_at >= 550


if __name__ == "__main__":
    main()
