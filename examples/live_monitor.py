#!/usr/bin/env python3
"""Live monitoring of a triangle k-core query service.

Boots the service in-process on a small collaboration network, then plays
both roles of a production deployment: an *ingester* streaming edit
batches into ``POST /edits`` (a dense working group forms, then partially
dissolves) and a *monitor* polling ``GET /healthz`` and ``GET /stats``
the way a dashboard would — watching ``max_kappa`` rise and fall and the
service's own latency percentiles accumulate, all over real loopback
HTTP.

Run with::

    python examples/live_monitor.py
"""

from repro.graph import erdos_renyi
from repro.service import BackgroundServer, ServiceClient


def edit_batches():
    """A working group (vertices 100..105) densifies, then loses members."""
    group = list(range(100, 106))
    clique = [
        ["add", u, v]
        for i, u in enumerate(group)
        for v in group[i + 1:]
    ]
    yield "group forms", clique[:5]
    yield "group densifies", clique[5:]
    yield "two members leave", [
        ["remove_vertex", group[0]], ["remove_vertex", group[1]]
    ]


def main() -> None:
    graph = erdos_renyi(60, 0.08, seed=11)
    with BackgroundServer(graph) as server:
        with ServiceClient("127.0.0.1", server.port) as client:
            health = client.healthz()
            print(
                f"service up on port {server.port}: "
                f"|V|={health.vertices} |E|={health.edges} "
                f"max_kappa={health.max_kappa} (version {health.version})"
            )

            peak = health.max_kappa
            for label, ops in edit_batches():
                outcome = client.edits(ops)
                health = client.healthz()
                peak = max(peak, health.max_kappa)
                print(
                    f"  {label}: applied {outcome.applied}/{outcome.ops} ops"
                    f" (+{outcome.promoted} promoted,"
                    f" -{outcome.demoted} demoted edges)"
                    f" -> max_kappa={health.max_kappa}"
                    f" at version {health.version}"
                )

            # The densest point: the 6-clique puts every group edge in the
            # kappa=4 class; after two members leave, a 4-clique remains.
            assert peak >= 4
            assert health.max_kappa >= 2

            answer = client.community(102)
            level, members = answer.level, answer.members
            print(
                f"densest community of vertex 102: level {level}, "
                f"members {sorted(members)}"
            )

            service = client.stats()["service"]
            health_lat = service["requests"].get("healthz", {})
            rejected = sum(service["rejected"].values())
            print(
                f"dashboard view: {service['total_requests']} requests "
                f"served ({rejected} rejected), healthz p95 "
                f"{health_lat.get('p95_ms', 0.0):.2f} ms, uptime "
                f"{service['uptime_seconds']:.1f}s"
            )
    print("server drained cleanly")


if __name__ == "__main__":
    main()
