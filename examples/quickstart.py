#!/usr/bin/env python3
"""Quickstart: decompose a graph, read the motifs, draw the density plot.

Run with::

    python examples/quickstart.py
"""

from repro import Graph, triangle_kcore_decomposition
from repro.core import dense_communities, max_core_of_edge
from repro.graph import planted_cliques
from repro.viz import density_plot, render


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A tiny hand-made graph: the paper's Figure 2 example.
    # ------------------------------------------------------------------ #
    g = Graph(
        edges=[
            ("A", "B"), ("A", "C"), ("B", "C"), ("B", "D"),
            ("B", "E"), ("C", "D"), ("C", "E"), ("D", "E"),
        ]
    )
    result = triangle_kcore_decomposition(g)
    print("Edge kappa values (paper Fig 2):")
    for edge, kappa in sorted(result.kappa.items()):
        print(f"  {edge}: kappa={kappa}  (co-clique size {kappa + 2})")

    # The maximum Triangle K-Core of edge B-C is the K4 on B,C,D,E.
    core = max_core_of_edge(g, result, "B", "C")
    print(f"\nMax Triangle K-Core of (B,C): {sorted(core.vertices())}")

    # ------------------------------------------------------------------ #
    # 2. A bigger graph with planted cliques: find them from kappa alone.
    # ------------------------------------------------------------------ #
    planted = planted_cliques(150, [12, 9, 7], background_p=0.015, seed=42)
    result = triangle_kcore_decomposition(planted.graph)
    print(f"\nPlanted graph: {planted.graph}, max kappa = {result.max_kappa}")

    print("Densest communities (kappa, size):")
    for kappa, vertices in dense_communities(planted.graph, result):
        if kappa < 3:
            break
        print(f"  kappa={kappa} -> {len(vertices)} vertices "
              f"(approximate {kappa + 2}-clique)")

    # ------------------------------------------------------------------ #
    # 3. The CSV-style density plot, in the terminal.
    # ------------------------------------------------------------------ #
    plot = density_plot(planted.graph, result, title="planted cliques")
    print()
    print(render(plot, height=10, width=90))


if __name__ == "__main__":
    main()
