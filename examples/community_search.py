#!/usr/bin/env python3
"""Community search and event monitoring on an evolving network.

Combines the library's extension APIs: the :class:`CommunityIndex` for
instant "which dense group is this node in?" queries, and the template-
based event detector scanning a snapshot stream for structural events —
the paper's §I promise of "identifying the portions of the network that
are changing" made executable.

Run with::

    python examples/community_search.py
"""

from repro.analysis import detect_events, track_communities
from repro.core import CommunityIndex
from repro.datasets import load
from repro.graph import SnapshotStream
from repro.viz import save_svg, timeline_svg


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Community search on the PPI interactome.
    # ------------------------------------------------------------------ #
    ppi = load("ppi")
    index = CommunityIndex(ppi.graph)
    print(f"interactome: {ppi.graph}, max level {index.max_level}")

    for protein in ("RPT1", "PRE1", "PAP1"):
        level, members = index.densest_community_of_vertex(protein)
        print(
            f"  {protein}: level-{level} community "
            f"(~{level + 2}-clique) with {len(members)} proteins: "
            f"{', '.join(sorted(members)[:6])}..."
        )

    print("\nall communities at the top level:")
    for rank, edges in enumerate(index.communities_at(index.max_level), start=1):
        vertices = {v for e in edges for v in e}
        print(f"  #{rank}: {len(vertices)} proteins")

    # ------------------------------------------------------------------ #
    # 2. Event monitoring over the DBLP snapshot stream.
    # ------------------------------------------------------------------ #
    dblp = load("dblp")
    stream = SnapshotStream(dblp.snapshots)
    print(f"\nscanning {len(stream)} yearly snapshots for pattern events...")
    events = detect_events(stream, min_kappa=3, max_events_per_step=2)
    for event in events:
        year = dblp.snapshot_labels[event.step]
        members = ", ".join(map(str, event.vertices[:4]))
        print(
            f"  {year}: {event.pattern} "
            f"(~{event.clique_size_estimate}-clique): {members}, ..."
        )

    # ------------------------------------------------------------------ #
    # 3. Community-evolution swimlane over the stream.
    # ------------------------------------------------------------------ #
    timeline = track_communities(stream, min_kappa=4, max_communities=12)
    print(f"\nevolution summary: {timeline.summary()}")
    save_svg(
        timeline_svg(timeline, labels=dblp.snapshot_labels),
        "dblp_timeline.svg",
    )
    print("wrote dblp_timeline.svg")


if __name__ == "__main__":
    main()
