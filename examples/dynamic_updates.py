#!/usr/bin/env python3
"""Dynamic maintenance: track dense structure in an evolving network.

Simulates a social network receiving a stream of edge insertions and
deletions, maintaining every edge's Triangle K-Core number incrementally
(paper Algorithm 2) and comparing against recompute-from-scratch — the
Table III experiment as a script.

Run with::

    python examples/dynamic_updates.py
"""

import random
import time

from repro.baselines import RecomputeBaseline
from repro.core import DynamicTriangleKCore, triangle_kcore_decomposition
from repro.graph import powerlaw_cluster, random_edge_sample, random_non_edges


def main() -> None:
    # A clustered scale-free network, the regime where dense structure
    # actually changes when edges churn.
    graph = powerlaw_cluster(3000, 4, 0.6, seed=9)
    print(f"network: {graph}")

    maintainer = DynamicTriangleKCore(graph)
    print(f"initial max kappa: {maintainer.max_kappa}")

    # ------------------------------------------------------------------ #
    # 1. Single-edge updates with live kappa readings.
    # ------------------------------------------------------------------ #
    rng = random.Random(3)
    vertices = sorted(graph.vertices())
    print("\napplying 10 single updates:")
    for step in range(10):
        u, v = rng.sample(vertices, 2)
        if maintainer.graph.has_edge(u, v):
            stats = maintainer.remove_edge(u, v)
            op = "del"
        else:
            stats = maintainer.add_edge(u, v)
            op = "add"
        print(
            f"  {op} ({u},{v}): {stats.edges_changed} kappa values changed, "
            f"{stats.candidates_examined} candidates examined"
        )

    # ------------------------------------------------------------------ #
    # 2. The Table III comparison: keep kappa fresh after every change.
    #    An application reading densities continuously would otherwise
    #    re-run Algorithm 1 per change; the incremental path answers after
    #    each update at a fraction of that cost.
    # ------------------------------------------------------------------ #
    base = maintainer.graph.copy()
    removed = random_edge_sample(base, 0.001, seed=11)
    added = random_non_edges(base, len(removed), seed=12, triangle_closing=True)
    changes = len(added) + len(removed)
    print(f"\nstreaming churn: +{len(added)} / -{len(removed)} edges")

    incremental = DynamicTriangleKCore(base)
    start = time.perf_counter()
    incremental.apply(added=added, removed=removed)
    update_seconds = time.perf_counter() - start

    baseline = RecomputeBaseline(base)
    run = baseline.apply(added=added, removed=removed)

    assert incremental.kappa == baseline.kappa, "maintenance disagrees!"
    per_update = update_seconds / max(changes, 1)
    print(f"incremental: {update_seconds:.4f}s total, {per_update * 1e3:.2f}ms per change")
    print(f"one recompute (Algorithm 1 peel): {run.seconds:.4f}s")
    print(
        f"fresh-after-every-change speedup: "
        f"{run.seconds / per_update:.0f}x per change"
    )

    # ------------------------------------------------------------------ #
    # 3. Verify against a fresh static decomposition.
    # ------------------------------------------------------------------ #
    fresh = triangle_kcore_decomposition(incremental.graph)
    assert incremental.kappa == fresh.kappa
    print("\nincremental state verified against Algorithm 1 from scratch.")


if __name__ == "__main__":
    main()
