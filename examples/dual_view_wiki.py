#!/usr/bin/env python3
"""Dual View Plots (paper Algorithm 3 / Figure 8) on wiki-style snapshots.

Builds the two linked density plots for consecutive snapshots of an
article-reference graph, selects the changed cliques, and writes an SVG
showing both views with shared correspondence markers.

Run with::

    python examples/dual_view_wiki.py            # writes dual_view.svg
"""

from repro.analysis import clique_report, top_plateaus
from repro.datasets import ASTRONOMY_CLIQUE, load
from repro.viz import (
    dual_view_explorer_html,
    dual_view_from_snapshots,
    dual_view_svg,
    render,
    save_explorer,
    save_svg,
)


def main() -> None:
    dataset = load("wiki_snapshots")
    before, after = dataset.snapshots
    print(f"snapshot t:   {before}")
    print(f"snapshot t+1: {after}")

    plots = dual_view_from_snapshots(before, after)
    print(f"\nedges added between snapshots: {len(plots.added_edges)}")

    # plot(b) surfaces only cliques touched by new edges.  The tallest
    # plateaus are the evolution events worth explaining.
    print("\nchanged-clique plateaus in plot(b):")
    for plateau in top_plateaus(plots.after, 3, min_height=6):
        members = sorted(str(v) for v in plateau.vertices)
        print(f"  height {plateau.height}: {members[:4]} ...")

    # Correspondence: select the grown astronomy clique in both views.
    grown = ASTRONOMY_CLIQUE + ["Astrology"]
    plots.select(grown, label="astrology joins astronomy")
    located = plots.locate(["Astrology"])
    x_before, x_after = located["Astrology"]
    print(
        f"\n'Astrology' sits at x={x_before} in plot(a) and x={x_after} in "
        "plot(b) - the marker pair links them visually."
    )

    # The drill-down story of Fig 8(c).
    report_before = clique_report(before, grown)
    report_after = clique_report(after, grown)
    print(
        f"before: {len(report_before.missing_edges)} edges missing from the "
        f"11-vertex group; after: {len(report_after.missing_edges)} missing "
        "(a complete clique)"
    )

    print("\nplot(a):")
    print(render(plots.before, height=8, width=90))
    print("\nplot(b) - changed cliques only:")
    print(render(plots.after, height=8, width=90))

    save_svg(dual_view_svg(plots), "dual_view.svg")
    save_explorer(
        dual_view_explorer_html(plots, title="Wiki dual view explorer"),
        "dual_view_explorer.html",
    )
    print("\nwrote dual_view.svg and dual_view_explorer.html")
    print("open the explorer in a browser and drag-select the changed")
    print("cliques in the bottom view to highlight them in the top view.")


if __name__ == "__main__":
    main()
