#!/usr/bin/env python3
"""Probing real data: Les Misérables and the karate club.

Uses genuine datasets (bundled with networkx) to walk the full analyst
workflow on data no generator produced: decompose, read the hierarchy,
probe single edges with certified bounds, and export an interactive
explorer.

Run with::

    python examples/real_world_probe.py      # writes lesmis_explorer.html
"""

from repro.core import (
    CommunityHierarchy,
    kappa_bounds,
    max_triangle_kcore,
    triangle_kcore_decomposition,
)
from repro.datasets import load
from repro.viz import density_plot, explorer_html, render, save_explorer


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Les Misérables: who forms the densest ensemble?
    # ------------------------------------------------------------------ #
    lesmis = load("lesmis")
    print(f"Les Miserables co-occurrence network: {lesmis.graph}")

    k, core = max_triangle_kcore(lesmis.graph)
    print(
        f"densest structure: kappa {k} (~{k + 2}-clique), "
        f"{core.num_vertices} characters:"
    )
    print("  " + ", ".join(sorted(core.vertices())))

    result = triangle_kcore_decomposition(lesmis.graph)
    print("\ncommunity hierarchy (how the cast nests):")
    print(CommunityHierarchy(lesmis.graph, result).ascii_tree(max_children=3))

    # Certified per-edge probe without any decomposition.
    lower, upper = kappa_bounds(lesmis.graph, "Valjean", "Javert", radius=1, sweeps=1)
    true = result.kappa_of("Valjean", "Javert")
    print(
        f"\nprobe Valjean-Javert: bounds [{lower}, {upper}] "
        f"(exact kappa {true}) from the local neighborhood only"
    )

    plot = density_plot(lesmis.graph, result, title="Les Miserables")
    print()
    print(render(plot, height=8, width=80))
    save_explorer(
        explorer_html(plot, title="Les Miserables density explorer"),
        "lesmis_explorer.html",
    )
    print("\nwrote lesmis_explorer.html (open in a browser; drag a plateau)")

    # ------------------------------------------------------------------ #
    # 2. Karate club: factions vs dense cores.
    # ------------------------------------------------------------------ #
    karate = load("karate")
    result = triangle_kcore_decomposition(karate.graph)
    k, core = max_triangle_kcore(karate.graph)
    factions = {karate.vertex_groups[v] for v in core.vertices()}
    print(f"\nkarate club: densest motif is a ~{k + 2}-clique on "
          f"{sorted(core.vertices())}")
    print(f"faction membership of that core: {sorted(factions)}")


if __name__ == "__main__":
    main()
