#!/usr/bin/env python3
"""Template pattern cliques on an evolving collaboration graph.

Reproduces the paper's three DBLP case studies (Figures 9-11): New Form,
Bridge and New Join cliques between yearly snapshots, plus a custom
user-defined template to show the extension point.

Run with::

    python examples/template_patterns_dblp.py
"""

from repro.datasets import load, snapshot_pair
from repro.templates import (
    BRIDGE,
    DENSIFYING,
    NEW,
    NEW_FORM,
    NEW_JOIN,
    TemplateSpec,
    detect_on_snapshots,
)


def show_top(detection, count: int = 3) -> None:
    for index, (kappa, vertices) in enumerate(detection.densest_cliques()):
        if index >= count:
            break
        names = sorted(str(v) for v in vertices)
        print(f"  #{index + 1}: ~{kappa + 2}-vertex clique: {names[:6]}")


def main() -> None:
    dblp = load("dblp")
    print(f"snapshots: {dblp.snapshot_labels}")

    # ------------------------------------------------------------------ #
    # Figure 9: New Form cliques (2003 -> 2004).
    # ------------------------------------------------------------------ #
    old, new = snapshot_pair(dblp, "2003", "2004")
    detection = detect_on_snapshots(old, new, NEW_FORM)
    print("\nNew Form cliques, 2004 (first-ever collaborations):")
    show_top(detection)

    # ------------------------------------------------------------------ #
    # Figure 10: Bridge cliques (2003 -> 2004).
    # ------------------------------------------------------------------ #
    detection = detect_on_snapshots(old, new, BRIDGE)
    print("\nBridge cliques, 2003->2004 (groups merging):")
    show_top(detection)

    # ------------------------------------------------------------------ #
    # Figure 11: New Join cliques (2000 -> 2001).
    # ------------------------------------------------------------------ #
    old, new = snapshot_pair(dblp, "2000", "2001")
    detection = detect_on_snapshots(old, new, NEW_JOIN)
    print("\nNew Join cliques, 2001 (newcomers joining an existing group):")
    show_top(detection)

    # ------------------------------------------------------------------ #
    # Beyond the paper: the Densifying pattern (communities knitting
    # themselves tighter) and a fully custom one-liner — the paper's §V
    # point is that users define patterns on their own.
    # ------------------------------------------------------------------ #
    old, new = snapshot_pair(dblp, "2003", "2004")
    detection = detect_on_snapshots(old, new, DENSIFYING)
    print("\nDensifying cliques, 2003->2004 (wedges closing):")
    show_top(detection)

    heavy_rewire = TemplateSpec(
        name="Majority-New Clique",
        characteristic=lambda view: view.count_edges(NEW) >= 2,
        possible=lambda view: True,
    )
    detection = detect_on_snapshots(old, new, heavy_rewire)
    print("\nCustom 'majority-new' pattern, 2003->2004:")
    show_top(detection)
    print(
        f"  ({len(detection.characteristic_triangles)} characteristic "
        f"triangles, {len(detection.special_edges)} special edges)"
    )


if __name__ == "__main__":
    main()
