"""Tests for the clustered and evolving generators (Holme-Kim, forest fire)."""

import pytest

from repro.graph import (
    SnapshotStream,
    forest_fire,
    global_clustering_coefficient,
    growth_snapshots,
    powerlaw_cluster,
)


class TestPowerlawCluster:
    def test_size(self):
        g = powerlaw_cluster(200, 3, 0.5, seed=1)
        assert g.num_vertices == 200
        assert g.num_edges == 6 + 3 * (200 - 4)  # K4 seed + m per vertex

    def test_deterministic(self):
        assert powerlaw_cluster(100, 3, 0.5, seed=2) == powerlaw_cluster(
            100, 3, 0.5, seed=2
        )

    def test_triad_formation_raises_clustering(self):
        low = powerlaw_cluster(400, 3, 0.0, seed=3)
        high = powerlaw_cluster(400, 3, 0.9, seed=3)
        assert global_clustering_coefficient(high) > (
            global_clustering_coefficient(low)
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            powerlaw_cluster(5, 5, 0.5)
        with pytest.raises(ValueError):
            powerlaw_cluster(10, 2, 1.5)


class TestForestFire:
    def test_connected_and_sized(self):
        g = forest_fire(300, 0.37, seed=1)
        assert g.num_vertices == 300
        assert len(g.connected_components()) == 1

    def test_deterministic(self):
        assert forest_fire(150, 0.3, seed=4) == forest_fire(150, 0.3, seed=4)

    def test_higher_burn_probability_densifies(self):
        sparse = forest_fire(300, 0.1, seed=5)
        dense = forest_fire(300, 0.5, seed=5)
        assert dense.num_edges > sparse.num_edges

    def test_produces_triangles(self):
        g = forest_fire(300, 0.4, seed=6)
        assert global_clustering_coefficient(g) > 0.1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            forest_fire(10, 1.0)
        with pytest.raises(ValueError):
            forest_fire(0, 0.3)

    def test_single_vertex(self):
        g = forest_fire(1, 0.3)
        assert g.num_vertices == 1
        assert g.num_edges == 0


class TestGrowthSnapshots:
    def test_prefix_property(self):
        """Snapshot m is exactly the process state after m vertices (forest
        fire only ever adds edges incident to the newest vertex)."""
        snaps = growth_snapshots(200, 4, seed=7)
        full = forest_fire(200, 0.37, seed=7)
        for snapshot in snaps:
            for u, v in snapshot.edges():
                assert full.has_edge(u, v)
        assert snaps[-1] == full

    def test_monotone_growth(self):
        snaps = growth_snapshots(200, 5, seed=8)
        sizes = [s.num_edges for s in snaps]
        assert sizes == sorted(sizes)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            growth_snapshots(100, 0)

    def test_dynamic_maintenance_over_growth_stream(self):
        """Replay a growth stream through the maintainer; state must match
        a fresh decomposition at every snapshot."""
        from repro.core import DynamicTriangleKCore, triangle_kcore_decomposition
        from repro.graph.io import graph_diff

        snaps = growth_snapshots(150, 3, seed=9)
        stream = SnapshotStream(snaps)
        maintainer = DynamicTriangleKCore(stream[0])
        for index in range(1, len(stream)):
            added, removed = graph_diff(stream[index - 1], stream[index])
            for vertex in stream[index].vertices():
                if not maintainer.graph.has_vertex(vertex):
                    maintainer.add_vertex(vertex)
            maintainer.apply(added=added, removed=removed)
            expected = triangle_kcore_decomposition(stream[index]).kappa
            assert maintainer.kappa == expected
