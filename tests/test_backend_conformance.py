"""Cross-backend conformance: every registered backend, same answers.

The matrix axes:

* **backends** — every entry of the engine registry (``reference``,
  ``csr``, ``csr-vec``, ``parallel``, ``parallel-vec``, ``dynamic``) plus
  a dummy backend registered at test time through
  ``Engine.register_backend``, proving third-party entrants ride the same
  contract (new registry entries join the matrix automatically);
* **graphs** — the paper's Figure 2/3 examples, cliques, degenerate
  shapes, seeded random graphs, the final state of every committed fuzz
  corpus bundle, and hypothesis-generated graphs.

Asserted per cell: the kappa map equals the reference backend's exactly;
processing order is bit-identical within each executor family (``csr`` ==
``parallel``; ``csr-vec`` == ``parallel-vec``, both in process and over a
real pool with the shared-memory transport); triangle counts agree across
counting backends; membership bookkeeping is refused by every backend
that cannot provide it (error contract), and the ``auto`` policy degrades
instead of erroring.  Each check runs on a fresh cache-disabled engine so
no backend can serve another's artifact.
"""

from __future__ import annotations

import glob
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import triangle_kcore_decomposition
from repro.engine import Engine
from repro.engine.engine import _BUILTIN_BACKENDS, BACKENDS
from repro.fast import csr_decomposition, parallel_decomposition
from repro.graph import Graph, complete_graph, erdos_renyi
from repro.graph.triangles import count_triangles
from repro.testing import ReproBundle

ALL_BACKENDS = tuple(_BUILTIN_BACKENDS)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_PATHS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def fixed_graphs() -> dict:
    """Named graph zoo shared by every matrix cell."""
    two_k4 = complete_graph(4)
    for u in (10, 11, 12):
        two_k4.add_edge(3, u)
    for i, u in enumerate((10, 11, 12)):
        for v in (10, 11, 12)[i + 1 :]:
            two_k4.add_edge(u, v)
    return {
        "fig2": Graph(
            edges=[
                ("A", "B"), ("A", "C"), ("B", "C"), ("B", "D"),
                ("B", "E"), ("C", "D"), ("C", "E"), ("D", "E"),
            ]
        ),
        "fig3": Graph(
            edges=[
                ("A", "B"), ("B", "C"), ("A", "E"), ("A", "F"),
                ("E", "F"), ("C", "D"), ("C", "E"), ("D", "E"),
            ]
        ),
        "k5": complete_graph(5),
        "k7": complete_graph(7),
        "two_k4": two_k4,
        "empty": Graph(),
        "single_edge": Graph(edges=[(0, 1)]),
        "star": Graph(edges=[(0, i) for i in range(1, 12)]),
        "path": Graph(edges=[(i, i + 1) for i in range(10)]),
        "er_small": erdos_renyi(25, 0.25, seed=0),
        "er_medium": erdos_renyi(60, 0.12, seed=1),
    }


GRAPH_NAMES = tuple(fixed_graphs())


def fresh_engine(**kwargs) -> Engine:
    kwargs.setdefault("max_cached_graphs", 0)
    kwargs.setdefault("workers", 2)
    return Engine(**kwargs)


def register_mirror(engine: Engine) -> None:
    """A dummy third-party backend: reference under another name."""

    def mirror(eng, graph, store_membership):
        return triangle_kcore_decomposition(
            graph, backend="reference", store_membership=store_membership
        )

    engine.register_backend("mirror", mirror)


# ------------------------------------------------------------------ #
# kappa conformance
# ------------------------------------------------------------------ #


class TestKappaConformance:
    @pytest.mark.parametrize("backend", ALL_BACKENDS + ("mirror",))
    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_fixed_graphs(self, backend, name):
        graph = fixed_graphs()[name]
        expected = triangle_kcore_decomposition(graph, backend="reference")
        engine = fresh_engine()
        if backend == "mirror":
            register_mirror(engine)
        result = engine.decompose(graph, backend=backend)
        assert result.kappa == expected.kappa, (
            f"backend {backend!r} disagrees with reference on {name!r}"
        )

    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_parallel_bit_identical_to_csr(self, name):
        graph = fixed_graphs()[name]
        expected = csr_decomposition(graph)
        for workers in (2, 3, 7):
            result = parallel_decomposition(
                graph, workers=workers, inprocess=True
            )
            assert result.kappa == expected.kappa
            assert result.processing_order == expected.processing_order

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("path", CORPUS_PATHS, ids=os.path.basename)
    def test_corpus_final_states(self, backend, path):
        graph = ReproBundle.load(path).script.final_graph()
        expected = triangle_kcore_decomposition(graph, backend="reference")
        result = fresh_engine().decompose(graph, backend=backend)
        assert result.kappa == expected.kappa

    def test_real_pool_on_fig_graphs(self):
        # One genuine multiprocess run per fixed paper graph (the rest of
        # the matrix uses the cheap in-process shard path).
        for name in ("fig2", "k5"):
            graph = fixed_graphs()[name]
            expected = csr_decomposition(graph)
            engine = Engine(workers=2, max_cached_graphs=0)
            result = engine.decompose(graph, backend="parallel")
            assert result.kappa == expected.kappa
            assert result.processing_order == expected.processing_order


# ------------------------------------------------------------------ #
# executor families: order identity and shared-memory transport rows
# ------------------------------------------------------------------ #


class TestExecutorFamilies:
    """The -vec composition is its own family with its own order contract.

    Kappa must equal the reference everywhere (covered by the matrix
    above); processing order must be *bit-identical within a family* —
    sharded enumeration composed with the same executor cannot change the
    order — while the two families may legitimately order ties
    differently.
    """

    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_parallel_vec_bit_identical_to_csr_vec(self, name):
        graph = fixed_graphs()[name]
        expected = csr_decomposition(graph, executor="vector")
        for workers in (2, 3, 7):
            result = parallel_decomposition(
                graph, workers=workers, inprocess=True, executor="vector"
            )
            assert result.kappa == expected.kappa
            assert result.processing_order == expected.processing_order

    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_external_bit_identical_to_csr_vec(self, name):
        # The out-of-core backend belongs to the vector family: its
        # level-synchronous reconciliation peel must reproduce csr-vec's
        # canonical order bit-for-bit at every partition count, seams or
        # no seams.
        from repro.fast.external import external_decomposition

        graph = fixed_graphs()[name]
        expected = csr_decomposition(graph, executor="vector")
        for partitions in (1, 2, 3, 7):
            result = external_decomposition(graph, partitions=partitions)
            assert result.kappa == expected.kappa
            assert result.processing_order == expected.processing_order

    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_vector_order_is_valid_and_kappa_sorted(self, name):
        graph = fixed_graphs()[name]
        result = csr_decomposition(graph, executor="vector")
        assert set(result.processing_order) == set(result.kappa)
        kappas = [result.kappa[e] for e in result.processing_order]
        assert kappas == sorted(kappas)  # non-decreasing, like Algorithm 1

    def test_real_pool_shm_transport_rows(self):
        # One genuine multiprocess run per family over the shared-memory
        # transport (skipped on hosts without it): the zero-copy substrate
        # must be invisible in the answers.
        from repro.fast.shm import shared_memory_available

        if not shared_memory_available():
            pytest.skip("host lacks multiprocessing.shared_memory")
        graph = fixed_graphs()["er_medium"]
        for executor in ("scalar", "vector"):
            expected = csr_decomposition(graph, executor=executor)
            result = parallel_decomposition(
                graph, workers=2, executor=executor, transport="shm"
            )
            assert result.kappa == expected.kappa
            assert result.processing_order == expected.processing_order


# ------------------------------------------------------------------ #
# triangle-count conformance
# ------------------------------------------------------------------ #


class TestTriangleCountConformance:
    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_counting_backends_agree(self, name):
        graph = fixed_graphs()[name]
        reference = count_triangles(graph, backend="reference")
        assert count_triangles(graph, backend="csr") == reference
        assert count_triangles(graph, backend="parallel") == reference
        engine = fresh_engine()
        assert engine.count_triangles(graph) == reference


# ------------------------------------------------------------------ #
# error contracts
# ------------------------------------------------------------------ #


class TestErrorContracts:
    @pytest.mark.parametrize(
        "backend", [b for b in ALL_BACKENDS if b != "reference"]
    )
    def test_membership_refused_by_non_reference(self, backend):
        graph = complete_graph(4)
        engine = fresh_engine()
        with pytest.raises(ValueError, match="membership"):
            engine.decompose(graph, backend=backend, store_membership=True)

    def test_membership_served_by_reference_and_auto(self):
        graph = complete_graph(4)
        engine = fresh_engine()
        direct = engine.decompose(
            graph, backend="reference", store_membership=True
        )
        assert direct.membership is not None
        degraded = engine.decompose(graph, backend="auto", store_membership=True)
        assert degraded.membership is not None
        assert degraded.kappa == direct.kappa

    def test_unknown_backend_lists_registry(self):
        engine = fresh_engine()
        with pytest.raises(ValueError, match="unknown backend 'warp'"):
            engine.decompose(complete_graph(4), backend="warp")
        # The low-level resolver names engine-only backends helpfully
        # instead of calling them unknown.
        from repro.fast import resolve_backend

        with pytest.raises(ValueError, match="repro.engine.Engine"):
            resolve_backend("dynamic", complete_graph(4))
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("warp", complete_graph(4))

    def test_backends_listing_matches_registry(self):
        engine = fresh_engine()
        assert engine.backends() == BACKENDS
        register_mirror(engine)
        assert "mirror" in engine.backends()
        # The module constant is itself registry-derived.
        assert BACKENDS == ("auto",) + tuple(_BUILTIN_BACKENDS)

    def test_registered_backend_is_cached_like_builtins(self):
        engine = Engine(max_cached_graphs=4)
        register_mirror(engine)
        graph = complete_graph(5)
        first = engine.decompose(graph, backend="mirror")
        second = engine.decompose(graph, backend="mirror")
        assert first is second
        assert engine.stats.cache_hits == 1


# ------------------------------------------------------------------ #
# hypothesis sweep
# ------------------------------------------------------------------ #


@st.composite
def graphs(draw, max_vertices: int = 14) -> Graph:
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
    )
    return Graph(edges=edges, vertices=range(n))


@settings(max_examples=50, deadline=None)
@given(graphs(), st.integers(min_value=2, max_value=6))
def test_every_backend_agrees_on_random_graphs(graph, workers):
    expected = triangle_kcore_decomposition(graph, backend="reference")
    csr = csr_decomposition(graph)
    assert csr.kappa == expected.kappa
    par = parallel_decomposition(graph, workers=workers, inprocess=True)
    assert par.kappa == expected.kappa
    assert par.processing_order == csr.processing_order
    vec = csr_decomposition(graph, executor="vector")
    assert vec.kappa == expected.kappa
    par_vec = parallel_decomposition(
        graph, workers=workers, inprocess=True, executor="vector"
    )
    assert par_vec.kappa == expected.kappa
    assert par_vec.processing_order == vec.processing_order
    dyn = Engine(max_cached_graphs=0).decompose(graph, backend="dynamic")
    assert dyn.kappa == expected.kappa
