"""Tests for the dataset registry and the planted case-study structure."""

import pytest

from repro.analysis import clique_report
from repro.core import triangle_kcore_decomposition
from repro.datasets import (
    ASTROLOGY_CLIQUE,
    ASTRONOMY_CLIQUE,
    CLIQUE1_PROTEINS,
    CLIQUE2_PROTEINS,
    CLIQUE3_MISSING_EDGE,
    CLIQUE3_PROTEINS,
    NEW_FORM_AUTHORS,
    load,
    names,
    snapshot_pair,
)
from repro.exceptions import DatasetError

def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


requires_numpy = pytest.mark.skipif(
    not _numpy_available(),
    reason="R-MAT-backed stand-ins (amazon, flickr, livejournal) need numpy",
)


class TestRegistry:
    def test_names_cover_table1(self):
        expected = {
            "synthetic", "stocks", "ppi", "dblp", "astro", "epinions",
            "amazon", "wiki", "flickr", "livejournal", "wiki_snapshots",
        }
        assert expected <= set(names())

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load("nope")

    def test_deterministic(self):
        a = load("synthetic")
        b = load("synthetic")
        assert a.graph == b.graph

    @pytest.mark.parametrize("name", ["synthetic", "stocks", "ppi", "dblp"])
    def test_paper_sizes_recorded(self, name):
        dataset = load(name)
        assert dataset.paper_vertices > 0
        assert dataset.paper_edges > 0
        assert dataset.description


class TestSynthetic:
    def test_size_near_paper(self):
        dataset = load("synthetic")
        assert dataset.num_vertices == 60
        assert abs(dataset.num_edges - 308) < 40

    def test_planted_cliques_visible_in_kappa(self):
        dataset = load("synthetic")
        result = triangle_kcore_decomposition(dataset.graph)
        assert result.max_kappa == 8  # the 10-clique


class TestStocks:
    def test_exact_paper_size(self):
        dataset = load("stocks")
        assert dataset.num_vertices == 275
        assert dataset.num_edges == 1680

    def test_sector_blocks_are_dense(self):
        dataset = load("stocks")
        result = triangle_kcore_decomposition(dataset.graph)
        assert result.max_kappa >= 5  # sectors show up as dense blocks


class TestPPI:
    @pytest.fixture(scope="class")
    def ppi(self):
        return load("ppi")

    def test_size_near_paper(self, ppi):
        assert abs(ppi.num_vertices - 4741) < 200
        assert abs(ppi.num_edges - 15147) < 1500

    def test_fig7_clique2_is_exact(self, ppi):
        report = clique_report(ppi.graph, CLIQUE2_PROTEINS)
        assert report.is_clique
        assert len(report.vertices) == 10

    def test_fig7_clique3_misses_one_edge(self, ppi):
        report = clique_report(ppi.graph, CLIQUE3_PROTEINS)
        assert report.missing_edges == (CLIQUE3_MISSING_EDGE,)

    def test_fig7_clique1_is_dense(self, ppi):
        report = clique_report(ppi.graph, CLIQUE1_PROTEINS)
        assert report.density == 1.0

    def test_complexes_labelled(self, ppi):
        assert ppi.vertex_groups["PRE1"] == "20S proteasome"
        assert ppi.vertex_groups["RPN11"] == "19/22S regulator"
        assert all(v in ppi.vertex_groups for v in ppi.graph.vertices())


class TestDBLP:
    @pytest.fixture(scope="class")
    def dblp(self):
        return load("dblp")

    def test_snapshots_labelled(self, dblp):
        assert dblp.snapshot_labels == ["2000", "2001", "2002", "2003", "2004"]
        assert len(dblp.snapshots) == 5

    def test_new_form_authors_unconnected_before_2004(self, dblp):
        old, new = snapshot_pair(dblp, "2003", "2004")
        for i, u in enumerate(NEW_FORM_AUTHORS):
            for v in NEW_FORM_AUTHORS[i + 1 :]:
                assert not old.has_edge(u, v)
                assert new.has_edge(u, v)

    def test_snapshot_pair_lookup(self, dblp):
        g2000, g2001 = snapshot_pair(dblp, "2000", "2001")
        assert g2000 is dblp.snapshots[0]
        assert g2001 is dblp.snapshots[1]


class TestWikiSnapshots:
    @pytest.fixture(scope="class")
    def wiki(self):
        return load("wiki_snapshots")

    def test_two_snapshots(self, wiki):
        assert len(wiki.snapshots) == 2
        assert wiki.snapshots[1].num_edges > wiki.snapshots[0].num_edges

    def test_astrology_grows_clique(self, wiki):
        before, after = wiki.snapshots
        report_before = clique_report(before, ASTRONOMY_CLIQUE + ["Astrology"])
        assert not report_before.is_clique
        report_after = clique_report(after, ASTRONOMY_CLIQUE + ["Astrology"])
        assert report_after.is_clique

    def test_astrology_in_small_clique_before(self, wiki):
        report = clique_report(wiki.snapshots[0], ASTROLOGY_CLIQUE)
        assert report.is_clique


class TestLargeStandins:
    @pytest.mark.parametrize(
        "name",
        [
            "astro",
            "epinions",
            pytest.param("amazon", marks=requires_numpy),
            "wiki",
        ],
    )
    def test_nontrivial_triangle_structure(self, name):
        dataset = load(name)
        result = triangle_kcore_decomposition(dataset.graph)
        assert result.max_kappa >= 2, name

    @requires_numpy
    def test_scaled_sizes_ordered_like_paper(self):
        sizes = [load(n).num_edges for n in ("astro", "flickr", "livejournal")]
        assert sizes == sorted(sizes)
