"""Tests for the analysis package (peaks, cliques, events, stats)."""

import pytest

from repro.analysis import (
    approximation_quality,
    clique_report,
    degree_histogram,
    densest_event,
    detect_events,
    find_plateaus,
    graph_stats,
    kappa_summary,
    largest_clique_in,
    plateau_profile,
    top_plateaus,
)
from repro.core import triangle_kcore_decomposition
from repro.graph import Graph, SnapshotStream, complete_graph, planted_cliques
from repro.viz import DensityPlot, density_plot


class TestPlateaus:
    def test_planted_cliques_become_plateaus(self):
        planted = planted_cliques(100, [10, 7], background_p=0.01, seed=6)
        result = triangle_kcore_decomposition(planted.graph)
        plot = density_plot(planted.graph, result)
        plateaus = find_plateaus(plot, min_height=4)
        assert plateaus[0].height == 10
        assert set(planted.cliques[0].vertices) <= set(plateaus[0].vertices)
        heights = [p.height for p in plateaus]
        assert 7 in heights

    def test_min_width_filters_spikes(self):
        plot = DensityPlot(order=list(range(6)), heights=[9, 0, 0, 5, 5, 5])
        plateaus = find_plateaus(plot, min_height=3, min_width=3)
        assert len(plateaus) == 1
        assert plateaus[0].height == 5

    def test_tolerance_absorbs_quasi_clique_dips(self):
        plot = DensityPlot(
            order=list(range(6)), heights=[8, 8, 7, 8, 8, 8]
        )
        plateaus = find_plateaus(plot, min_height=3, tolerance=1)
        assert len(plateaus) == 1
        assert plateaus[0].width == 6

    def test_top_plateaus_limit(self):
        plot = DensityPlot(
            order=list(range(9)),
            heights=[5, 5, 5, 0, 4, 4, 4, 0, 0],
        )
        assert len(top_plateaus(plot, 1, min_height=3)) == 1

    def test_profile(self):
        plot = DensityPlot(
            order=list(range(7)), heights=[5, 5, 5, 0, 4, 4, 4]
        )
        assert plateau_profile(plot, min_height=3) == [(5, 3), (4, 3)]

    def test_empty_plot(self):
        assert find_plateaus(DensityPlot(order=[], heights=[])) == []


class TestCliqueReports:
    def test_exact_clique(self, k5):
        report = clique_report(k5, [0, 1, 2, 3, 4])
        assert report.is_clique
        assert report.density == 1.0

    def test_missing_edges_reported(self):
        g = complete_graph(4)
        g.remove_edge(0, 1)
        report = clique_report(g, [0, 1, 2, 3])
        assert report.missing_edges == ((0, 1),)
        assert report.density == pytest.approx(5 / 6)

    def test_duplicates_collapsed(self, k5):
        report = clique_report(k5, [0, 0, 1])
        assert report.vertices == (0, 1)

    def test_single_vertex_is_trivially_clique(self, k5):
        assert clique_report(k5, [0]).is_clique

    def test_largest_clique_in_region(self):
        g = complete_graph(5)
        g.add_edge(0, 99)
        assert len(largest_clique_in(g, [0, 1, 2, 3, 4, 99])) == 5

    def test_approximation_quality(self):
        g = complete_graph(4)
        g.remove_edge(0, 1)
        quality = approximation_quality(g, [0, 1, 2, 3], claimed_size=4)
        assert quality == pytest.approx(3 / 4)
        assert approximation_quality(g, [0], claimed_size=0) == 1.0


class TestEvents:
    @pytest.fixture
    def stream(self):
        def clique_edges(members):
            return [
                (u, v) for i, u in enumerate(members) for v in members[i + 1 :]
            ]

        g0 = Graph(edges=clique_edges("XYZ"), vertices="ABCDE")
        g1 = g0.copy()
        for u, v in clique_edges("ABCDE"):
            g1.add_edge(u, v)
        return SnapshotStream([g0, g1])

    def test_detects_new_form_event(self, stream):
        events = detect_events(stream)
        new_forms = [e for e in events if e.pattern == "New Form Clique"]
        assert new_forms
        best = new_forms[0]
        assert set(best.vertices) == set("ABCDE")
        assert best.clique_size_estimate == 5
        assert best.step == 1

    def test_densest_event_lookup(self, stream):
        events = detect_events(stream)
        best = densest_event(events, "New Form Clique")
        assert best.kappa == 3

    def test_densest_event_missing_pattern(self, stream):
        events = detect_events(stream)
        with pytest.raises(ValueError):
            densest_event(events, "No Such Pattern")

    def test_max_events_per_step_limits(self, stream):
        events = detect_events(stream, max_events_per_step=1)
        by_pattern_step = {}
        for event in events:
            key = (event.step, event.pattern)
            by_pattern_step[key] = by_pattern_step.get(key, 0) + 1
        assert all(count <= 1 for count in by_pattern_step.values())


class TestStats:
    def test_graph_stats_on_clique(self, k5):
        stats = graph_stats(k5)
        assert stats.vertices == 5
        assert stats.edges == 10
        assert stats.triangles == 10
        assert stats.max_degree == 4
        assert stats.transitivity == pytest.approx(1.0)
        assert stats.degeneracy == 4
        assert "|V|=5" in stats.as_row()

    def test_graph_stats_empty(self):
        stats = graph_stats(Graph())
        assert stats.vertices == 0
        assert stats.mean_degree == 0.0

    def test_kappa_summary(self, k5):
        summary = kappa_summary(triangle_kcore_decomposition(k5))
        assert summary["max"] == 3
        assert summary["nonzero_fraction"] == 1.0

    def test_kappa_summary_empty(self):
        summary = kappa_summary(triangle_kcore_decomposition(Graph()))
        assert summary["edges"] == 0

    def test_degree_histogram(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        assert degree_histogram(g) == {1: 2, 2: 1}
