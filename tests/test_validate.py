"""Tests for the invariant validators (they must catch corrupted states)."""

import pytest

from repro.core import (
    check_decomposition,
    check_level_subgraphs,
    check_maximality,
    check_theorem1,
    reference_decomposition,
    triangle_kcore_decomposition,
)
from repro.core.validate import check_covers_all_edges
from repro.exceptions import ValidationError
from repro.graph import Graph, complete_graph, erdos_renyi


@pytest.fixture
def good(k5):
    return k5, triangle_kcore_decomposition(k5).kappa


class TestAccepts:
    def test_correct_decomposition_passes(self, good):
        graph, kappa = good
        check_decomposition(graph, kappa)

    def test_empty_graph_passes(self):
        check_decomposition(Graph(), {})

    def test_random_graphs_pass(self):
        for seed in range(3):
            g = erdos_renyi(25, 0.3, seed=seed)
            check_decomposition(g, triangle_kcore_decomposition(g).kappa)


class TestRejects:
    def test_missing_edge_detected(self, good):
        graph, kappa = good
        broken = dict(kappa)
        broken.pop(next(iter(broken)))
        with pytest.raises(ValidationError):
            check_covers_all_edges(graph, broken)

    def test_extra_edge_detected(self, good):
        graph, kappa = good
        broken = dict(kappa)
        broken[(99, 100)] = 1
        with pytest.raises(ValidationError):
            check_covers_all_edges(graph, broken)

    def test_inflated_kappa_detected(self, good):
        graph, kappa = good
        broken = dict(kappa)
        edge = next(iter(broken))
        broken[edge] += 1
        with pytest.raises(ValidationError):
            check_decomposition(graph, broken)

    def test_deflated_kappa_detected(self, good):
        graph, kappa = good
        broken = dict(kappa)
        edge = next(iter(broken))
        broken[edge] -= 1
        with pytest.raises(ValidationError):
            check_decomposition(graph, broken)

    def test_all_zero_fails_maximality_on_clique(self, k5):
        broken = {edge: 0 for edge in k5.edges()}
        with pytest.raises(ValidationError):
            check_maximality(k5, broken)

    def test_theorem1_violation_detected(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        kappa = triangle_kcore_decomposition(g).kappa
        broken = dict(kappa)
        broken[(2, 3)] = 1  # pendant edge cannot hold kappa 1
        with pytest.raises(ValidationError):
            check_theorem1(g, broken)

    def test_level_subgraph_violation_detected(self, k5):
        kappa = {edge: 3 for edge in k5.edges()}
        kappa[(0, 1)] = 4
        with pytest.raises(ValidationError):
            check_level_subgraphs(k5, kappa)


class TestReferenceDecomposition:
    def test_matches_fast_implementation(self):
        for seed in range(3):
            g = erdos_renyi(20, 0.35, seed=seed + 30)
            assert reference_decomposition(g) == (
                triangle_kcore_decomposition(g).kappa
            )

    def test_clique(self):
        ref = reference_decomposition(complete_graph(5))
        assert set(ref.values()) == {3}

    def test_empty(self):
        assert reference_decomposition(Graph()) == {}
