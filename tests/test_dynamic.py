"""Tests for incremental Triangle K-Core maintenance (Algorithms 2/5-7).

The central guarantee: after any sequence of edge insertions and deletions,
the maintainer's kappa map is identical to a from-scratch run of
Algorithm 1 on the current graph.
"""

import random

import pytest

from repro.core import DynamicTriangleKCore, triangle_kcore_decomposition
from repro.core.dynamic import h_index, insertion_upper_bound
from repro.exceptions import EdgeExistsError, EdgeNotFoundError, SelfLoopError
from repro.graph import Graph, complete_graph, erdos_renyi


def assert_matches_static(maintainer: DynamicTriangleKCore) -> None:
    expected = triangle_kcore_decomposition(maintainer.graph).kappa
    assert maintainer.kappa == expected


class TestHIndex:
    def test_examples(self):
        assert h_index([]) == 0
        assert h_index([0, 0]) == 0
        assert h_index([1]) == 1
        assert h_index([3, 3, 2, 0]) == 2
        assert h_index([5, 5, 5, 5, 5]) == 5

    def test_insertion_upper_bound(self):
        assert insertion_upper_bound([]) == 0
        assert insertion_upper_bound([0]) == 1
        assert insertion_upper_bound([2, 2, 2]) == 3


class TestSingleInsertions:
    def test_lone_triangle_promotes_all_three(self):
        maintainer = DynamicTriangleKCore(Graph(edges=[(0, 1), (1, 2)]))
        maintainer.add_edge(0, 2)
        assert maintainer.kappa == {(0, 1): 1, (1, 2): 1, (0, 2): 1}

    def test_edge_without_triangles(self):
        maintainer = DynamicTriangleKCore(Graph(edges=[(0, 1)]))
        maintainer.add_edge(2, 3)
        assert maintainer.kappa_of(2, 3) == 0

    def test_new_vertex_edge(self):
        maintainer = DynamicTriangleKCore(complete_graph(3))
        maintainer.add_edge(0, 99)
        assert maintainer.kappa_of(0, 99) == 0
        assert_matches_static(maintainer)

    def test_completing_k5(self):
        g = complete_graph(5)
        g.remove_edge(0, 1)
        maintainer = DynamicTriangleKCore(g)
        maintainer.add_edge(0, 1)
        assert set(maintainer.kappa.values()) == {3}

    def test_new_edge_climbs_multiple_levels(self):
        """Re-inserting a K6 edge must lift the new edge to 4 and carry the
        other edges from 3 to 4 in the coupled climb pass."""
        g = complete_graph(6)
        g.remove_edge(0, 1)
        maintainer = DynamicTriangleKCore(g)
        stats = maintainer.add_edge(0, 1)
        assert maintainer.kappa_of(0, 1) == 4
        assert stats.levels_touched >= 1
        assert stats.edges_changed == 16  # e0 + all 15 edges end at 4
        assert_matches_static(maintainer)

    def test_duplicate_edge_rejected(self, triangle_graph):
        maintainer = DynamicTriangleKCore(triangle_graph)
        with pytest.raises(EdgeExistsError):
            maintainer.add_edge(0, 1)

    def test_self_loop_rejected(self, triangle_graph):
        maintainer = DynamicTriangleKCore(triangle_graph)
        with pytest.raises(SelfLoopError):
            maintainer.add_edge(1, 1)


class TestSingleDeletions:
    def test_breaking_lone_triangle(self, triangle_graph):
        maintainer = DynamicTriangleKCore(triangle_graph)
        maintainer.remove_edge(0, 1)
        assert maintainer.kappa == {(1, 2): 0, (0, 2): 0}

    def test_removing_clique_edge(self):
        maintainer = DynamicTriangleKCore(complete_graph(5))
        maintainer.remove_edge(0, 1)
        assert_matches_static(maintainer)
        assert set(maintainer.kappa.values()) == {2}

    def test_missing_edge_rejected(self, triangle_graph):
        maintainer = DynamicTriangleKCore(triangle_graph)
        with pytest.raises(EdgeNotFoundError):
            maintainer.remove_edge(0, 9)

    def test_cascading_demotion(self):
        """Deleting one edge of a chained structure demotes its neighbors."""
        g = complete_graph(4)
        g.add_edge(0, 4)
        g.add_edge(1, 4)
        maintainer = DynamicTriangleKCore(g)
        maintainer.remove_edge(2, 3)
        assert_matches_static(maintainer)


class TestVertexOperations:
    def test_add_vertex(self, triangle_graph):
        maintainer = DynamicTriangleKCore(triangle_graph)
        maintainer.add_vertex(42)
        assert maintainer.graph.has_vertex(42)
        assert_matches_static(maintainer)

    def test_remove_vertex(self):
        maintainer = DynamicTriangleKCore(complete_graph(5))
        maintainer.remove_vertex(0)
        assert not maintainer.graph.has_vertex(0)
        assert set(maintainer.kappa.values()) == {2}
        assert_matches_static(maintainer)


class TestBatchApply:
    def test_apply_matches_static(self):
        g = erdos_renyi(30, 0.2, seed=5)
        maintainer = DynamicTriangleKCore(g)
        removed = list(g.edges())[:5]
        added = [(0, 25), (1, 26), (2, 27)]
        added = [(u, v) for u, v in added if not g.has_edge(u, v)]
        stats = maintainer.apply(added=added, removed=removed)
        assert stats.edges_changed >= len(added) + len(removed)
        assert_matches_static(maintainer)

    def test_copy_semantics(self):
        g = complete_graph(4)
        maintainer = DynamicTriangleKCore(g)
        maintainer.remove_edge(0, 1)
        assert g.has_edge(0, 1), "caller graph must be untouched"

    def test_no_copy_semantics(self):
        g = complete_graph(4)
        maintainer = DynamicTriangleKCore(g, copy=False)
        maintainer.remove_edge(0, 1)
        assert not g.has_edge(0, 1)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("store_triangles", [False, True])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_edit_scripts_sparse(self, seed, store_triangles):
        rng = random.Random(seed)
        g = erdos_renyi(24, 0.2, seed=seed)
        maintainer = DynamicTriangleKCore(g, store_triangles=store_triangles)
        vertices = sorted(g.vertices())
        for _ in range(50):
            u, v = rng.sample(vertices, 2)
            if maintainer.graph.has_edge(u, v):
                maintainer.remove_edge(u, v)
            else:
                maintainer.add_edge(u, v)
        assert_matches_static(maintainer)

    def test_store_mode_index_stays_consistent(self):
        rng = random.Random(99)
        g = erdos_renyi(20, 0.3, seed=9)
        maintainer = DynamicTriangleKCore(g, store_triangles=True)
        vertices = sorted(g.vertices())
        for _ in range(40):
            u, v = rng.sample(vertices, 2)
            if maintainer.graph.has_edge(u, v):
                maintainer.remove_edge(u, v)
            else:
                maintainer.add_edge(u, v)
        assert maintainer._store.is_consistent()
        assert_matches_static(maintainer)

    def test_store_mode_vertex_removal(self):
        g = complete_graph(5)
        maintainer = DynamicTriangleKCore(g, store_triangles=True)
        maintainer.remove_vertex(0)
        assert set(maintainer.kappa.values()) == {2}
        assert maintainer._store.is_consistent()
        assert_matches_static(maintainer)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_edit_scripts_dense_checked_every_step(self, seed):
        rng = random.Random(seed + 100)
        g = erdos_renyi(16, 0.5, seed=seed)
        maintainer = DynamicTriangleKCore(g)
        vertices = sorted(g.vertices())
        for _ in range(30):
            u, v = rng.sample(vertices, 2)
            if maintainer.graph.has_edge(u, v):
                maintainer.remove_edge(u, v)
            else:
                maintainer.add_edge(u, v)
            assert_matches_static(maintainer)

    def test_grow_then_shrink_clique(self):
        maintainer = DynamicTriangleKCore(Graph(vertices=range(7)))
        pairs = [(i, j) for i in range(7) for j in range(i + 1, 7)]
        for u, v in pairs:
            maintainer.add_edge(u, v)
        assert set(maintainer.kappa.values()) == {5}
        for u, v in reversed(pairs):
            maintainer.remove_edge(u, v)
        assert maintainer.kappa == {}
        assert maintainer.graph.num_edges == 0

    def test_rule0_change_bound(self):
        """No existing edge moves more than one level per single update."""
        rng = random.Random(7)
        g = erdos_renyi(20, 0.4, seed=7)
        maintainer = DynamicTriangleKCore(g)
        vertices = sorted(g.vertices())
        for _ in range(40):
            before = dict(maintainer.kappa)
            u, v = rng.sample(vertices, 2)
            if maintainer.graph.has_edge(u, v):
                maintainer.remove_edge(u, v)
            else:
                maintainer.add_edge(u, v)
            after = maintainer.kappa
            for edge, old_value in before.items():
                if edge in after and edge != tuple(sorted((u, v), key=repr)):
                    assert abs(after[edge] - old_value) <= 1, edge


class TestResultSnapshot:
    def test_result_wraps_current_state(self, k5):
        maintainer = DynamicTriangleKCore(k5)
        result = maintainer.result()
        assert result.max_kappa == 3
        assert result.kappa == maintainer.kappa

    def test_max_kappa_property(self, triangle_graph):
        maintainer = DynamicTriangleKCore(triangle_graph)
        assert maintainer.max_kappa == 1


class TestApplyStrategies:
    def test_recompute_strategy_matches_incremental(self):
        g = erdos_renyi(25, 0.25, seed=31)
        removed = list(g.edges())[:6]
        added = [(0, 23), (1, 24), (2, 22)]
        added = [(u, v) for u, v in added if not g.has_edge(u, v)]
        a = DynamicTriangleKCore(g)
        a.apply(added=added, removed=removed, strategy="incremental")
        b = DynamicTriangleKCore(g)
        b.apply(added=added, removed=removed, strategy="recompute")
        assert a.kappa == b.kappa
        assert a.graph == b.graph

    def test_recompute_strategy_with_store(self):
        g = erdos_renyi(20, 0.3, seed=32)
        maintainer = DynamicTriangleKCore(g, store_triangles=True)
        removed = list(g.edges())[:4]
        maintainer.apply(removed=removed, strategy="recompute")
        assert maintainer._store.is_consistent()
        assert_matches_static(maintainer)

    def test_auto_picks_recompute_for_heavy_churn(self):
        g = erdos_renyi(25, 0.3, seed=33)
        removed = list(g.edges())[: g.num_edges // 2]  # ~50% churn
        maintainer = DynamicTriangleKCore(g)
        maintainer.apply(removed=removed, strategy="auto")
        assert_matches_static(maintainer)

    def test_auto_picks_incremental_for_light_churn(self):
        g = erdos_renyi(40, 0.3, seed=34)
        removed = list(g.edges())[:2]
        maintainer = DynamicTriangleKCore(g)
        maintainer.apply(removed=removed, strategy="auto")
        assert_matches_static(maintainer)

    def test_invalid_strategy(self, triangle_graph):
        maintainer = DynamicTriangleKCore(triangle_graph)
        with pytest.raises(ValueError):
            maintainer.apply(strategy="bogus")

    def test_recompute_strategy_edges_changed_counter(self):
        maintainer = DynamicTriangleKCore(complete_graph(4))
        stats = maintainer.apply(removed=[(0, 1)], strategy="recompute")
        # (0,1) disappeared and the remaining 5 edges moved 2 -> 1.
        assert stats.edges_changed == 6

    def test_stale_detected_in_recompute_path(self):
        from repro.exceptions import StaleIndexError

        g = complete_graph(4)
        maintainer = DynamicTriangleKCore(g, copy=False)
        g.add_edge(0, 9)
        with pytest.raises(StaleIndexError):
            maintainer.apply(removed=[(0, 1)], strategy="recompute")


class TestBatchStrategy:
    """strategy="batch": one affected-region pass, bit-identical to per-op."""

    def test_batch_matches_per_op_mixed_script(self):
        g = erdos_renyi(30, 0.25, seed=51)
        removed = list(g.edges())[:8]
        added = [(0, 27), (1, 28), (2, 29), (3, 26)]
        added = [(u, v) for u, v in added if not g.has_edge(u, v)]
        a = DynamicTriangleKCore(g)
        a.apply(added=added, removed=removed, strategy="incremental")
        b = DynamicTriangleKCore(g)
        b.apply(added=added, removed=removed, strategy="batch")
        assert a.kappa == b.kappa
        assert a.graph == b.graph
        assert_matches_static(b)

    def test_batch_with_store(self):
        g = erdos_renyi(20, 0.3, seed=52)
        maintainer = DynamicTriangleKCore(g, store_triangles=True)
        removed = list(g.edges())[:5]
        added = [(u, v) for u, v in [(0, 19), (1, 18)]
                 if not g.has_edge(u, v) or (u, v) in removed]
        maintainer.apply(added=added, removed=removed, strategy="batch")
        assert maintainer._store.is_consistent()
        assert_matches_static(maintainer)

    def test_batch_remove_and_readd_same_edge(self):
        """A removed edge re-inserted in the same batch lands correctly."""
        g = complete_graph(5)
        maintainer = DynamicTriangleKCore(g)
        stats = maintainer.apply(
            added=[(0, 1)], removed=[(0, 1)], strategy="batch"
        )
        assert stats.strategy == "batch"
        assert maintainer.kappa[(0, 1)] == 3
        assert_matches_static(maintainer)

    def test_empty_batch(self, k5):
        maintainer = DynamicTriangleKCore(k5)
        stats = maintainer.apply(strategy="batch")
        assert stats.strategy == "batch"
        assert stats.edges_changed == 0
        assert_matches_static(maintainer)

    def test_batch_is_all_or_nothing_on_invalid_op(self):
        """Pre-validation: a bad op rejects the whole batch untouched."""
        g = complete_graph(5)
        maintainer = DynamicTriangleKCore(g)
        before = dict(maintainer.kappa)
        with pytest.raises(EdgeExistsError):
            maintainer.apply(added=[(0, 9), (0, 1)], strategy="batch")
        with pytest.raises(EdgeNotFoundError):
            maintainer.apply(removed=[(0, 9)], strategy="batch")
        with pytest.raises(SelfLoopError):
            maintainer.apply(added=[(7, 7)], strategy="batch")
        assert maintainer.kappa == before
        assert not maintainer.graph.has_edge(0, 9)

    def test_auto_never_picks_batch(self):
        """Batch is opt-in: the measured crossovers put auto's winners at
        incremental (light churn) and recompute (heavy churn)."""
        g = erdos_renyi(40, 0.3, seed=53)
        maintainer = DynamicTriangleKCore(g)
        stats = maintainer.apply(
            removed=list(g.edges())[:3], strategy="auto"
        )
        assert stats.strategy == "incremental"
        assert_matches_static(maintainer)

    def test_auto_single_op_stays_incremental(self):
        g = erdos_renyi(40, 0.3, seed=54)
        maintainer = DynamicTriangleKCore(g)
        stats = maintainer.apply(removed=list(g.edges())[:1], strategy="auto")
        assert stats.strategy == "incremental"


class TestUpdateStatsContract:
    """Which UpdateStats fields each strategy guarantees (documented on
    the class) — pinned for all strategies including batch."""

    def _graph(self):
        return erdos_renyi(25, 0.3, seed=61)

    def _ops(self, g):
        removed = list(g.edges())[:5]
        added = [(u, v) for u, v in [(0, 23), (1, 24)] if not g.has_edge(u, v)]
        return added, removed

    def test_incremental_contract(self):
        g = self._graph()
        added, removed = self._ops(g)
        stats = DynamicTriangleKCore(g).apply(
            added=added, removed=removed, strategy="incremental"
        )
        assert stats.strategy == "incremental"
        assert stats.full_snapshots == 0
        assert stats.candidates_examined > 0
        assert stats.region_edges == 0  # batch-only counter

    def test_recompute_contract(self):
        g = self._graph()
        added, removed = self._ops(g)
        stats = DynamicTriangleKCore(g).apply(
            added=added, removed=removed, strategy="recompute"
        )
        assert stats.strategy == "recompute"
        assert stats.full_snapshots == 1
        assert stats.edges_changed > 0

    def test_batch_contract(self):
        g = self._graph()
        added, removed = self._ops(g)
        stats = DynamicTriangleKCore(g).apply(
            added=added, removed=removed, strategy="batch"
        )
        assert stats.strategy == "batch"
        assert stats.full_snapshots == 0
        # Every inserted edge is in the region, so it is at least that big.
        assert stats.region_edges >= len(added)
        assert stats.settle_iterations >= stats.region_edges
        assert stats.edges_changed >= len(added) + len(removed)

    def test_diff_apply_takes_no_full_snapshot_incremental_or_batch(self):
        """Satellite: the O(|E|) kappa copy is recompute-only now."""
        for strategy in ("incremental", "batch"):
            g = self._graph()
            maintainer = DynamicTriangleKCore(g)
            added, removed = self._ops(g)
            delta = maintainer.diff_apply(
                added=added, removed=removed, strategy=strategy
            )
            assert delta.stats.full_snapshots == 0, strategy
            assert delta.created or delta.deleted or delta.demoted

    def test_merge_stats_sums_new_counters(self):
        g = complete_graph(6)
        maintainer = DynamicTriangleKCore(g)
        s1 = maintainer.apply(removed=[(0, 1)], strategy="batch")
        s2 = maintainer.apply(added=[(0, 1)], strategy="batch")
        from repro.core.dynamic import UpdateStats

        merged = UpdateStats()
        DynamicTriangleKCore._merge_stats(merged, s1)
        DynamicTriangleKCore._merge_stats(merged, s2)
        assert merged.region_edges == s1.region_edges + s2.region_edges
        assert merged.settle_iterations == (
            s1.settle_iterations + s2.settle_iterations
        )
        assert merged.bound_prune_hits == (
            s1.bound_prune_hits + s2.bound_prune_hits
        )


class TestDiffApply:
    def test_deletion_delta(self):
        maintainer = DynamicTriangleKCore(complete_graph(5))
        delta = maintainer.diff_apply(removed=[(0, 1)])
        assert delta.deleted == {(0, 1): 3}
        assert len(delta.demoted) == 9
        assert all(old == 3 and new == 2 for old, new in delta.demoted.values())
        assert delta.created == {} and delta.promoted == {}
        assert not delta.is_empty
        assert len(delta.touched_edges()) == 10

    def test_insertion_delta(self):
        g = complete_graph(5)
        g.remove_edge(0, 1)
        maintainer = DynamicTriangleKCore(g)
        delta = maintainer.diff_apply(added=[(0, 1)])
        assert delta.created == {(0, 1): 3}
        assert all(old == 2 and new == 3 for old, new in delta.promoted.values())
        assert len(delta.promoted) == 9

    def test_empty_batch_is_empty_delta(self, k5):
        maintainer = DynamicTriangleKCore(k5)
        delta = maintainer.diff_apply()
        assert delta.is_empty
        assert "+0" in repr(delta)

    def test_delta_under_recompute_strategy(self):
        g = erdos_renyi(20, 0.3, seed=41)
        a = DynamicTriangleKCore(g)
        b = DynamicTriangleKCore(g)
        removed = list(g.edges())[:4]
        delta_inc = a.diff_apply(removed=removed)
        delta_rec = b.diff_apply(removed=removed, strategy="recompute")
        assert delta_inc.deleted == delta_rec.deleted
        assert delta_inc.promoted == delta_rec.promoted
        assert delta_inc.demoted == delta_rec.demoted

    def test_delta_feeds_dual_view_scoring(self):
        """The delta contains exactly the edges Algorithm 3 re-scores."""
        g = complete_graph(6, offset=100)
        for v in range(3):
            g.add_vertex(v)
        maintainer = DynamicTriangleKCore(g)
        added = [(0, 1), (1, 2), (0, 2)]
        delta = maintainer.diff_apply(added=added)
        from repro.graph import canonical_edge

        assert set(delta.created) == {canonical_edge(u, v) for u, v in added}
        assert all(k == 1 for k in delta.created.values())


class TestSoak:
    def test_long_random_soak_all_modes(self):
        """300 mixed operations across both store modes, verified at the
        end and spot-checked along the way."""
        rng = random.Random(2024)
        g = erdos_renyi(30, 0.25, seed=77)
        plain = DynamicTriangleKCore(g)
        stored = DynamicTriangleKCore(g, store_triangles=True)
        vertices = sorted(g.vertices())
        for step in range(300):
            u, v = rng.sample(vertices, 2)
            if plain.graph.has_edge(u, v):
                plain.remove_edge(u, v)
                stored.remove_edge(u, v)
            else:
                plain.add_edge(u, v)
                stored.add_edge(u, v)
            if step % 60 == 0:
                assert plain.kappa == stored.kappa
        assert plain.kappa == stored.kappa
        assert plain.kappa == triangle_kcore_decomposition(plain.graph).kappa
        assert stored._store.is_consistent()
