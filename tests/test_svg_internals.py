"""Focused tests for the SVG renderer internals."""

import pytest

from repro.core import triangle_kcore_decomposition
from repro.graph import Graph, complete_graph
from repro.viz import density_plot, density_plot_svg, graph_drawing_svg
from repro.viz.density_plot import DensityPlot


class TestDensityPlotSvg:
    def test_empty_plot_renders(self):
        svg = density_plot_svg(DensityPlot(order=[], heights=[], title="empty"))
        assert svg.startswith("<svg")
        assert "empty" in svg

    def test_zero_heights_draw_no_bars(self):
        plot = DensityPlot(order=[1, 2, 3], heights=[0, 0, 0])
        svg = density_plot_svg(plot)
        # Only the background rect, no bar rects.
        assert svg.count("<rect") == 1

    def test_title_escaped(self):
        plot = DensityPlot(order=[1], heights=[3], title='<b>&"x"')
        svg = density_plot_svg(plot)
        assert "<b>" not in svg
        assert "&amp;" in svg

    def test_axis_ticks_cover_range(self):
        plot = DensityPlot(order=list(range(4)), heights=[0, 5, 10, 15])
        svg = density_plot_svg(plot)
        assert ">0<" in svg
        assert ">15<" in svg

    def test_marker_label_rendered(self, k5):
        result = triangle_kcore_decomposition(k5)
        plot = density_plot(k5, result)
        plot.add_marker(plot.order[:3], label="the &clique", shape="ellipse")
        svg = density_plot_svg(plot)
        assert "the &amp;clique" in svg
        assert "<ellipse" in svg

    def test_marker_with_absent_vertices_skipped(self, k5):
        result = triangle_kcore_decomposition(k5)
        plot = density_plot(k5, result)
        plot.add_marker(["ghost1", "ghost2"], label="nowhere")
        svg = density_plot_svg(plot)  # must not raise
        assert "nowhere" not in svg

    def test_vertex_count_caption(self, k5):
        result = triangle_kcore_decomposition(k5)
        svg = density_plot_svg(density_plot(k5, result))
        assert "5 vertices" in svg


class TestGraphDrawingSvg:
    def test_vertex_labels_escaped(self):
        g = Graph(edges=[("a<b", "c&d")])
        svg = graph_drawing_svg(g)
        assert "a&lt;b" in svg
        assert "c&amp;d" in svg

    def test_vertex_colors_applied(self):
        g = complete_graph(3)
        svg = graph_drawing_svg(g, vertex_colors={0: "#ff0000"})
        assert "#ff0000" in svg

    def test_empty_graph(self):
        svg = graph_drawing_svg(Graph())
        assert svg.startswith("<svg")
        assert "<circle" not in svg


class TestAsciiInternals:
    def test_sparkline_max_pooling_preserves_peaks(self):
        from repro.viz import sparkline

        # A narrow spike must survive downsampling to few columns.
        heights = [0] * 50 + [10] + [0] * 49
        plot = DensityPlot(order=list(range(100)), heights=heights)
        line = sparkline(plot, width=10)
        assert "█" in line

    def test_render_marker_summary_line(self, k5):
        from repro.viz import render

        result = triangle_kcore_decomposition(k5)
        plot = density_plot(k5, result)
        plot.add_marker(plot.order[:2], label="pair", shape="rect")
        text = render(plot)
        assert "marker[rect] pair" in text
