"""Unit tests for Algorithm 1 (static Triangle K-Core decomposition)."""

import pytest

from repro.core import (
    check_decomposition,
    co_clique_sizes,
    kappa_from_mapping,
    kappa_upper_bounds,
    reference_decomposition,
    triangle_kcore_decomposition,
    truss_numbers,
)
from repro.graph import Graph, complete_graph, erdos_renyi


class TestSmallGraphs:
    def test_empty_graph(self):
        result = triangle_kcore_decomposition(Graph())
        assert result.kappa == {}
        assert result.max_kappa == 0

    def test_single_edge(self):
        result = triangle_kcore_decomposition(Graph(edges=[(1, 2)]))
        assert result.kappa == {(1, 2): 0}

    def test_single_triangle(self, triangle_graph):
        result = triangle_kcore_decomposition(triangle_graph)
        assert set(result.kappa.values()) == {1}

    def test_clique_kappa_is_n_minus_2(self):
        """Paper §III: an n-clique is an (n-2)-Triangle K-Core."""
        for n in range(3, 9):
            result = triangle_kcore_decomposition(complete_graph(n))
            assert set(result.kappa.values()) == {n - 2}

    def test_two_triangles_sharing_edge(self):
        g = Graph(edges=[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)])
        result = triangle_kcore_decomposition(g)
        # The shared edge (0,1) has 2 triangles but each side triangle's
        # other edges have only 1, so everything peels at 1.
        assert set(result.kappa.values()) == {1}

    def test_pendant_edge_is_zero(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        result = triangle_kcore_decomposition(g)
        assert result.kappa_of(2, 3) == 0
        assert result.kappa_of(0, 1) == 1


class TestAgainstOracles:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_erosion(self, seed):
        g = erdos_renyi(35, 0.2, seed=seed)
        result = triangle_kcore_decomposition(g)
        assert result.kappa == reference_decomposition(g)

    @pytest.mark.parametrize("seed", range(4))
    def test_validator_accepts(self, seed):
        g = erdos_renyi(30, 0.25, seed=seed + 50)
        result = triangle_kcore_decomposition(g)
        check_decomposition(g, result.kappa)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_networkx_truss(self, seed):
        from repro.baselines import networkx_kappa

        g = erdos_renyi(50, 0.25, seed=seed + 9)
        result = triangle_kcore_decomposition(g)
        assert result.kappa == networkx_kappa(g)

    def test_membership_mode_same_kappa(self):
        g = erdos_renyi(30, 0.3, seed=77)
        plain = triangle_kcore_decomposition(g)
        with_membership = triangle_kcore_decomposition(g, store_membership=True)
        assert plain.kappa == with_membership.kappa
        assert with_membership.membership is not None


class TestResultObject:
    def test_kappa_of_is_orientation_free(self, fig2_graph):
        result = triangle_kcore_decomposition(fig2_graph)
        assert result.kappa_of("B", "A") == result.kappa_of("A", "B") == 1

    def test_processing_order_nondecreasing(self):
        g = erdos_renyi(40, 0.2, seed=13)
        result = triangle_kcore_decomposition(g)
        values = [result.kappa[e] for e in result.processing_order]
        assert values == sorted(values)

    def test_processing_order_covers_all_edges(self, fig2_graph):
        result = triangle_kcore_decomposition(fig2_graph)
        assert set(result.processing_order) == set(result.kappa)

    def test_co_clique_size(self, k5):
        result = triangle_kcore_decomposition(k5)
        assert result.co_clique_size(0, 1) == 5

    def test_vertex_kappa(self, fig2_graph):
        result = triangle_kcore_decomposition(fig2_graph)
        vk = result.vertex_kappa()
        assert vk["A"] == 1
        assert vk["B"] == 2

    def test_vertex_kappa_ignores_isolated(self):
        g = Graph(edges=[(1, 2)], vertices=[9])
        vk = triangle_kcore_decomposition(g).vertex_kappa()
        assert 9 not in vk

    def test_edges_with_kappa_at_least(self, fig2_graph):
        result = triangle_kcore_decomposition(fig2_graph)
        level2 = set(result.edges_with_kappa_at_least(2))
        assert len(level2) == 6  # the K4 on B,C,D,E

    def test_histogram(self, fig2_graph):
        result = triangle_kcore_decomposition(fig2_graph)
        assert result.histogram() == {1: 2, 2: 6}

    def test_order_index(self, fig2_graph):
        result = triangle_kcore_decomposition(fig2_graph)
        index = result.order_index()
        assert sorted(index.values()) == list(map(float, range(8)))


class TestHelpers:
    def test_upper_bounds_are_supports(self, fig2_graph):
        bounds = kappa_upper_bounds(fig2_graph)
        assert bounds[("A", "B")] == 1
        assert bounds[("B", "C")] == 3

    def test_upper_bounds_dominate_kappa(self):
        g = erdos_renyi(40, 0.25, seed=17)
        bounds = kappa_upper_bounds(g)
        result = triangle_kcore_decomposition(g)
        assert all(bounds[e] >= k for e, k in result.kappa.items())

    def test_co_clique_sizes(self, triangle_graph):
        result = triangle_kcore_decomposition(triangle_graph)
        assert set(co_clique_sizes(result).values()) == {3}

    def test_truss_numbers(self, k5):
        result = triangle_kcore_decomposition(k5)
        assert set(truss_numbers(result).values()) == {5}

    def test_kappa_from_mapping(self):
        wrapped = kappa_from_mapping({(1, 2): 3, (2, 3): 1})
        assert wrapped.max_kappa == 3
        values = [wrapped.kappa[e] for e in wrapped.processing_order]
        assert values == sorted(values)
